//! Segmented maintained columns: the Storyboard-style joint budget split
//! and the per-segment partial-build helpers used by
//! [`crate::MaintainedPool`]'s dirty-segment rebuild path.
//!
//! A segmented column splits its domain into [`SegmentLayout::equi_width`]
//! segments and keeps one independently-built synopsis per segment,
//! composed behind a [`synoptic_core::SegmentedEstimator`]. Ingest marks
//! only the touched segment dirty; a rebuild then re-runs the anytime
//! ladder on the dirty slices alone and reuses every clean partial
//! unchanged — the rebuild cost scales with the *churned* fraction of the
//! domain, not its size.
//!
//! The per-segment word budgets are fixed once, at registration, by the
//! same knapsack DP the catalog uses across columns
//! ([`synoptic_catalog::allocate_budget`]): each segment contributes an
//! error curve over a geometric bucket grid and the DP splits the column's
//! global budget across segments exactly. Curve points are scored with the
//! `O(1)`-per-bucket V-optimal proxy (within-bucket variance of the
//! values), the standard surrogate when exact range-SSE curves are too
//! expensive to construct at registration time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use synoptic_catalog::{allocate_budget, ColumnCurve};
use synoptic_core::{
    Budget, BuildOutcome, PrefixSums, RangeEstimator, Result, SegmentLayout, SynopticError,
};
use synoptic_hist::builder::{build_anytime, build_with_budget, AnytimeParams, HistogramMethod};

use crate::maintained::panic_detail;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runtime state of one segmented pool column. Budgets and layout are
/// fixed at registration; partials and provenance are replaced by the
/// home worker as dirty segments rebuild.
pub(crate) struct SegmentRuntime {
    /// The fixed equi-width segmentation of the domain.
    pub layout: SegmentLayout,
    /// The tier-0 method every segment builds through the anytime ladder.
    pub method: HistogramMethod,
    /// Per-segment word budgets from the joint split.
    pub budgets: Vec<usize>,
    /// Current partials, in segment order (always full length).
    pub parts: Mutex<Vec<Arc<dyn RangeEstimator>>>,
    /// Per-segment provenance of the most recent committed build.
    pub outcomes: Mutex<Vec<BuildOutcome>>,
    /// Lifetime count of segment rebuilds (ladder runs) for this column.
    pub segment_builds: AtomicU64,
}

impl SegmentRuntime {
    pub(crate) fn record_builds(&self, n: u64) {
        self.segment_builds.fetch_add(n, Ordering::Relaxed);
    }
}

/// Splits `total_words` across the segments of `layout` with the catalog's
/// exact knapsack DP over per-segment error curves. Every segment receives
/// at least one bucket's worth of words; leftover words (grid quantisation)
/// are topped up greedily onto the highest-error segments.
pub fn split_segment_budget(
    values: &[i64],
    layout: &SegmentLayout,
    method: HistogramMethod,
    total_words: usize,
) -> Result<Vec<usize>> {
    if values.len() != layout.n() {
        return Err(SynopticError::InvalidParameter(format!(
            "layout covers {} positions, values hold {}",
            layout.n(),
            values.len()
        )));
    }
    let segments = layout.segments();
    let wpb = method.words_per_bucket();
    if total_words < segments * wpb {
        return Err(SynopticError::BudgetTooSmall {
            words: total_words,
            minimum: segments * wpb,
        });
    }
    if segments == 1 {
        return Ok(vec![total_words]);
    }
    let curves: Vec<ColumnCurve> = layout
        .iter()
        .enumerate()
        .map(|(s, (l, r))| ColumnCurve {
            name: format!("seg{s}"),
            weight: 1.0,
            points: segment_curve(&values[l..=r], wpb, total_words, segments),
        })
        .collect();
    let alloc = allocate_budget(&curves, total_words)?;
    let mut budgets: Vec<usize> = alloc.choices.iter().map(|&(_, w, _)| w).collect();
    let mut sse: Vec<f64> = alloc.choices.iter().map(|&(_, _, e)| e).collect();
    // Greedy top-up of grid-quantisation leftovers: hand whole buckets to
    // the worst-off segment that can still use them (budget capped at one
    // bucket per position).
    let mut leftover = total_words - alloc.total_words;
    while leftover >= wpb {
        let candidate = (0..segments)
            .filter(|&s| budgets[s] + wpb <= wpb * layout.len(s))
            .max_by(|&a, &b| sse[a].total_cmp(&sse[b]));
        let Some(s) = candidate else { break };
        budgets[s] += wpb;
        sse[s] /= 2.0; // crude decay so top-ups spread across segments
        leftover -= wpb;
    }
    Ok(budgets)
}

/// One segment's `(words, proxy-SSE)` curve over a geometric bucket grid.
/// The proxy is the V-optimal (within-bucket variance) cost of an
/// equi-width partition at each candidate bucket count, exact in `i128`
/// moments until the final float conversion.
fn segment_curve(
    slice: &[i64],
    wpb: usize,
    total_words: usize,
    segments: usize,
) -> Vec<(usize, f64)> {
    let len = slice.len();
    // Words any one segment could possibly be granted: the global budget
    // minus one mandatory bucket for every other segment, further capped
    // at one bucket per position.
    let cap_words = (total_words - (segments - 1) * wpb).min(wpb * len);
    let cap_buckets = (cap_words / wpb).max(1);
    let mut sum = vec![0i128; len + 1];
    let mut sq = vec![0i128; len + 1];
    for (i, &v) in slice.iter().enumerate() {
        sum[i + 1] = sum[i] + v as i128;
        sq[i + 1] = sq[i] + (v as i128) * (v as i128);
    }
    let cost_at = |buckets: usize| -> f64 {
        let mut total = 0.0;
        for b in 0..buckets {
            let l = b * len / buckets;
            let r = ((b + 1) * len / buckets).max(l + 1);
            let w = (r - l) as f64;
            let s = (sum[r] - sum[l]) as f64;
            let q = (sq[r] - sq[l]) as f64;
            total += q - s * s / w; // Σ(v−mean)² = Σv² − (Σv)²/|bucket|
        }
        total.max(0.0)
    };
    let mut points = Vec::new();
    let mut buckets = 1usize;
    while buckets < cap_buckets {
        points.push((buckets * wpb, cost_at(buckets)));
        buckets *= 2;
    }
    points.push((cap_buckets * wpb, cost_at(cap_buckets)));
    points
}

/// Builds one segment's synopsis through the anytime ladder, panics
/// contained. `values` is the whole-column snapshot; the slice is taken
/// from `layout`.
pub(crate) fn build_segment(
    method: HistogramMethod,
    values: &[i64],
    layout: &SegmentLayout,
    s: usize,
    words: usize,
    params: &AnytimeParams,
) -> Result<(Arc<dyn RangeEstimator>, BuildOutcome)> {
    let (l, r) = layout.bounds(s);
    let slice = &values[l..=r];
    let lps = PrefixSums::from_values(slice);
    let result = catch_unwind(AssertUnwindSafe(|| {
        build_anytime(method, slice, &lps, words, params)
    }))
    .unwrap_or_else(|payload| {
        Err(SynopticError::BuildPanicked {
            detail: panic_detail(payload),
        })
    })?;
    Ok((Arc::from(result.estimator), result.outcome))
}

/// Re-runs one segment's tier-0 method directly (no ladder) under `budget`,
/// for the background upgrade path. Panics contained.
pub(crate) fn upgrade_segment(
    method: HistogramMethod,
    values: &[i64],
    layout: &SegmentLayout,
    s: usize,
    words: usize,
    budget: &Budget,
) -> Result<(Arc<dyn RangeEstimator>, BuildOutcome)> {
    let (l, r) = layout.bounds(s);
    let slice = &values[l..=r];
    let lps = PrefixSums::from_values(slice);
    let started = Instant::now();
    let est = catch_unwind(AssertUnwindSafe(|| {
        build_with_budget(method, slice, &lps, words, budget)
    }))
    .unwrap_or_else(|payload| {
        Err(SynopticError::BuildPanicked {
            detail: panic_detail(payload),
        })
    })?;
    let outcome = BuildOutcome::direct(
        method.name(),
        started.elapsed().as_millis() as u64,
        budget.cells_used(),
    );
    Ok((Arc::from(est), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_grants_every_segment_at_least_one_bucket_and_spends_the_budget() {
        let vals: Vec<i64> = (0..64).map(|i| (i * 17) % 23 - 11).collect();
        let layout = SegmentLayout::equi_width(64, 4).unwrap();
        let budgets = split_segment_budget(&vals, &layout, HistogramMethod::Sap0, 48).unwrap();
        let wpb = HistogramMethod::Sap0.words_per_bucket();
        assert_eq!(budgets.len(), 4);
        for (s, &w) in budgets.iter().enumerate() {
            assert!(w >= wpb, "segment {s} got {w} < one bucket ({wpb})");
            assert!(w <= wpb * layout.len(s));
        }
        let spent: usize = budgets.iter().sum();
        assert!(spent <= 48);
        // The greedy top-up leaves less than one bucket unspent (unless
        // every segment is saturated at one bucket per position).
        assert!(48 - spent < wpb, "left {} words on the table", 48 - spent);
    }

    #[test]
    fn split_skews_words_toward_the_noisy_segment() {
        // Segment 0 is constant (zero within-bucket variance at any bucket
        // count); segment 1 alternates wildly. The DP should starve the
        // flat segment down to its mandatory bucket.
        let mut vals = vec![5i64; 32];
        for (i, v) in vals[16..].iter_mut().enumerate() {
            *v = if i % 2 == 0 { 1000 } else { -1000 };
        }
        let layout = SegmentLayout::equi_width(32, 2).unwrap();
        let budgets = split_segment_budget(&vals, &layout, HistogramMethod::Sap0, 40).unwrap();
        assert!(
            budgets[1] > budgets[0],
            "noisy segment should win the split: {budgets:?}"
        );
    }

    #[test]
    fn split_rejects_budgets_below_one_bucket_per_segment() {
        let vals = vec![1i64; 16];
        let layout = SegmentLayout::equi_width(16, 4).unwrap();
        let err = split_segment_budget(&vals, &layout, HistogramMethod::Sap0, 3);
        assert!(matches!(err, Err(SynopticError::BudgetTooSmall { .. })));
    }

    #[test]
    fn single_segment_takes_the_whole_budget() {
        let vals = vec![2i64; 8];
        let layout = SegmentLayout::equi_width(8, 1).unwrap();
        let budgets = split_segment_budget(&vals, &layout, HistogramMethod::Sap0, 12).unwrap();
        assert_eq!(budgets, vec![12]);
    }
}
