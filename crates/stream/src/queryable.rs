//! [`Queryable`] implementations for the stream tier's two answerers, so
//! maintained pool columns and replication followers expose the same
//! provenance-carrying estimate surface as the durable catalog and the
//! network client.

use synoptic_api::{AnswerEnvelope, Queryable};
use synoptic_core::{AnswerSource, RangeQuery, Result, SynopticError};

use crate::follow::Follower;
use crate::pool::ColumnHandle;

/// A pool column answers for its own name only. The envelope's
/// generation is the hot-swap serving generation, its lag the updates
/// applied since the last successful rebuild, and the build provenance
/// (monolithic and per-segment) rides along — nothing the handle knows
/// is dropped.
impl Queryable for ColumnHandle {
    fn query(&self, column: &str, q: RangeQuery) -> Result<AnswerEnvelope> {
        if column != self.name() {
            return Err(SynopticError::InvalidParameter(format!(
                "unknown column {column:?} (this handle serves {:?})",
                self.name()
            )));
        }
        // One pinned read gives (generation, snapshot) atomically: a
        // hot-swap landing between two separate loads would stamp the
        // NEW generation onto a value computed from the OLD snapshot —
        // provenance that lies. The serving tier pins the same way.
        let mut reader = self.reader();
        let (generation, snapshot) = reader.pinned();
        if q.hi >= snapshot.n() {
            return Err(SynopticError::IndexOutOfBounds {
                index: q.hi,
                n: snapshot.n(),
            });
        }
        Ok(AnswerEnvelope {
            value: snapshot.estimate(q),
            source: AnswerSource::Primary,
            generation,
            lag: self.stats().updates_since_rebuild,
            outcome: self.last_outcome(),
            segment_outcomes: self.segment_outcomes(),
        })
    }
}

/// A replication follower answers within its configured lag bound or
/// refuses ([`SynopticError::ReplicationLagExceeded`]) — the refusal
/// carries the same provenance the envelope would. The envelope's
/// generation is the applied LSN (the follower's publication counter)
/// and its lag the records it trails the leader by.
impl Queryable for Follower {
    fn query(&self, column: &str, q: RangeQuery) -> Result<AnswerEnvelope> {
        let value = self.estimate(column, q)?;
        let generation = self.applied_lsn(column).unwrap_or(0);
        let lag = self.lag(column).unwrap_or(0);
        Ok(AnswerEnvelope {
            value,
            source: AnswerSource::Primary,
            generation,
            lag,
            outcome: None,
            segment_outcomes: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintained::{RebuildConfig, RebuildPolicy};
    use crate::pool::{ColumnBuild, MaintainedPool};
    use synoptic_core::{Budget, PrefixSums, RangeEstimator};
    use synoptic_hist::sap0::build_sap0_with_budget;

    fn sap0_build() -> ColumnBuild {
        ColumnBuild::Custom(Box::new(|_v: &[i64], ps: &PrefixSums, b: &Budget| {
            Ok(Box::new(build_sap0_with_budget(ps, 3, b)?) as Box<dyn RangeEstimator>)
        }))
    }

    #[test]
    fn pool_column_envelope_carries_generation_and_lag() {
        let pool = MaintainedPool::new(1);
        let col = pool
            .add_column(
                "price",
                &vec![10i64; 16],
                sap0_build(),
                RebuildConfig::new(RebuildPolicy::Manual),
            )
            .unwrap();
        let env = col.query("price", RangeQuery::new(0, 15).unwrap()).unwrap();
        assert_eq!(env.generation, 0);
        assert_eq!(env.lag, 0);
        assert_eq!(env.source, AnswerSource::Primary);

        col.update(3, 5).unwrap();
        col.update(4, 5).unwrap();
        let env = col.query("price", RangeQuery::point(3)).unwrap();
        assert_eq!(env.lag, 2, "applied-but-not-rebuilt updates are the lag");

        col.request_rebuild().unwrap();
        col.quiesce();
        let env = col.query("price", RangeQuery::point(3)).unwrap();
        assert_eq!(env.generation, 1, "the rebuild's swap is visible");
        assert_eq!(env.lag, 0);

        // Wrong name and out-of-bounds ranges refuse loudly.
        assert!(col.query("ghost", RangeQuery::point(0)).is_err());
        assert!(matches!(
            col.query("price", RangeQuery::new(0, 16).unwrap()),
            Err(SynopticError::IndexOutOfBounds { index: 16, n: 16 })
        ));
        drop(pool);
    }
}
