//! Sharded background maintenance: the production driver for maintained
//! synopses.
//!
//! [`crate::MaintainedHistogram`] runs ingest, rebuild, and persist on one
//! thread, in order — a rebuild (milliseconds to seconds of DP) or a
//! persist retry ladder (up to [`RebuildConfig::persist_total_backoff`] of
//! backoff sleeps) stalls every `update()` caller. This module splits each
//! maintained column into two halves so that **ingest and range queries
//! never block on a rebuild or a persist retry**:
//!
//! * a lock-light **serving handle** ([`ColumnHandle`]): point updates go
//!   into a [`Fenwick`] tree behind a short mutex (held for `O(log n)`
//!   arithmetic, never across a build or I/O), and answers come from the
//!   last-good estimator behind a [`HotSwap`] cell — the read path is an
//!   `Arc` snapshot, and hot readers ([`ColumnHandle::reader`]) skip even
//!   that in the steady state via a generation check;
//! * a **background rebuild worker** that receives rebuild jobs over a
//!   channel, snapshots the live frequencies, runs the (budgeted,
//!   panic-contained) build, hot-swaps the fresh synopsis in, and performs
//!   the persist retry/backoff ladder *off-thread*.
//!
//! A [`MaintainedPool`] shards many columns across a fixed set of worker
//! threads (round-robin at registration; every job for a column runs on
//! its home worker, so per-column maintenance is serial and race-free by
//! construction), each column under its own [`RebuildConfig`] budget.
//!
//! ## The anytime upgrade path
//!
//! Columns registered with [`ColumnBuild::Anytime`] rebuild through the
//! quality ladder of `synoptic_hist::builder::build_anytime`. When a
//! deadline or cell cap forces the ladder to commit a *degraded* rung, a
//! column configured with [`RebuildConfig::with_background_upgrade`]
//! schedules an **upgrade job**: the worker re-runs the originally
//! requested method over a fresh snapshot with a multiplied budget and, on
//! success, hot-swaps the better synopsis (and re-persists it). This is
//! the inverse of the fallback ladder — degrade under pressure, quietly
//! restore full quality when the pressure lifts — and it runs entirely in
//! the background: serving answers from the degraded rung until the
//! upgrade lands, never from nothing.
//!
//! ## Serving invariant
//!
//! Same as the single-threaded facade, now under concurrency: once
//! [`MaintainedPool::add_column`] returns, the column's estimator **never
//! disappears** — every failure mode (budget exhaustion, cancellation,
//! builder panic, persist failure, worker shutdown) leaves the last-good
//! synopsis serving and is visible through [`ColumnHandle::stats`] /
//! [`ColumnHandle::last_error`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread;

use synoptic_core::{
    Budget, BuildOutcome, HotSwap, HotSwapReader, PrefixSums, RangeEstimator, RangeQuery, Result,
    SegmentLayout, SegmentedEstimator, SynopticError,
};
use synoptic_hist::builder::{build_anytime, build_with_budget, AnytimeParams, HistogramMethod};

use crate::fenwick::Fenwick;
use crate::maintained::{
    drift_exceeds, panic_detail, persist_durable_with_retry, persist_with_retry, run_builder,
    ColumnJournal, DurabilityConfig, DurablePersistFn, DurableSnapshot, PersistFn, RebuildConfig,
    RebuildPolicy, RebuildStats, SharedStorage,
};
use crate::segments::{build_segment, split_segment_budget, upgrade_segment, SegmentRuntime};

/// A boxed construction function for [`ColumnBuild::Custom`] columns.
/// `Send` because it runs on the column's home worker thread.
pub type PoolBuildFn =
    Box<dyn FnMut(&[i64], &PrefixSums, &Budget) -> Result<Box<dyn RangeEstimator>> + Send>;

/// How a pool column (re)builds its synopsis.
pub enum ColumnBuild {
    /// A caller-supplied builder (no ladder, no upgrade path).
    Custom(PoolBuildFn),
    /// The anytime quality ladder for `method` at `budget_words` of
    /// storage: degrades under budget pressure, and (with
    /// [`RebuildConfig::with_background_upgrade`]) upgrades back in the
    /// background.
    Anytime {
        /// The requested (tier-0) histogram method.
        method: HistogramMethod,
        /// Storage budget in machine words (the paper's accounting).
        budget_words: usize,
    },
}

/// Ingest-side mutable state, behind one short-lived mutex. The lock is
/// held for `O(log n)` Fenwick arithmetic on the ingest path and for the
/// `O(n)` snapshot copy at the start of a rebuild — never across a build,
/// a persist, or a sleep.
struct IngestState {
    fenwick: Fenwick,
    drift_abs: i128,
    mass_at_build: i128,
    updates_since_rebuild: u64,
    /// Per-segment dirty marks (segmented columns only; empty otherwise).
    /// Set by `update()` under this lock, snapshot-and-cleared by the
    /// worker at the rebuild cut.
    dirty: Vec<bool>,
}

/// Lock-free maintenance counters (see [`RebuildStats`] for meanings).
#[derive(Default)]
struct AtomicStats {
    updates: AtomicU64,
    rebuilds: AtomicU64,
    failed_rebuilds: AtomicU64,
    persist_failures: AtomicU64,
    persist_retries: AtomicU64,
    upgrades: AtomicU64,
    failed_upgrades: AtomicU64,
    coalesced: AtomicU64,
    segments_rebuilt: AtomicU64,
    segments_reused: AtomicU64,
}

/// Shared state of one maintained column.
struct ColumnInner {
    name: String,
    config: RebuildConfig,
    /// Worker-only state (the home worker is the single consumer; the
    /// mutexes make the struct `Sync` and recover from builder panics).
    build: Mutex<ColumnBuild>,
    persist: Mutex<Option<PersistFn>>,
    /// Write-ahead journal for durable columns (`None` = durability off,
    /// the default; the ingest path then never touches it). Appends run
    /// under the ingest lock so the journal order and the Fenwick order
    /// agree with the snapshot cut taken by rebuilds.
    wal: Option<ColumnJournal>,
    /// Persist hook for journaled columns (used instead of `persist`).
    durable_persist: Mutex<Option<DurablePersistFn>>,
    serving: Arc<HotSwap<dyn RangeEstimator>>,
    ingest: Mutex<IngestState>,
    /// Segment layout, per-segment budgets, and partial synopses for
    /// columns registered through
    /// [`MaintainedPool::add_column_segmented`]; `None` for monolithic
    /// columns (the default — their paths are unchanged).
    segments: Option<SegmentRuntime>,
    /// Failure cooldown, kept as atomics so the ingest hot path can tick
    /// it without holding the ingest lock.
    cooldown_remaining: AtomicU64,
    cooldown_factor: AtomicU64,
    stats: AtomicStats,
    /// True while a rebuild job is queued or running; gates scheduling so
    /// a hot ingest path cannot flood the worker queue.
    rebuild_pending: AtomicBool,
    /// Jobs scheduled but not yet finished (rebuilds *and* upgrades), for
    /// [`ColumnHandle::quiesce`].
    inflight: Mutex<u64>,
    inflight_cv: Condvar,
    last_error: Mutex<Option<SynopticError>>,
    last_outcome: Mutex<Option<BuildOutcome>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ColumnInner {
    fn stats_snapshot(&self) -> RebuildStats {
        let usr = lock(&self.ingest).updates_since_rebuild;
        RebuildStats {
            updates: self.stats.updates.load(Ordering::Relaxed),
            updates_since_rebuild: usr,
            rebuilds: self.stats.rebuilds.load(Ordering::Relaxed),
            failed_rebuilds: self.stats.failed_rebuilds.load(Ordering::Relaxed),
            persist_failures: self.stats.persist_failures.load(Ordering::Relaxed),
            persist_retries: self.stats.persist_retries.load(Ordering::Relaxed),
            upgrades: self.stats.upgrades.load(Ordering::Relaxed),
            failed_upgrades: self.stats.failed_upgrades.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            segments_rebuilt: self.stats.segments_rebuilt.load(Ordering::Relaxed),
            segments_reused: self.stats.segments_reused.load(Ordering::Relaxed),
        }
    }

    /// Consumes one cooldown tick if any remain. Lock-free: `fetch_update`
    /// only succeeds while the counter is positive, so concurrent ingest
    /// threads each consume at most one tick and none fires the policy
    /// while cooling down.
    fn in_cooldown(&self) -> bool {
        self.cooldown_remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| c.checked_sub(1))
            .is_ok()
    }

    fn start_cooldown(&self) {
        let factor = self.cooldown_factor.load(Ordering::Relaxed);
        self.cooldown_remaining.store(
            self.config.failure_cooldown_updates.saturating_mul(factor),
            Ordering::Release,
        );
        self.cooldown_factor
            .store((factor * 2).min(1024), Ordering::Relaxed);
    }

    fn clear_cooldown(&self) {
        self.cooldown_remaining.store(0, Ordering::Release);
        self.cooldown_factor.store(1, Ordering::Relaxed);
    }

    fn job_started(&self) {
        *lock(&self.inflight) += 1;
    }

    fn job_finished(&self) {
        let mut n = lock(&self.inflight);
        *n = n.saturating_sub(1);
        self.inflight_cv.notify_all();
    }

    fn set_error(&self, err: SynopticError) {
        *lock(&self.last_error) = Some(err);
    }
}

/// One job on a worker's queue.
enum Job {
    Rebuild(Arc<ColumnInner>),
    Upgrade(Arc<ColumnInner>),
    Shutdown,
}

/// The serving + ingest handle of a pool column. Cheap to clone; every
/// clone talks to the same column. All methods take `&self` — handles are
/// shared freely across writer and reader threads.
#[derive(Clone)]
pub struct ColumnHandle {
    inner: Arc<ColumnInner>,
    tx: mpsc::Sender<Job>,
}

impl ColumnHandle {
    /// Ingests `A[i] += delta`. Never blocks on a rebuild or a persist: the
    /// critical section is the Fenwick update plus policy arithmetic. When
    /// the rebuild policy fires (and no rebuild is already in flight), a
    /// rebuild job is scheduled on the column's home worker; the returned
    /// `bool` reports whether one was *scheduled* (the single-threaded
    /// facade's `update` reports synchronous completion instead).
    pub fn update(&self, i: usize, delta: i64) -> Result<bool> {
        // Narrow critical section: the write-ahead append, the Fenwick
        // write, the drift arithmetic it feeds, and the dirty-segment
        // mark. The global counter, cooldown tick, and policy decision
        // run on the captured snapshot after the lock drops.
        let (usr, drift_abs, mass) = {
            let mut st = lock(&self.inner.ingest);
            if let Some(wal) = &self.inner.wal {
                // Write-ahead: journal before mutating, inside the ingest
                // critical section so the journal order agrees with the
                // snapshot cut a concurrent rebuild takes. A failed append
                // rejects the update without touching in-memory state.
                assert!(
                    i < st.fenwick.n(),
                    "index {i} out of bounds for n={}",
                    st.fenwick.n()
                );
                wal.append(i as u64, delta)?;
            }
            st.fenwick.update(i, delta);
            st.drift_abs += (delta as i128).abs();
            st.updates_since_rebuild += 1;
            if let Some(seg) = &self.inner.segments {
                st.dirty[seg.layout.segment_of(i)] = true;
            }
            (st.updates_since_rebuild, st.drift_abs, st.mass_at_build)
        };
        self.inner.stats.updates.fetch_add(1, Ordering::Relaxed);
        if self.inner.in_cooldown() {
            return Ok(false);
        }
        let fire = match self.inner.config.policy {
            RebuildPolicy::EveryKUpdates(k) => usr >= k,
            RebuildPolicy::DriftFraction(f) => drift_exceeds(drift_abs, f, mass),
            RebuildPolicy::Manual => false,
        };
        if !fire {
            return Ok(false);
        }
        self.request_rebuild()
    }

    /// Schedules a rebuild on the column's home worker unless one is
    /// already queued or running. Returns whether a job was scheduled.
    /// Fails with [`SynopticError::WorkerUnavailable`] only when the pool
    /// has shut down — serving continues from the last-good synopsis even
    /// then.
    pub fn request_rebuild(&self) -> Result<bool> {
        if self.inner.rebuild_pending.swap(true, Ordering::AcqRel) {
            return Ok(false); // already in flight
        }
        self.inner.job_started();
        match self.tx.send(Job::Rebuild(Arc::clone(&self.inner))) {
            Ok(()) => Ok(true),
            Err(_) => {
                self.inner.rebuild_pending.store(false, Ordering::Release);
                self.inner.job_finished();
                let err = SynopticError::WorkerUnavailable {
                    column: self.inner.name.clone(),
                };
                self.inner.set_error(err.clone());
                Err(err)
            }
        }
    }

    /// The last-good estimator — never absent after registration. The
    /// returned snapshot stays valid even if a rebuild swaps a fresh one in
    /// a nanosecond later.
    pub fn estimator(&self) -> Arc<dyn RangeEstimator> {
        self.inner.serving.load()
    }

    /// A caching reader for hot answer loops: one atomic generation check
    /// per call in the steady state, no shared lock traffic.
    pub fn reader(&self) -> HotSwapReader<dyn RangeEstimator> {
        self.inner.serving.reader()
    }

    /// Estimated range sum from the current serving synopsis.
    pub fn estimate(&self, q: RangeQuery) -> f64 {
        self.estimator().estimate(q)
    }

    /// Exact current answer from the live Fenwick tree (maintenance-side).
    pub fn exact(&self, q: RangeQuery) -> i128 {
        lock(&self.inner.ingest).fenwick.range_sum(q.lo, q.hi)
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Maintenance counters (consistent snapshot of the atomic meters).
    pub fn stats(&self) -> RebuildStats {
        self.inner.stats_snapshot()
    }

    /// The most recent rebuild/persist/upgrade error, if any. Cleared by
    /// the next successful rebuild.
    pub fn last_error(&self) -> Option<SynopticError> {
        lock(&self.inner.last_error).clone()
    }

    /// Provenance of the most recent committed build (anytime columns):
    /// which rung served, what was abandoned, whether an upgrade replaced
    /// it (`tier == 0` with [`RebuildStats::upgrades`] incremented).
    pub fn last_outcome(&self) -> Option<BuildOutcome> {
        lock(&self.inner.last_outcome).clone()
    }

    /// Number of segments for columns registered through
    /// [`MaintainedPool::add_column_segmented`]; `None` for monolithic
    /// columns.
    pub fn segments(&self) -> Option<usize> {
        self.inner.segments.as_ref().map(|s| s.layout.segments())
    }

    /// Per-segment provenance: the committed [`BuildOutcome`] of every
    /// segment's most recent build, in segment order. `None` for
    /// monolithic columns. Clean segments keep the outcome of the build
    /// that produced their serving partial — the vector always describes
    /// exactly what is serving.
    pub fn segment_outcomes(&self) -> Option<Vec<BuildOutcome>> {
        self.inner
            .segments
            .as_ref()
            .map(|s| lock(&s.outcomes).clone())
    }

    /// The per-segment word budgets fixed by the joint split at
    /// registration. `None` for monolithic columns.
    pub fn segment_budgets(&self) -> Option<Vec<usize>> {
        self.inner.segments.as_ref().map(|s| s.budgets.clone())
    }

    /// Current dirty marks (segments touched since their last rebuild
    /// cut), in segment order. `None` for monolithic columns.
    pub fn dirty_segments(&self) -> Option<Vec<bool>> {
        self.inner
            .segments
            .as_ref()
            .map(|_| lock(&self.inner.ingest).dirty.clone())
    }

    /// How many swaps the serving cell has published (initial build = 0).
    pub fn serving_generation(&self) -> u64 {
        self.inner.serving.generation()
    }

    /// Whether this column journals its updates
    /// ([`MaintainedPool::add_column_durable`]).
    pub fn journaled(&self) -> bool {
        self.inner.wal.is_some()
    }

    /// LSN of the last acknowledged journal record (0 when nothing was
    /// journaled yet, or durability is off).
    pub fn wal_mark(&self) -> u64 {
        self.inner.wal.as_ref().map_or(0, |w| w.pending_mark())
    }

    /// Direct access to the column's journal when durability is enabled.
    /// Replication hangs off this: seal hooks, explicit seals, and
    /// per-follower retention holds that keep checkpoint truncation from
    /// deleting segments a registered follower has not acknowledged.
    pub fn journal(&self) -> Option<&ColumnJournal> {
        self.inner.wal.as_ref()
    }

    /// Blocks until every scheduled job (rebuilds and upgrades) for this
    /// column has finished. Test/shutdown aid; serving threads never need
    /// it.
    pub fn quiesce(&self) {
        let mut n = lock(&self.inner.inflight);
        while *n > 0 {
            n = self
                .inner
                .inflight_cv
                .wait(n)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A fixed pool of background maintenance workers serving many columns.
///
/// Columns are sharded round-robin at registration; all maintenance for a
/// column runs serially on its home worker. Dropping the pool shuts the
/// workers down gracefully (in-flight jobs finish; queued jobs are
/// abandoned with their bookkeeping released); handles outliving the pool
/// keep serving and ingesting, and report
/// [`SynopticError::WorkerUnavailable`] when a rebuild would be needed.
pub struct MaintainedPool {
    shards: Vec<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    next_shard: AtomicUsize,
}

impl MaintainedPool {
    /// Spawns `workers` background maintenance threads (at least one).
    pub fn new(workers: usize) -> Self {
        let count = workers.max(1);
        let mut shards = Vec::with_capacity(count);
        let mut handles = Vec::with_capacity(count);
        for idx in 0..count {
            let (tx, rx) = mpsc::channel::<Job>();
            let self_tx = tx.clone();
            let handle = thread::Builder::new()
                .name(format!("synoptic-maint-{idx}"))
                .spawn(move || worker_loop(rx, self_tx))
                .expect("spawn maintenance worker");
            shards.push(tx);
            handles.push(handle);
        }
        Self {
            shards,
            workers: handles,
            next_shard: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Registers a column: builds the initial synopsis synchronously on the
    /// caller's thread (under the configured budget — if it fails there is
    /// nothing to serve, so the error propagates), then hands maintenance
    /// to the column's home worker. If the initial anytime build committed
    /// a degraded rung and the config enables background upgrades, an
    /// upgrade job is scheduled immediately.
    pub fn add_column(
        &self,
        name: &str,
        values: &[i64],
        build: ColumnBuild,
        config: RebuildConfig,
    ) -> Result<ColumnHandle> {
        self.add_column_with_persist(name, values, build, config, None)
    }

    /// [`MaintainedPool::add_column`] with a persist hook, invoked by the
    /// worker (never the serving thread) after every successful rebuild or
    /// upgrade, under the bounded retry ladder.
    pub fn add_column_with_persist(
        &self,
        name: &str,
        values: &[i64],
        build: ColumnBuild,
        config: RebuildConfig,
        persist: Option<PersistFn>,
    ) -> Result<ColumnHandle> {
        self.register_column(name, values, build, config, persist, None, None, None)
    }

    /// Registers a **segmented** column: the domain is split into
    /// `segments` equi-width segments, the global `budget_words` is
    /// divided across them once by the catalog's exact knapsack DP
    /// ([`crate::split_segment_budget`]), and each segment builds its own
    /// synopsis through the anytime ladder. Serving composes the partials
    /// behind a [`SegmentedEstimator`]; `update()` marks only the touched
    /// segment dirty, and rebuilds re-run the ladder on dirty slices
    /// alone, reusing every clean partial bit-for-bit.
    pub fn add_column_segmented(
        &self,
        name: &str,
        values: &[i64],
        method: HistogramMethod,
        budget_words: usize,
        segments: usize,
        config: RebuildConfig,
    ) -> Result<ColumnHandle> {
        self.register_column(
            name,
            values,
            ColumnBuild::Anytime {
                method,
                budget_words,
            },
            config,
            None,
            None,
            None,
            Some(segments),
        )
    }

    /// [`MaintainedPool::add_column_segmented`] with write-ahead
    /// durability, composing exactly like
    /// [`MaintainedPool::add_column_durable`]: the journal, checkpoint,
    /// and replication paths are unchanged — segmentation only alters
    /// *what the worker rebuilds*, never what is journaled or persisted.
    #[allow(clippy::too_many_arguments)]
    pub fn add_column_segmented_durable(
        &self,
        name: &str,
        values: &[i64],
        method: HistogramMethod,
        budget_words: usize,
        segments: usize,
        config: RebuildConfig,
        storage: SharedStorage,
        durability: &DurabilityConfig,
        committed_generation: u64,
        persist: Option<DurablePersistFn>,
    ) -> Result<ColumnHandle> {
        let wal = durability.open_journal(storage, name, committed_generation)?;
        self.register_column(
            name,
            values,
            ColumnBuild::Anytime {
                method,
                budget_words,
            },
            config,
            None,
            wal,
            persist,
            Some(segments),
        )
    }

    /// [`MaintainedPool::add_column_with_persist`] for a **journaled**
    /// column: opens (or resumes) the column's write-ahead journal per
    /// `durability`, appends every acknowledged update to it before the
    /// in-memory state changes, and checkpoints it after each committed
    /// persist (`persist` returns the committed generation;
    /// `committed_generation` seeds new segment headers until then). With
    /// durability disabled in the config this degrades to the journal-free
    /// registration path.
    #[allow(clippy::too_many_arguments)]
    pub fn add_column_durable(
        &self,
        name: &str,
        values: &[i64],
        build: ColumnBuild,
        config: RebuildConfig,
        storage: SharedStorage,
        durability: &DurabilityConfig,
        committed_generation: u64,
        persist: Option<DurablePersistFn>,
    ) -> Result<ColumnHandle> {
        let wal = durability.open_journal(storage, name, committed_generation)?;
        self.register_column(name, values, build, config, None, wal, persist, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn register_column(
        &self,
        name: &str,
        values: &[i64],
        mut build: ColumnBuild,
        config: RebuildConfig,
        persist: Option<PersistFn>,
        wal: Option<ColumnJournal>,
        durable_persist: Option<DurablePersistFn>,
        segments: Option<usize>,
    ) -> Result<ColumnHandle> {
        validate_policy(&config.policy)?;
        let ps = PrefixSums::from_values(values);
        let budget = config.budget();
        let (initial, outcome, runtime) = match segments {
            None => {
                let (est, outcome) = run_column_build(&mut build, values, &ps, &budget, &config)?;
                (est, outcome, None)
            }
            Some(segs) => {
                let ColumnBuild::Anytime {
                    method,
                    budget_words,
                } = &build
                else {
                    return Err(SynopticError::InvalidParameter(
                        "segmented columns require an anytime build".into(),
                    ));
                };
                let (est, outcome, runtime) =
                    build_segmented_initial(*method, *budget_words, segs, values, &config)?;
                (est, outcome, Some(runtime))
            }
        };
        let degraded = outcome.as_ref().is_some_and(BuildOutcome::is_degraded);
        let dirty = runtime
            .as_ref()
            .map_or_else(Vec::new, |r| vec![false; r.layout.segments()]);
        let inner = Arc::new(ColumnInner {
            name: name.to_string(),
            config,
            build: Mutex::new(build),
            persist: Mutex::new(persist),
            wal,
            durable_persist: Mutex::new(durable_persist),
            serving: Arc::new(HotSwap::new(initial)),
            ingest: Mutex::new(IngestState {
                fenwick: Fenwick::from_values(values),
                drift_abs: 0,
                mass_at_build: ps.total().abs(),
                updates_since_rebuild: 0,
                dirty,
            }),
            segments: runtime,
            cooldown_remaining: AtomicU64::new(0),
            cooldown_factor: AtomicU64::new(1),
            stats: AtomicStats::default(),
            rebuild_pending: AtomicBool::new(false),
            inflight: Mutex::new(0),
            inflight_cv: Condvar::new(),
            last_error: Mutex::new(None),
            last_outcome: Mutex::new(outcome),
        });
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let tx = self.shards[shard].clone();
        let handle = ColumnHandle {
            inner: Arc::clone(&inner),
            tx,
        };
        // Persist the initial synopsis off-thread, piggybacked on the
        // upgrade/rebuild machinery: schedule an upgrade job when degraded
        // (it re-persists on success); otherwise leave durability to the
        // first rebuild, matching the single-threaded facade.
        if degraded && inner.config.upgrade_in_background {
            schedule_upgrade(&handle.tx, &inner);
        }
        Ok(handle)
    }

    /// Blocks until every column registered through this pool is idle.
    /// (Convenience for tests and orderly shutdown: call
    /// [`ColumnHandle::quiesce`] per column for finer control.)
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.shards {
            let _ = tx.send(Job::Shutdown);
        }
        self.shards.clear(); // drop senders so the channels disconnect
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MaintainedPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Schedules an upgrade job, with quiesce bookkeeping.
fn schedule_upgrade(tx: &mpsc::Sender<Job>, col: &Arc<ColumnInner>) {
    col.job_started();
    if tx.send(Job::Upgrade(Arc::clone(col))).is_err() {
        col.job_finished();
    }
}

/// Shared policy validation (mirrors `MaintainedHistogram::with_config`).
fn validate_policy(policy: &RebuildPolicy) -> Result<()> {
    if let RebuildPolicy::DriftFraction(f) = policy {
        if f.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SynopticError::InvalidParameter(
                "drift fraction must be positive".into(),
            ));
        }
    }
    if let RebuildPolicy::EveryKUpdates(0) = policy {
        return Err(SynopticError::InvalidParameter(
            "update period must be positive".into(),
        ));
    }
    Ok(())
}

/// Runs a column's builder (custom or anytime ladder) with panics contained,
/// returning the estimator as a shareable `Arc` plus anytime provenance.
#[allow(clippy::type_complexity)]
fn run_column_build(
    build: &mut ColumnBuild,
    values: &[i64],
    ps: &PrefixSums,
    budget: &Budget,
    config: &RebuildConfig,
) -> Result<(Arc<dyn RangeEstimator>, Option<BuildOutcome>)> {
    match build {
        ColumnBuild::Custom(f) => run_builder(f, values, ps, budget).map(|est| {
            let est: Arc<dyn RangeEstimator> = Arc::from(est);
            (est, None)
        }),
        ColumnBuild::Anytime {
            method,
            budget_words,
        } => {
            let params = anytime_params(config);
            let method = *method;
            let words = *budget_words;
            let result = catch_unwind(AssertUnwindSafe(|| {
                build_anytime(method, values, ps, words, &params)
            }))
            .unwrap_or_else(|payload| {
                Err(SynopticError::BuildPanicked {
                    detail: panic_detail(payload),
                })
            })?;
            let est: Arc<dyn RangeEstimator> = Arc::from(result.estimator);
            Ok((est, Some(result.outcome)))
        }
    }
}

/// The anytime-ladder execution constraints a [`RebuildConfig`] implies.
fn anytime_params(config: &RebuildConfig) -> AnytimeParams {
    let mut params = AnytimeParams::unconstrained();
    if let Some(d) = config.deadline {
        params = params.with_deadline(d);
    }
    if let Some(c) = config.max_cells {
        params = params.with_max_cells(c);
    }
    if let Some(t) = &config.cancel {
        params = params.with_cancel_token(t.clone());
    }
    params
}

/// The most-degraded outcome of a set (highest ladder tier), cloned — what
/// a segmented column reports through the monolithic
/// [`ColumnHandle::last_outcome`] accessor. Per-segment detail lives in
/// [`ColumnHandle::segment_outcomes`].
fn worst_outcome(outcomes: &[BuildOutcome]) -> Option<BuildOutcome> {
    outcomes.iter().max_by_key(|o| o.tier).cloned()
}

/// Builds every segment of a new segmented column through the anytime
/// ladder (synchronously, on the registering thread — like the monolithic
/// initial build, a failure here means there is nothing to serve and the
/// error propagates).
fn build_segmented_initial(
    method: HistogramMethod,
    budget_words: usize,
    segments: usize,
    values: &[i64],
    config: &RebuildConfig,
) -> Result<(
    Arc<dyn RangeEstimator>,
    Option<BuildOutcome>,
    SegmentRuntime,
)> {
    let layout = SegmentLayout::equi_width(values.len(), segments)?;
    let budgets = split_segment_budget(values, &layout, method, budget_words)?;
    let params = anytime_params(config);
    let mut parts: Vec<Arc<dyn RangeEstimator>> = Vec::with_capacity(segments);
    let mut outcomes: Vec<BuildOutcome> = Vec::with_capacity(segments);
    for (s, words) in budgets.iter().enumerate() {
        let (est, outcome) = build_segment(method, values, &layout, s, *words, &params)?;
        parts.push(est);
        outcomes.push(outcome);
    }
    let composed = SegmentedEstimator::new(layout.clone(), parts.clone())?;
    let worst = worst_outcome(&outcomes);
    let runtime = SegmentRuntime {
        layout,
        method,
        budgets,
        parts: Mutex::new(parts),
        outcomes: Mutex::new(outcomes),
        segment_builds: AtomicU64::new(segments as u64),
    };
    Ok((Arc::new(composed), worst, runtime))
}

/// Releases an abandoned job's bookkeeping (pending flag, quiesce counter)
/// so handles never wedge on shutdown.
fn abandon(job: Job) {
    match job {
        Job::Rebuild(col) => {
            col.rebuild_pending.store(false, Ordering::Release);
            col.job_finished();
        }
        Job::Upgrade(col) => col.job_finished(),
        Job::Shutdown => {}
    }
}

/// The column `job` duplicates within `queued` (same column, same kind),
/// if any. Running the earlier job serves both: a rebuild/upgrade always
/// works from a *fresh* snapshot of the live frequencies, so the duplicate
/// would redo identical work.
fn coalesces_into(queued: &[Job], job: &Job) -> Option<Arc<ColumnInner>> {
    for earlier in queued {
        match (earlier, job) {
            (Job::Rebuild(a), Job::Rebuild(b)) | (Job::Upgrade(a), Job::Upgrade(b))
                if Arc::ptr_eq(a, b) =>
            {
                return Some(Arc::clone(a));
            }
            _ => {}
        }
    }
    None
}

/// The worker loop: drains its queue until shutdown. Each wake-up pulls
/// the whole backlog and collapses duplicate jobs for the same column
/// before running any of them — a very hot column whose upgrades queue
/// faster than they run cannot build a backlog; dropped duplicates release
/// their bookkeeping and are counted in [`RebuildStats::coalesced`]. On
/// shutdown, queued jobs are abandoned but their bookkeeping (pending
/// flag, quiesce counter) is released so handles never wedge.
fn worker_loop(rx: mpsc::Receiver<Job>, self_tx: mpsc::Sender<Job>) {
    while let Ok(first) = rx.recv() {
        let mut shutdown = false;
        let mut run: Vec<Job> = Vec::new();
        let mut accept = |job: Job, run: &mut Vec<Job>| {
            if shutdown {
                abandon(job);
                return;
            }
            if matches!(job, Job::Shutdown) {
                shutdown = true;
                return;
            }
            if let Some(col) = coalesces_into(run, &job) {
                col.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                abandon(job);
                return;
            }
            run.push(job);
        };
        accept(first, &mut run);
        while let Ok(job) = rx.try_recv() {
            accept(job, &mut run);
        }
        for job in run {
            match job {
                Job::Rebuild(col) => run_rebuild(&col, &self_tx),
                Job::Upgrade(col) => run_upgrade(&col),
                Job::Shutdown => unreachable!("shutdown jobs never enter the run list"),
            }
        }
        if shutdown {
            while let Ok(stale) = rx.try_recv() {
                abandon(stale);
            }
            break;
        }
    }
}

/// One background rebuild: snapshot → budgeted build → hot-swap →
/// off-thread persist → (optionally) schedule an upgrade of a degraded
/// rung.
fn run_rebuild(col: &Arc<ColumnInner>, self_tx: &mpsc::Sender<Job>) {
    if col.segments.is_some() {
        run_rebuild_segmented(col, self_tx);
        return;
    }
    // 1. Snapshot the live frequencies. The ingest lock is held for the
    //    O(n) copy only — the build below runs without it. The WAL mark is
    //    read under the same lock: appends also run under it, so the mark
    //    names exactly the last journal record the snapshot contains.
    let (values, drift_snap, usr_snap, wal_mark) = {
        let st = lock(&col.ingest);
        (
            st.fenwick.to_values(),
            st.drift_abs,
            st.updates_since_rebuild,
            col.wal.as_ref().map(|w| w.pending_mark()),
        )
    };
    let ps = PrefixSums::from_values(&values);
    let budget = col.config.budget();
    let result = {
        let mut build = lock(&col.build);
        run_column_build(&mut build, &values, &ps, &budget, &col.config)
    };
    match result {
        Ok((est, outcome)) => {
            col.serving.swap(est);
            {
                // Rebase drift bookkeeping on the snapshot: updates that
                // arrived *during* the build keep their drift contribution
                // relative to the freshly built synopsis.
                let mut st = lock(&col.ingest);
                st.drift_abs -= drift_snap;
                st.mass_at_build = ps.total().abs();
                st.updates_since_rebuild -= usr_snap;
            }
            col.clear_cooldown();
            col.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
            *lock(&col.last_error) = None;
            let degraded = outcome.as_ref().is_some_and(BuildOutcome::is_degraded);
            if outcome.is_some() {
                *lock(&col.last_outcome) = outcome;
            }
            // Ingest may schedule the next rebuild from here on; it will
            // run after this job (same worker), which is exactly the
            // serialization we want.
            col.rebuild_pending.store(false, Ordering::Release);
            run_persist(col, &values, wal_mark);
            if degraded && col.config.upgrade_in_background {
                schedule_upgrade(self_tx, col);
            }
        }
        Err(err) => {
            col.stats.failed_rebuilds.fetch_add(1, Ordering::Relaxed);
            col.set_error(err);
            col.start_cooldown();
            col.rebuild_pending.store(false, Ordering::Release);
        }
    }
    col.job_finished();
}

/// One background rebuild of a **segmented** column: snapshot the live
/// frequencies *and* the dirty marks (clearing them at the cut), re-run
/// the anytime ladder on dirty slices only, and hot-swap a composition of
/// fresh and reused partials. A manual rebuild with nothing dirty
/// refreshes every segment.
///
/// Failure is atomic: if any segment's build fails (budget exhaustion,
/// cancellation mid-merge, panic), nothing swaps, the snapshot's dirty
/// marks are OR-ed back over whatever ingest dirtied meanwhile, and the
/// error — including cancellation provenance — surfaces through
/// [`ColumnHandle::last_error`] exactly like a monolithic failure.
fn run_rebuild_segmented(col: &Arc<ColumnInner>, self_tx: &mpsc::Sender<Job>) {
    let seg = col.segments.as_ref().expect("caller checked segments");
    let s_count = seg.layout.segments();
    let (values, drift_snap, usr_snap, wal_mark, dirty) = {
        let mut st = lock(&col.ingest);
        let dirty = std::mem::replace(&mut st.dirty, vec![false; s_count]);
        (
            st.fenwick.to_values(),
            st.drift_abs,
            st.updates_since_rebuild,
            col.wal.as_ref().map(|w| w.pending_mark()),
            dirty,
        )
    };
    let targets: Vec<usize> = if dirty.iter().any(|&d| d) {
        (0..s_count).filter(|&s| dirty[s]).collect()
    } else {
        (0..s_count).collect()
    };
    let params = anytime_params(&col.config);
    let mut fresh: Vec<(usize, Arc<dyn RangeEstimator>, BuildOutcome)> =
        Vec::with_capacity(targets.len());
    let mut failure: Option<SynopticError> = None;
    for &s in &targets {
        match build_segment(seg.method, &values, &seg.layout, s, seg.budgets[s], &params) {
            Ok((est, outcome)) => fresh.push((s, est, outcome)),
            Err(err) => {
                failure = Some(err);
                break;
            }
        }
    }
    seg.record_builds(fresh.len() as u64);
    let composed = match failure {
        Some(err) => Err(err),
        None => {
            let mut parts = lock(&seg.parts).clone();
            for (s, est, _) in &fresh {
                parts[*s] = Arc::clone(est);
            }
            SegmentedEstimator::new(seg.layout.clone(), parts)
        }
    };
    match composed {
        Ok(composed) => {
            // Commit: publish the composition, then record the fresh
            // partials and their provenance as the new baseline.
            col.serving.swap(Arc::new(composed));
            {
                let mut parts = lock(&seg.parts);
                let mut outcomes = lock(&seg.outcomes);
                for (s, est, outcome) in fresh {
                    parts[s] = est;
                    outcomes[s] = outcome;
                }
            }
            {
                let mut st = lock(&col.ingest);
                st.drift_abs -= drift_snap;
                st.mass_at_build = PrefixSums::from_values(&values).total().abs();
                st.updates_since_rebuild -= usr_snap;
            }
            col.clear_cooldown();
            col.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
            col.stats
                .segments_rebuilt
                .fetch_add(targets.len() as u64, Ordering::Relaxed);
            col.stats
                .segments_reused
                .fetch_add((s_count - targets.len()) as u64, Ordering::Relaxed);
            *lock(&col.last_error) = None;
            let (worst, degraded) = {
                let outcomes = lock(&seg.outcomes);
                let degraded = outcomes.iter().any(BuildOutcome::is_degraded);
                (worst_outcome(&outcomes), degraded)
            };
            *lock(&col.last_outcome) = worst;
            col.rebuild_pending.store(false, Ordering::Release);
            run_persist(col, &values, wal_mark);
            if degraded && col.config.upgrade_in_background {
                schedule_upgrade(self_tx, col);
            }
        }
        Err(err) => {
            {
                let mut st = lock(&col.ingest);
                for (s, &was) in dirty.iter().enumerate() {
                    if was {
                        st.dirty[s] = true;
                    }
                }
            }
            col.stats.failed_rebuilds.fetch_add(1, Ordering::Relaxed);
            col.set_error(err);
            col.start_cooldown();
            col.rebuild_pending.store(false, Ordering::Release);
        }
    }
    col.job_finished();
}

/// One background upgrade: re-run the abandoned tier-0 rung over a fresh
/// snapshot with a multiplied budget; hot-swap and re-persist on success.
fn run_upgrade(col: &Arc<ColumnInner>) {
    if col.segments.is_some() {
        run_upgrade_segmented(col);
        return;
    }
    let outcome = lock(&col.last_outcome).clone();
    let Some(outcome) = outcome else {
        col.job_finished();
        return;
    };
    if !outcome.is_degraded() {
        col.job_finished(); // a newer rebuild already restored full quality
        return;
    }
    let (method, words) = {
        let build = lock(&col.build);
        match &*build {
            ColumnBuild::Anytime {
                method,
                budget_words,
            } => (*method, *budget_words),
            ColumnBuild::Custom(_) => {
                col.job_finished(); // upgrades are an anytime-ladder concept
                return;
            }
        }
    };
    let (values, drift_snap, usr_snap, wal_mark) = {
        let st = lock(&col.ingest);
        (
            st.fenwick.to_values(),
            st.drift_abs,
            st.updates_since_rebuild,
            col.wal.as_ref().map(|w| w.pending_mark()),
        )
    };
    let ps = PrefixSums::from_values(&values);
    let factor = col.config.upgrade_budget_factor.max(1);
    let mut budget = Budget::unlimited();
    if let Some(d) = col.config.deadline {
        budget = budget.with_deadline(d * factor);
    }
    if let Some(c) = col.config.max_cells {
        budget = budget.with_max_cells(c.saturating_mul(factor as u64));
    }
    if let Some(t) = &col.config.cancel {
        budget = budget.with_cancel_token(t.clone());
    }
    let started = std::time::Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        build_with_budget(method, &values, &ps, words, &budget)
    }))
    .unwrap_or_else(|payload| {
        Err(SynopticError::BuildPanicked {
            detail: panic_detail(payload),
        })
    });
    match result {
        Ok(est) => {
            let est: Arc<dyn RangeEstimator> = Arc::from(est);
            col.serving.swap(est);
            {
                let mut st = lock(&col.ingest);
                st.drift_abs -= drift_snap;
                st.mass_at_build = ps.total().abs();
                st.updates_since_rebuild -= usr_snap;
            }
            col.stats.upgrades.fetch_add(1, Ordering::Relaxed);
            *lock(&col.last_outcome) = Some(BuildOutcome::direct(
                method.name(),
                started.elapsed().as_millis() as u64,
                budget.cells_used(),
            ));
            run_persist(col, &values, wal_mark);
        }
        Err(err) => {
            // The degraded synopsis keeps serving; the next degraded
            // rebuild will schedule another attempt.
            col.stats.failed_upgrades.fetch_add(1, Ordering::Relaxed);
            col.set_error(err);
        }
    }
    col.job_finished();
}

/// One background upgrade of a **segmented** column: re-run the tier-0
/// method directly (no ladder) on every segment whose committed outcome is
/// degraded, at the multiplied budget, and hot-swap the re-composition.
/// All-or-nothing like the monolithic upgrade: any failure keeps the
/// degraded partials serving and counts one failed upgrade.
fn run_upgrade_segmented(col: &Arc<ColumnInner>) {
    let seg = col.segments.as_ref().expect("caller checked segments");
    let degraded: Vec<usize> = {
        let outcomes = lock(&seg.outcomes);
        (0..outcomes.len())
            .filter(|&s| outcomes[s].is_degraded())
            .collect()
    };
    if degraded.is_empty() {
        col.job_finished(); // a newer rebuild already restored full quality
        return;
    }
    let (values, drift_snap, usr_snap, wal_mark) = {
        let st = lock(&col.ingest);
        (
            st.fenwick.to_values(),
            st.drift_abs,
            st.updates_since_rebuild,
            col.wal.as_ref().map(|w| w.pending_mark()),
        )
    };
    let factor = col.config.upgrade_budget_factor.max(1);
    let mut fresh: Vec<(usize, Arc<dyn RangeEstimator>, BuildOutcome)> =
        Vec::with_capacity(degraded.len());
    let mut failure: Option<SynopticError> = None;
    for &s in &degraded {
        let mut budget = Budget::unlimited();
        if let Some(d) = col.config.deadline {
            budget = budget.with_deadline(d * factor);
        }
        if let Some(c) = col.config.max_cells {
            budget = budget.with_max_cells(c.saturating_mul(factor as u64));
        }
        if let Some(t) = &col.config.cancel {
            budget = budget.with_cancel_token(t.clone());
        }
        match upgrade_segment(seg.method, &values, &seg.layout, s, seg.budgets[s], &budget) {
            Ok((est, outcome)) => fresh.push((s, est, outcome)),
            Err(err) => {
                failure = Some(err);
                break;
            }
        }
    }
    seg.record_builds(fresh.len() as u64);
    let composed = match failure {
        Some(err) => Err(err),
        None => {
            let mut parts = lock(&seg.parts).clone();
            for (s, est, _) in &fresh {
                parts[*s] = Arc::clone(est);
            }
            SegmentedEstimator::new(seg.layout.clone(), parts)
        }
    };
    match composed {
        Ok(composed) => {
            col.serving.swap(Arc::new(composed));
            {
                let mut parts = lock(&seg.parts);
                let mut outcomes = lock(&seg.outcomes);
                for (s, est, outcome) in fresh {
                    parts[s] = est;
                    outcomes[s] = outcome;
                }
            }
            {
                let mut st = lock(&col.ingest);
                st.drift_abs -= drift_snap;
                st.mass_at_build = PrefixSums::from_values(&values).total().abs();
                st.updates_since_rebuild -= usr_snap;
            }
            col.stats.upgrades.fetch_add(1, Ordering::Relaxed);
            *lock(&col.last_outcome) = worst_outcome(&lock(&seg.outcomes));
            run_persist(col, &values, wal_mark);
        }
        Err(err) => {
            // The degraded partials keep serving; the next degraded
            // rebuild schedules another attempt.
            col.stats.failed_upgrades.fetch_add(1, Ordering::Relaxed);
            col.set_error(err);
        }
    }
    col.job_finished();
}

/// Runs the persist hook (if any) through the shared bounded retry ladder,
/// on the worker thread. Journaled columns run the durable hook instead
/// (snapshot values + WAL mark), then checkpoint the journal at the mark
/// the committed generation now covers.
fn run_persist(col: &Arc<ColumnInner>, values: &[i64], wal_mark: Option<u64>) {
    let estimator = col.serving.load();
    if let Some(wal) = &col.wal {
        let mut hook = lock(&col.durable_persist);
        let Some(hook) = hook.as_mut() else {
            return;
        };
        let mark = wal_mark.unwrap_or(0);
        let snapshot = DurableSnapshot {
            estimator: estimator.as_ref(),
            values,
            wal_mark: mark,
        };
        let (report, generation) =
            persist_durable_with_retry(hook.as_mut(), &snapshot, &col.config);
        col.stats
            .persist_retries
            .fetch_add(report.retries, Ordering::Relaxed);
        if report.failed {
            col.stats.persist_failures.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(err) = report.last_error {
            col.set_error(err);
        }
        if !report.failed {
            if let Some(generation) = generation {
                // A failed truncation is non-fatal: stale segments are
                // skipped at replay (LSNs ≤ the committed mark) and the
                // next checkpoint retries the delete.
                if let Err(err) = wal.checkpoint(mark, generation) {
                    col.set_error(err);
                }
            }
        }
        return;
    }
    let mut persist = lock(&col.persist);
    let Some(persist) = persist.as_mut() else {
        return;
    };
    let report = persist_with_retry(persist.as_mut(), estimator.as_ref(), &col.config);
    col.stats
        .persist_retries
        .fetch_add(report.retries, Ordering::Relaxed);
    if report.failed {
        col.stats.persist_failures.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(err) = report.last_error {
        col.set_error(err);
    }
}

/// Compile-time proof (checked by every `cargo build`, including the
/// release gate in `ci.sh`) that the serving handle, the pool, and the
/// persist hook type cross thread boundaries.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<ColumnHandle>();
    assert_send_sync::<MaintainedPool>();
    assert_send::<PersistFn>();
    assert_send::<PoolBuildFn>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use synoptic_hist::sap0::build_sap0_with_budget;

    fn sap0_builder() -> ColumnBuild {
        ColumnBuild::Custom(Box::new(|_v: &[i64], ps: &PrefixSums, budget: &Budget| {
            Ok(Box::new(build_sap0_with_budget(ps, 3, budget)?) as Box<dyn RangeEstimator>)
        }))
    }

    #[test]
    fn pool_column_rebuilds_on_schedule() {
        let pool = MaintainedPool::new(2);
        let vals = vec![10i64; 12];
        let col = pool
            .add_column(
                "c",
                &vals,
                sap0_builder(),
                RebuildConfig::new(RebuildPolicy::EveryKUpdates(5)),
            )
            .unwrap();
        let mut scheduled = 0;
        for t in 0..12 {
            if col.update(t % 12, 1).unwrap() {
                scheduled += 1;
                col.quiesce(); // deterministic: let each rebuild land
            }
        }
        assert_eq!(scheduled, 2);
        let stats = col.stats();
        assert_eq!(stats.rebuilds, 2);
        assert_eq!(stats.updates, 12);
        assert_eq!(stats.failed_rebuilds, 0);
        assert_eq!(col.serving_generation(), 2);
    }

    #[test]
    fn rebuild_refreshes_toward_current_data() {
        let pool = MaintainedPool::new(1);
        let vals = vec![0i64; 8];
        let col = pool
            .add_column(
                "c",
                &vals,
                sap0_builder(),
                RebuildConfig::new(RebuildPolicy::EveryKUpdates(4)),
            )
            .unwrap();
        for _ in 0..4 {
            col.update(7, 25).unwrap();
        }
        col.quiesce();
        let est = col.estimate(RangeQuery { lo: 7, hi: 7 });
        assert!(est > 10.0, "estimate {est} should reflect the new spike");
    }

    #[test]
    fn failed_rebuild_keeps_serving_and_cools_down() {
        let pool = MaintainedPool::new(1);
        let vals = vec![7i64; 12];
        let mut calls = 0u32;
        let build =
            ColumnBuild::Custom(Box::new(move |_v: &[i64], ps: &PrefixSums, _b: &Budget| {
                calls += 1;
                if calls > 1 {
                    panic!("injected builder panic");
                }
                Ok(
                    Box::new(build_sap0_with_budget(ps, 3, &Budget::unlimited())?)
                        as Box<dyn RangeEstimator>,
                )
            }));
        let col = pool
            .add_column(
                "c",
                &vals,
                build,
                RebuildConfig::new(RebuildPolicy::EveryKUpdates(3)),
            )
            .unwrap();
        let q = RangeQuery { lo: 0, hi: 11 };
        let before = col.estimate(q);
        for t in 0..3 {
            col.update(t, 1).unwrap();
        }
        col.quiesce();
        let stats = col.stats();
        assert_eq!(stats.rebuilds, 0);
        assert_eq!(stats.failed_rebuilds, 1);
        assert!(matches!(
            col.last_error(),
            Some(SynopticError::BuildPanicked { detail }) if detail.contains("injected")
        ));
        // Serving never stopped, still the initial synopsis bit-for-bit.
        assert_eq!(before.to_bits(), col.estimate(q).to_bits());
        // Cooldown absorbs the next few updates without rescheduling.
        let stats_before = col.stats();
        for t in 0..4 {
            assert!(!col.update(t, 1).unwrap());
        }
        col.quiesce();
        assert_eq!(col.stats().failed_rebuilds, stats_before.failed_rebuilds);
    }

    #[test]
    fn handles_outliving_the_pool_keep_serving() {
        let pool = MaintainedPool::new(1);
        let vals = vec![5i64; 8];
        let col = pool
            .add_column(
                "c",
                &vals,
                sap0_builder(),
                RebuildConfig::new(RebuildPolicy::EveryKUpdates(2)),
            )
            .unwrap();
        drop(pool);
        // Ingest still works; the rebuild cannot be scheduled.
        col.update(0, 1).unwrap();
        match col.update(1, 1) {
            Err(SynopticError::WorkerUnavailable { column }) => assert_eq!(column, "c"),
            other => panic!("expected WorkerUnavailable, got {other:?}"),
        }
        // Serving continues from the last-good synopsis, and *both* updates
        // were ingested — a failed schedule never drops data.
        assert!(col.estimate(RangeQuery { lo: 0, hi: 7 }).is_finite());
        assert_eq!(col.exact(RangeQuery { lo: 0, hi: 0 }), 6);
        assert_eq!(col.exact(RangeQuery { lo: 1, hi: 1 }), 6);
    }

    #[test]
    fn manual_policy_never_schedules() {
        let pool = MaintainedPool::new(1);
        let vals = vec![3i64; 6];
        let col = pool
            .add_column(
                "c",
                &vals,
                sap0_builder(),
                RebuildConfig::new(RebuildPolicy::Manual),
            )
            .unwrap();
        for _ in 0..50 {
            assert!(!col.update(0, 2).unwrap());
        }
        assert_eq!(col.stats().rebuilds, 0);
        assert!(col.request_rebuild().unwrap());
        col.quiesce();
        assert_eq!(col.stats().rebuilds, 1);
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let pool = MaintainedPool::new(1);
        let vals = vec![1i64, 2];
        assert!(pool
            .add_column(
                "c",
                &vals,
                sap0_builder(),
                RebuildConfig::new(RebuildPolicy::EveryKUpdates(0)),
            )
            .is_err());
        assert!(pool
            .add_column(
                "c",
                &vals,
                sap0_builder(),
                RebuildConfig::new(RebuildPolicy::DriftFraction(0.0)),
            )
            .is_err());
    }

    #[test]
    fn drift_policy_fires_via_exact_comparison() {
        let pool = MaintainedPool::new(1);
        let vals = vec![100i64; 10]; // mass 1000
        let col = pool
            .add_column(
                "c",
                &vals,
                sap0_builder(),
                RebuildConfig::new(RebuildPolicy::DriftFraction(0.1)),
            )
            .unwrap();
        let mut scheduled = false;
        for _ in 0..101 {
            scheduled |= col.update(3, 1).unwrap();
        }
        assert!(scheduled, "101 units of |δ| must cross the 10% threshold");
        col.quiesce();
        assert_eq!(col.stats().rebuilds, 1);
    }

    #[test]
    fn upgrade_replaces_degraded_rung_with_requested_method() {
        // Measure budgets so the ladder degrades deterministically: pick a
        // cell cap that kills OPT-A (and the intermediate rungs) but lets
        // SAP0 through, then let the upgrade run OPT-A at factor× budget.
        let vals: Vec<i64> = (0..48).map(|i| (i * i * 31 + 7 * i) % 97 - 20).collect();
        let ps = PrefixSums::from_values(&vals);
        let cost = |m: HistogramMethod| {
            let b = Budget::unlimited();
            build_with_budget(m, &vals, &ps, 12, &b).unwrap();
            b.cells_used()
        };
        let opta = cost(HistogramMethod::OptA);
        let sap0 = cost(HistogramMethod::Sap0);
        let rounded = cost(HistogramMethod::OptARounded { eps: 0.25 });
        if !(sap0 < rounded && sap0 < opta) {
            return; // dataset shape made the ladder non-monotone; skip
        }
        let cap = sap0.max(1);
        let factor = (opta / cap + 2).min(u32::MAX as u64) as u32;
        let pool = MaintainedPool::new(1);
        let config = RebuildConfig::new(RebuildPolicy::EveryKUpdates(4))
            .with_max_cells(cap)
            .with_background_upgrade(factor);
        let col = pool
            .add_column(
                "c",
                &vals,
                ColumnBuild::Anytime {
                    method: HistogramMethod::OptA,
                    budget_words: 12,
                },
                config,
            )
            .unwrap();
        // The initial build already degrades → an upgrade job is scheduled
        // at registration; let it land.
        col.quiesce();
        let stats = col.stats();
        assert!(stats.upgrades >= 1, "stats: {stats:?}");
        assert_eq!(col.estimator().method_name(), "OPT-A");
        let outcome = col.last_outcome().unwrap();
        assert_eq!(outcome.used, "OPT-A");
        assert!(!outcome.is_degraded());

        // Now force a rebuild: it degrades again (same cap), commits the
        // weaker rung, and the background upgrade restores OPT-A.
        for t in 0..4 {
            col.update(t, 3).unwrap();
        }
        col.quiesce();
        let stats = col.stats();
        assert!(stats.rebuilds >= 1);
        assert!(stats.upgrades >= 2, "stats: {stats:?}");
        assert_eq!(col.estimator().method_name(), "OPT-A");
    }

    #[test]
    fn sharding_distributes_columns_across_workers() {
        let pool = MaintainedPool::new(3);
        assert_eq!(pool.workers(), 3);
        let vals = vec![4i64; 16];
        let cols: Vec<_> = (0..6)
            .map(|i| {
                pool.add_column(
                    &format!("col{i}"),
                    &vals,
                    sap0_builder(),
                    RebuildConfig::new(RebuildPolicy::EveryKUpdates(4)),
                )
                .unwrap()
            })
            .collect();
        for col in &cols {
            for t in 0..8 {
                col.update(t, 1).unwrap();
            }
        }
        for col in &cols {
            col.quiesce();
            assert!(col.stats().rebuilds >= 1, "{}", col.name());
            assert!(col.estimate(RangeQuery { lo: 0, hi: 15 }).is_finite());
        }
        pool.shutdown();
    }

    #[test]
    fn persist_runs_off_thread_with_bounded_retries() {
        let pool = MaintainedPool::new(1);
        let vals = vec![9i64; 6];
        let mut failures_left = 2u32;
        let persist: PersistFn = Box::new(move |_e: &dyn RangeEstimator| {
            if failures_left > 0 {
                failures_left -= 1;
                return Err(SynopticError::Io {
                    path: "/dev/faulty".into(),
                    detail: "transient".into(),
                });
            }
            Ok(())
        });
        let config = RebuildConfig::new(RebuildPolicy::Manual)
            .with_persist_retries(3, Duration::from_micros(10));
        let col = pool
            .add_column_with_persist("c", &vals, sap0_builder(), config, Some(persist))
            .unwrap();
        col.request_rebuild().unwrap();
        col.quiesce();
        let stats = col.stats();
        assert_eq!(stats.persist_retries, 2);
        assert_eq!(stats.persist_failures, 0);
    }
}
