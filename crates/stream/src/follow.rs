//! Follower-side replication: continuous WAL replay into read-only
//! serving state, with lag-bounded reads and recovery-based promotion.
//!
//! A [`Follower`] bootstraps by running the *existing* crash-recovery
//! path ([`crate::recovery::recover`]) over its local catalog and journal
//! — startup and promotion are the same code — then applies shipped
//! segments (see `synoptic_repl`) as they arrive:
//!
//! 1. **Validate on receipt.** Each [`Frame::Segment`] is decoded with
//!    [`decode_segment`]: every record CRC and the consecutive-LSN chain
//!    are re-verified on the follower, so a transport (or a buggy leader)
//!    cannot smuggle corruption into the replica's journal.
//! 2. **Anchor at the applied mark** — the PR 5 recovery invariant,
//!    enforced *online*: a segment is applied only when it starts at
//!    `applied_lsn + 1` (or overlaps below it). A fully duplicate segment
//!    is re-acknowledged idempotently. A segment that leaves a gap parks
//!    in a bounded reorder window; overflow is a loud refusal, and a
//!    stream that *ends* with parked segments is a
//!    [`SynopticError::ReplicationDivergence`] — never silence.
//! 3. **Journal before state.** The accepted segment's bytes are
//!    persisted into the follower's own journal directory (re-stamped to
//!    the follower's committed generation via
//!    [`restamp_segment_generation`]) *before* the in-memory frequencies
//!    change, preserving the leader-side WAL discipline. Promotion is
//!    therefore exactly [`crate::recovery::recover`] over local files.
//! 4. **Serve read-only, lag-bounded.** After each apply the follower
//!    publishes a fresh exact estimator through a
//!    [`synoptic_core::HotSwap`]; reads via [`Follower::estimate`] are
//!    refused with [`SynopticError::ReplicationLagExceeded`] (column,
//!    lag, and bound in the error — provenance, not a bare "no") once the
//!    replica trails the leader's mark beyond
//!    [`FollowConfig::max_lag`].
//! 5. **Fence by term, fail over by lease.** Every frame carries its
//!    sender's election term (see `synoptic_repl::election`). A frame on
//!    an *older* term than the replica has granted is refused with the
//!    replica's own term — the fencing verdict that stops a deposed
//!    leader. A newer term is adopted and persisted (a manifest
//!    generation) before anything of that term is applied. Under
//!    [`Follower::serve_with_lease`] the replica tracks heartbeat
//!    renewals on an injected clock and reports
//!    [`ServeOutcome::LeaseExpired`] when the leader goes silent; the
//!    caller then runs [`promote`] — recovery plus a persisted claim on
//!    `term + 1` — and starts serving as the new leader.
//! 6. **Checkpoint in place.** With
//!    [`FollowConfig::checkpoint_segments`] set, a long-lived replica
//!    periodically commits its live frequencies as a new catalog
//!    generation and truncates the journal segments the snapshot
//!    captured — the promote-in-place loop that keeps a
//!    week-of-ingest replica's journal bounded.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use synoptic_catalog::wal::{
    decode_segment, restamp_segment_generation, wal_file_name, ColumnWal, DecodedSegment,
    WalConfig, WAL_RECORD_LEN,
};
use synoptic_catalog::{Catalog, ColumnEntry, DurableCatalog, PersistentSynopsis};
use synoptic_core::{
    HotSwap, HotSwapReader, PrefixSums, RangeEstimator, RangeQuery, Result, SynopticError,
};
use synoptic_repl::election::{Clock, LeaseTracker};
use synoptic_repl::transport::{Received, Transport};
use synoptic_repl::wire::{decode_frame, encode_frame, Frame};

use crate::maintained::SharedStorage;
use crate::recovery::{recover, RecoveryReport};

/// Tuning for a [`Follower`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowConfig {
    /// Refuse reads once the replica trails the leader's pending mark by
    /// more than this many records. `None` serves at any staleness.
    pub max_lag: Option<u64>,
    /// How many non-anchoring (out-of-order) segments may park awaiting
    /// the gap-filler before the follower refuses. `0` refuses any
    /// non-anchoring segment immediately.
    pub reorder_window: usize,
    /// Auto-checkpoint: after this many applied segments a column commits
    /// its live frequencies as a new catalog generation and truncates the
    /// captured journal prefix, keeping a long-lived replica's journal
    /// bounded. `None` never checkpoints (journal grows until promotion).
    pub checkpoint_segments: Option<usize>,
}

impl Default for FollowConfig {
    fn default() -> Self {
        Self {
            max_lag: None,
            reorder_window: 8,
            checkpoint_segments: None,
        }
    }
}

/// How a [`Follower::serve_with_lease`] session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The leader closed the link cleanly; the end-of-stream invariant
    /// held.
    LeaderClosed,
    /// The leader's lease expired: no current-term heartbeat or segment
    /// arrived within the TTL. The replica should promote.
    LeaseExpired,
}

/// Exact read-only answering over the replica's live frequencies.
#[derive(Debug)]
struct ReplicaEstimator {
    n: usize,
    ps: PrefixSums,
}

impl ReplicaEstimator {
    fn new(values: &[i64]) -> Self {
        Self {
            n: values.len(),
            ps: PrefixSums::from_values(values),
        }
    }
}

impl RangeEstimator for ReplicaEstimator {
    fn n(&self) -> usize {
        self.n
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        self.ps.answer(q) as f64
    }
    fn storage_words(&self) -> usize {
        self.n
    }
    fn method_name(&self) -> &str {
        "REPLICA"
    }
}

struct FollowedColumn {
    values: Vec<i64>,
    applied_lsn: u64,
    leader_mark: u64,
    /// Parked out-of-order segments keyed by first LSN: `(seq, bytes)`.
    pending: BTreeMap<u64, (u64, Vec<u8>)>,
    serving: Arc<HotSwap<dyn RangeEstimator>>,
    /// Segments journaled since the last auto-checkpoint.
    segments_since_checkpoint: usize,
}

impl FollowedColumn {
    fn lag(&self) -> u64 {
        self.leader_mark.saturating_sub(self.applied_lsn)
    }
}

/// A read-only replica of journaled columns, fed by shipped WAL segments.
pub struct Follower {
    storage: SharedStorage,
    store: DurableCatalog<SharedStorage>,
    catalog: Catalog,
    wal_dir: PathBuf,
    generation: u64,
    term: u64,
    config: FollowConfig,
    columns: BTreeMap<String, FollowedColumn>,
    refusals: Vec<String>,
}

impl Follower {
    /// Opens a follower over its local durable state: runs full crash
    /// recovery (fsck → repair → prune → replay) on `catalog_dir` +
    /// `wal_dir` and serves every recovered journaled column. The same
    /// call *is* promotion — a promoted follower is just a process that
    /// ran this and started accepting writes instead of segments.
    pub fn open(
        storage: SharedStorage,
        catalog_dir: impl AsRef<Path>,
        wal_dir: impl Into<PathBuf>,
        config: FollowConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let wal_dir = wal_dir.into();
        let store = DurableCatalog::open(catalog_dir.as_ref(), Arc::clone(&storage))?;
        let report = recover(&store, &wal_dir)?;
        storage.create_dir_all(&wal_dir)?;
        let mut columns = BTreeMap::new();
        for col in &report.columns {
            let serving: Arc<HotSwap<dyn RangeEstimator>> =
                Arc::new(HotSwap::new(Arc::new(ReplicaEstimator::new(&col.values))));
            columns.insert(
                col.name.clone(),
                FollowedColumn {
                    values: col.values.clone(),
                    applied_lsn: col.committed_mark.max(col.max_lsn),
                    leader_mark: col.committed_mark.max(col.max_lsn),
                    pending: BTreeMap::new(),
                    serving,
                    segments_since_checkpoint: 0,
                },
            );
        }
        Ok((
            Self {
                storage,
                catalog: report.catalog.clone(),
                term: report.catalog.election_term(),
                store,
                wal_dir,
                generation: report.generation,
                config,
                columns,
                refusals: Vec::new(),
            },
            report,
        ))
    }

    /// The election term this replica has granted or observed (0 = no
    /// election has ever touched this node).
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Columns this replica serves, sorted.
    pub fn columns(&self) -> Vec<String> {
        self.columns.keys().cloned().collect()
    }

    /// The highest LSN applied *and locally journaled* for `column`.
    pub fn applied_lsn(&self, column: &str) -> Option<u64> {
        self.columns.get(column).map(|c| c.applied_lsn)
    }

    /// Records the leader has journaled beyond this replica's applied
    /// mark, per the freshest leader mark seen.
    pub fn lag(&self, column: &str) -> Option<u64> {
        self.columns.get(column).map(FollowedColumn::lag)
    }

    /// The replica's live frequencies for `column`.
    pub fn values(&self, column: &str) -> Option<&[i64]> {
        self.columns.get(column).map(|c| c.values.as_slice())
    }

    /// A hot-swap reader over the column's serving estimator. The reader
    /// itself does **not** enforce the lag bound — use
    /// [`Follower::estimate`] for bounded reads.
    pub fn reader(&self, column: &str) -> Option<HotSwapReader<dyn RangeEstimator>> {
        self.columns.get(column).map(|c| c.serving.reader())
    }

    /// Every refusal this follower has recorded, in order — the loud
    /// half of "converge or refuse".
    pub fn refusals(&self) -> &[String] {
        &self.refusals
    }

    /// Answers a range-sum query from the replica, refusing with full
    /// provenance ([`SynopticError::ReplicationLagExceeded`]) when the
    /// replica is staler than [`FollowConfig::max_lag`].
    pub fn estimate(&self, column: &str, q: RangeQuery) -> Result<f64> {
        let col = self
            .columns
            .get(column)
            .ok_or_else(|| SynopticError::InvalidParameter(format!("unknown column {column}")))?;
        if let Some(max_lag) = self.config.max_lag {
            let lag = col.lag();
            if lag > max_lag {
                return Err(SynopticError::ReplicationLagExceeded {
                    column: column.to_string(),
                    lag,
                    max_lag,
                });
            }
        }
        Ok(col.serving.load().estimate(q))
    }

    fn refuse(&mut self, column: &str, reason: String) -> Frame {
        let applied_lsn = self.columns.get(column).map(|c| c.applied_lsn).unwrap_or(0);
        self.refusals.push(format!("{column}: {reason}"));
        Frame::Refuse {
            term: self.term,
            column: column.to_string(),
            applied_lsn,
            reason,
        }
    }

    /// Adopts a newer term, persisting it (a manifest generation) before
    /// it takes effect — a crash between observing and persisting must
    /// re-observe, never regress. Returns a refusal reason on failure.
    fn adopt_term(&mut self, term: u64) -> std::result::Result<(), String> {
        if term <= self.term {
            return Ok(());
        }
        self.catalog.set_election_term(term);
        match self.store.save(&self.catalog) {
            Ok(generation) => {
                self.generation = generation;
                self.term = term;
                Ok(())
            }
            Err(e) => {
                // Roll the in-memory copy back: the durable state still
                // holds the old term, and the two must agree.
                self.catalog.set_election_term(self.term);
                Err(format!("persisting adopted term {term} failed: {e}"))
            }
        }
    }

    /// The fencing gate for leader-originated frames. `Ok` means the
    /// frame's term is current (adopting and persisting a newer one);
    /// `Err` is the refusal to send back, with term provenance.
    fn check_term(&mut self, column: &str, frame_term: u64) -> std::result::Result<(), Frame> {
        if frame_term < self.term {
            let current = self.term;
            return Err(self.refuse(
                column,
                format!(
                    "fenced: sender term {frame_term} is stale, this replica is on \
                     term {current}"
                ),
            ));
        }
        self.adopt_term(frame_term)
            .map_err(|reason| self.refuse(column, reason))
    }

    /// Persists `column`'s live frequencies as a new catalog generation
    /// and truncates the journal prefix the snapshot captured. Errors are
    /// reported as refusal reasons; the replica's in-memory state is
    /// untouched by a failed checkpoint (the journal simply stays long).
    fn checkpoint_column(&mut self, column: &str) -> std::result::Result<(), String> {
        let col = self.columns.get(column).expect("caller checked");
        let (values, applied_lsn) = (col.values.clone(), col.applied_lsn);
        self.catalog.insert(
            column,
            ColumnEntry {
                n: values.len(),
                total_rows: values.iter().sum(),
                synopsis: PersistentSynopsis::from_frequencies(&values),
            },
        );
        self.catalog.set_wal_mark(column, applied_lsn);
        let generation = self
            .store
            .save(&self.catalog)
            .map_err(|e| format!("checkpoint persist failed: {e}"))?;
        self.generation = generation;
        // Truncate through the proven WAL checkpoint path: sealed
        // segments wholly at or below the mark are deleted. A failure
        // here only delays truncation — replay filters by the mark.
        let wal = ColumnWal::open(
            Arc::clone(&self.storage),
            &self.wal_dir,
            column,
            generation,
            WalConfig::default(),
        )
        .map_err(|e| format!("checkpoint truncation open failed: {e}"))?;
        wal.checkpoint(applied_lsn, generation)
            .map_err(|e| format!("checkpoint truncation failed: {e}"))?;
        let col = self.columns.get_mut(column).expect("caller checked");
        col.segments_since_checkpoint = 0;
        Ok(())
    }

    /// Handles a leadership claim: grant when the term is newer (or a
    /// re-claim by the already-granted node), persisting term + vote
    /// *before* the grant frame travels — the at-most-one-grant-per-term
    /// invariant survives any crash. Everything else is fenced.
    fn handle_claim(&mut self, term: u64, node: u64) -> Frame {
        let current = self.term;
        let vote = self.catalog.election_vote();
        if term < current || (term == current && vote != Some(node)) {
            return self.refuse(
                "",
                format!(
                    "claim of term {term} by node {node} fenced: this replica is on \
                     term {current}{}",
                    match vote {
                        Some(v) if term == current => format!(", granted to node {v}"),
                        _ => String::new(),
                    }
                ),
            );
        }
        if term > current || vote != Some(node) {
            // Stage on a copy: the in-memory catalog only advances when
            // the grant is durably committed.
            let mut staged = self.catalog.clone();
            staged.set_election_term(term);
            staged.set_election_vote(node);
            match self.store.save(&staged) {
                Ok(generation) => {
                    self.catalog = staged;
                    self.generation = generation;
                    self.term = term;
                }
                Err(e) => {
                    return self.refuse("", format!("persisting grant of term {term} failed: {e}"));
                }
            }
        }
        Frame::Grant { term, node }
    }

    /// Applies one decoded, validated, anchoring segment: journal first,
    /// then memory, then publish. Returns a refusal reason on failure
    /// (nothing applied).
    fn apply_anchored(
        &mut self,
        column: &str,
        seq: u64,
        bytes: &[u8],
        decoded: &DecodedSegment,
    ) -> std::result::Result<(), String> {
        let col = self.columns.get_mut(column).expect("caller checked");
        let n = col.values.len();
        let fresh: Vec<_> = decoded
            .records
            .iter()
            .filter(|r| r.lsn > col.applied_lsn)
            .collect();
        // Validate everything before touching journal or memory: a
        // half-applied segment would be exactly the silent divergence
        // this subsystem exists to refuse.
        for r in &fresh {
            if r.index >= n as u64 {
                return Err(format!(
                    "record LSN {} targets index {} outside 0..{n}",
                    r.lsn, r.index
                ));
            }
        }
        // Journal before state, re-stamped to the *local* committed
        // generation so promotion-time recovery anchors cleanly.
        let valid = decoded.header_len + decoded.records.len() * WAL_RECORD_LEN;
        let mut local = bytes[..valid].to_vec();
        let file = wal_file_name(column, seq);
        restamp_segment_generation(&mut local, &file, self.generation)
            .map_err(|e| e.to_string())?;
        self.storage
            .write_atomic(&self.wal_dir.join(&file), &local)
            .map_err(|e| format!("journaling shipped segment failed: {e}"))?;
        let col = self.columns.get_mut(column).expect("caller checked");
        for r in fresh {
            let i = r.index as usize;
            col.values[i] = col.values[i].wrapping_add(r.delta);
        }
        col.applied_lsn = decoded.last_lsn;
        col.segments_since_checkpoint += 1;
        col.serving
            .swap(Arc::new(ReplicaEstimator::new(&col.values)));
        Ok(())
    }

    fn handle_segment(
        &mut self,
        column: String,
        seq: u64,
        leader_mark: u64,
        bytes: Vec<u8>,
    ) -> Frame {
        let Some(col) = self.columns.get_mut(&column) else {
            return self.refuse(
                &column,
                "unknown column: not in this replica's committed catalog".to_string(),
            );
        };
        col.leader_mark = col.leader_mark.max(leader_mark);
        let file = wal_file_name(&column, seq);
        let decoded = match decode_segment(&bytes, &file) {
            Ok(d) => d,
            Err(e) => return self.refuse(&column, format!("corrupt shipped segment: {e}")),
        };
        if decoded.torn_tail {
            return self.refuse(
                &column,
                format!(
                    "torn segment transfer: {} of {} bytes decoded",
                    decoded.header_len + decoded.records.len() * WAL_RECORD_LEN,
                    bytes.len()
                ),
            );
        }
        if decoded.column != column {
            return self.refuse(
                &column,
                format!("segment header names column '{}'", decoded.column),
            );
        }
        if decoded.records.is_empty() || decoded.last_lsn <= col.applied_lsn {
            // Fully duplicate (or empty): replay is idempotent — re-ack.
            let applied_lsn = col.applied_lsn;
            return Frame::Ack {
                term: self.term,
                column,
                applied_lsn,
            };
        }
        if decoded.first_lsn > col.applied_lsn + 1 {
            // Does not anchor at the applied mark. Park it when the
            // reorder window allows; otherwise refuse, loudly.
            if col.pending.len() < self.config.reorder_window {
                let applied_lsn = col.applied_lsn;
                col.pending.insert(decoded.first_lsn, (seq, bytes));
                return Frame::Ack {
                    term: self.term,
                    column,
                    applied_lsn,
                };
            }
            let expected = col.applied_lsn + 1;
            let window = self.config.reorder_window;
            return self.refuse(
                &column,
                format!(
                    "segment does not anchor: starts at LSN {} where {} was expected \
                     (reorder window of {} is full)",
                    decoded.first_lsn, expected, window
                ),
            );
        }
        if let Err(reason) = self.apply_anchored(&column, seq, &bytes, &decoded) {
            return self.refuse(&column, reason);
        }
        // The gap-filler may unblock parked segments — drain in LSN order.
        loop {
            let col = self.columns.get_mut(&column).expect("checked");
            let Some((&first_lsn, _)) = col.pending.iter().next() else {
                break;
            };
            if first_lsn > col.applied_lsn + 1 {
                break;
            }
            let (seq, parked) = col.pending.remove(&first_lsn).expect("peeked");
            let file = wal_file_name(&column, seq);
            match decode_segment(&parked, &file) {
                Ok(d) if d.last_lsn <= self.columns[&column].applied_lsn => {} // stale duplicate
                Ok(d) => {
                    if let Err(reason) = self.apply_anchored(&column, seq, &parked, &d) {
                        return self.refuse(&column, reason);
                    }
                }
                Err(e) => {
                    return self.refuse(&column, format!("corrupt parked segment: {e}"));
                }
            }
        }
        // Auto-checkpoint: promote-in-place once enough segments landed.
        if let Some(threshold) = self.config.checkpoint_segments {
            if self.columns[&column].segments_since_checkpoint >= threshold.max(1) {
                if let Err(reason) = self.checkpoint_column(&column) {
                    // A failed checkpoint is recorded but not fatal: the
                    // replica keeps serving, the journal just stays long.
                    self.refusals.push(format!("{column}: {reason}"));
                }
            }
        }
        let applied_lsn = self.columns[&column].applied_lsn;
        Frame::Ack {
            term: self.term,
            column,
            applied_lsn,
        }
    }

    /// Processes one raw frame and returns the encoded response frame
    /// (always exactly one: an ack, a grant, or a refusal).
    pub fn handle(&mut self, frame_bytes: &[u8]) -> Vec<u8> {
        let response = match decode_frame(frame_bytes) {
            Ok(Frame::Segment {
                term,
                column,
                seq,
                leader_mark,
                bytes,
            }) => match self.check_term(&column, term) {
                Ok(()) => self.handle_segment(column, seq, leader_mark, bytes),
                Err(refusal) => refusal,
            },
            Ok(Frame::Heartbeat {
                term,
                column,
                leader_mark,
            }) => match self.check_term(&column, term) {
                Ok(()) => match self.columns.get_mut(&column) {
                    Some(col) => {
                        col.leader_mark = col.leader_mark.max(leader_mark);
                        let applied_lsn = col.applied_lsn;
                        Frame::Ack {
                            term: self.term,
                            column,
                            applied_lsn,
                        }
                    }
                    None => self.refuse(&column, "unknown column".to_string()),
                },
                Err(refusal) => refusal,
            },
            Ok(Frame::Claim { term, node }) => self.handle_claim(term, node),
            Ok(Frame::Snapshot { column, .. }) => self.refuse(
                &column,
                "re-seed snapshot outside a rejoin session: this replica already \
                 holds committed state"
                    .to_string(),
            ),
            Ok(Frame::Ack { column, .. } | Frame::Refuse { column, .. }) => self.refuse(
                &column,
                "follower received a follower-side frame".to_string(),
            ),
            Ok(Frame::Grant { term, .. }) => self.refuse(
                "",
                format!("follower received a grant for term {term} it never claimed"),
            ),
            Err(e) => {
                // The outer frame did not validate; there is no column to
                // charge it to. The empty column name tells the shipper
                // "yours, probably torn in flight".
                self.refusals.push(format!("<frame>: {e}"));
                Frame::Refuse {
                    term: self.term,
                    column: String::new(),
                    applied_lsn: 0,
                    reason: e.to_string(),
                }
            }
        };
        encode_frame(&response)
    }

    /// The end-of-stream invariant: a stream may not end with parked
    /// (unanchored) segments — that gap is a divergence, reported with
    /// the exact LSNs involved.
    pub fn finish(&self) -> Result<()> {
        for (name, col) in &self.columns {
            if let Some((&first_lsn, _)) = col.pending.iter().next() {
                return Err(SynopticError::ReplicationDivergence {
                    context: name.clone(),
                    detail: format!(
                        "stream ended with a parked segment at LSN {first_lsn} that never \
                         anchored (applied mark {})",
                        col.applied_lsn
                    ),
                });
            }
        }
        Ok(())
    }

    /// Serves one replication session: applies frames until the peer
    /// closes, then checks the end-of-stream invariant.
    pub fn serve(&mut self, transport: &mut dyn Transport) -> Result<()> {
        loop {
            match transport.recv(None)? {
                Received::Frame(bytes) => {
                    let response = self.handle(&bytes);
                    // The peer may close immediately after its last frame;
                    // an undeliverable response is the peer's loss (its
                    // retry ladder re-solicits), not replica corruption.
                    if transport.send(&response).is_err() {
                        break;
                    }
                }
                Received::Closed => break,
                Received::TimedOut => unreachable!("recv(None) cannot time out"),
            }
        }
        self.finish()
    }

    /// Serves like [`Follower::serve`] while tracking the leader's lease
    /// on the injected `clock`: any current-or-newer-term leader frame
    /// renews the lease, and once `ttl` clock ticks pass without one the
    /// session ends with [`ServeOutcome::LeaseExpired`] — the caller's
    /// cue to [`promote`]. `poll` is the real-time granularity at which
    /// the transport is polled between frames (the clock, not `poll`,
    /// decides expiry — tests drive a `ManualClock` and never depend on
    /// wall-time).
    ///
    /// A lease expiry does **not** run the end-of-stream invariant:
    /// parked (never-anchored, never-acknowledged) segments are the dead
    /// leader's unacknowledged tail, and promotion serves exactly the
    /// acknowledged prefix.
    pub fn serve_with_lease(
        &mut self,
        transport: &mut dyn Transport,
        clock: &dyn Clock,
        ttl: u64,
        poll: Duration,
    ) -> Result<ServeOutcome> {
        let mut lease = LeaseTracker::arm(ttl, clock.now());
        loop {
            match transport.recv(Some(poll))? {
                Received::Frame(bytes) => {
                    // Only a frame carrying a current-or-newer term is
                    // proof of a live, valid leader: a fenced ex-leader's
                    // heartbeats must not keep the lease alive.
                    if let Ok(frame) = decode_frame(&bytes) {
                        if frame.term() >= self.term
                            && matches!(
                                frame,
                                Frame::Segment { .. }
                                    | Frame::Heartbeat { .. }
                                    | Frame::Claim { .. }
                            )
                        {
                            lease.renew(clock.now());
                        }
                    }
                    let response = self.handle(&bytes);
                    if transport.send(&response).is_err() {
                        self.finish()?;
                        return Ok(ServeOutcome::LeaderClosed);
                    }
                }
                Received::Closed => {
                    self.finish()?;
                    return Ok(ServeOutcome::LeaderClosed);
                }
                Received::TimedOut => {
                    if lease.expired(clock.now()) {
                        return Ok(ServeOutcome::LeaseExpired);
                    }
                }
            }
        }
    }
}

/// Promotes a replica to leadership: full crash recovery over its local
/// catalog + journal (exactly [`Follower::open`]'s path — the invariants
/// the promotion sweep proves), then a durable claim of `term + 1` voted
/// to `node`. Returns the claimed term and the recovery report; the
/// caller re-opens the maintained loop over the recovered state and
/// starts shipping with the new term stamped on every frame.
pub fn promote(
    storage: SharedStorage,
    catalog_dir: impl AsRef<Path>,
    wal_dir: impl AsRef<Path>,
    node: u64,
) -> Result<(u64, RecoveryReport)> {
    let store = DurableCatalog::open(catalog_dir.as_ref(), Arc::clone(&storage))?;
    let report = recover(&store, wal_dir.as_ref())?;
    let mut catalog = report.catalog.clone();
    let term = catalog.election_term() + 1;
    catalog.set_election_term(term);
    catalog.set_election_vote(node);
    store.save(&catalog)?;
    Ok((term, report))
}
