//! O(log n)-per-update maintenance of Haar coefficient sets.
//!
//! Two maintained transforms:
//!
//! * [`StreamingHaar`] — the dense orthonormal Haar transform of `A` itself.
//!   A point update `A[i] += δ` changes exactly one wavelet per level plus
//!   the scaling coefficient: `θ_c += δ·h_c(i)`.
//! * [`StreamingRangeOptimal`] — the two endpoint transforms `Hp`, `Hq` of
//!   the paper's virtual range-sum matrix (Theorem 9). A point update shifts
//!   the prefix-sum vector by `+δ` on a *suffix*, i.e. by a step function;
//!   a step is orthogonal to every wavelet whose support lies entirely
//!   inside or outside it, so again only one wavelet per level (plus
//!   scaling) changes: `θ_c += δ·⟨h_c, 1_{[s,N)}⟩`.
//!
//! Both snapshots hand the maintained dense transforms to the static
//! synopsis constructors, so a snapshot after any update stream is
//! *identical* to a from-scratch build over the materialized array — the
//! invariant the tests enforce.

use synoptic_core::{Result, SynopticError};
use synoptic_wavelet::haar::{forward, next_pow2, BasisFn};
use synoptic_wavelet::{PointWaveletSynopsis, RangeOptimalWavelet};

/// The coefficient indices whose basis functions contain position `i`
/// (scaling + one wavelet per level).
fn touching_indices(i: usize, nn: usize) -> impl Iterator<Item = usize> {
    debug_assert!(nn.is_power_of_two() && i < nn);
    let levels = nn.trailing_zeros() as usize;
    std::iter::once(0).chain((0..levels).map(move |j| {
        let block = nn >> j; // support width at level j
        (1usize << j) + i / block
    }))
}

/// Dynamically maintained dense Haar transform of the data array.
#[derive(Debug, Clone)]
pub struct StreamingHaar {
    n: usize,
    nn: usize,
    coeffs: Vec<f64>,
    updates: u64,
}

impl StreamingHaar {
    /// Initializes from the current frequencies.
    pub fn new(values: &[i64]) -> Result<Self> {
        if values.is_empty() {
            return Err(SynopticError::EmptyInput);
        }
        let n = values.len();
        let nn = next_pow2(n);
        let mut coeffs: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        coeffs.resize(nn, 0.0);
        forward(&mut coeffs);
        Ok(Self {
            n,
            nn,
            coeffs,
            updates: 0,
        })
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Applies `A[i] += delta` in O(log n).
    pub fn update(&mut self, i: usize, delta: i64) -> Result<()> {
        if i >= self.n {
            return Err(SynopticError::IndexOutOfBounds {
                index: i,
                n: self.n,
            });
        }
        let d = delta as f64;
        for c in touching_indices(i, self.nn) {
            self.coeffs[c] += d * BasisFn::for_index(c, self.nn).eval(i);
        }
        self.updates += 1;
        Ok(())
    }

    /// Number of updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The maintained dense transform.
    pub fn dense(&self) -> &[f64] {
        &self.coeffs
    }

    /// Snapshots a top-`b` point synopsis from the live transform.
    pub fn snapshot(&self, b: usize) -> PointWaveletSynopsis {
        PointWaveletSynopsis::from_dense(self.n, &self.coeffs, b)
    }
}

/// Dynamically maintained endpoint transforms for the range-optimal wavelet
/// synopsis (Theorem 9).
#[derive(Debug, Clone)]
pub struct StreamingRangeOptimal {
    n: usize,
    nn: usize,
    /// Transform of `p(j) = P[j+1]` (constant-padded).
    hp: Vec<f64>,
    /// Transform of `q(i) = P[i]` (constant-padded).
    hq: Vec<f64>,
    updates: u64,
}

impl StreamingRangeOptimal {
    /// Initializes from the current frequencies.
    pub fn new(values: &[i64]) -> Result<Self> {
        if values.is_empty() {
            return Err(SynopticError::EmptyInput);
        }
        let n = values.len();
        let nn = next_pow2(n + 1);
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0f64);
        let mut acc = 0.0;
        for &v in values {
            acc += v as f64;
            prefix.push(acc);
        }
        let total = acc;
        let mut hp: Vec<f64> = (0..nn)
            .map(|j| if j < n { prefix[j + 1] } else { total })
            .collect();
        let mut hq: Vec<f64> = (0..nn)
            .map(|i| if i <= n { prefix[i] } else { total })
            .collect();
        forward(&mut hp);
        forward(&mut hq);
        Ok(Self {
            n,
            nn,
            hp,
            hq,
            updates: 0,
        })
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds `δ·1_{[s, N)}` (a suffix step) to a maintained transform in
    /// O(log N): scaling takes `δ·(N−s)/√N`; per level, only the wavelet
    /// whose support straddles `s` has a non-zero inner product with the
    /// step (a wavelet fully inside the step integrates to zero).
    fn add_step(coeffs: &mut [f64], nn: usize, s: usize, delta: f64) {
        if s >= nn {
            return;
        }
        for c in touching_indices(s, nn) {
            let basis = BasisFn::for_index(c, nn);
            coeffs[c] += delta * basis.range_sum(s, nn - 1);
        }
    }

    /// Applies `A[i] += delta` in O(log n).
    ///
    /// `p(j) = P[j+1]` shifts by `δ` for `j ≥ i`; `q(x) = P[x]` shifts for
    /// `x ≥ i + 1`; the constant padding (total mass) shifts with both.
    pub fn update(&mut self, i: usize, delta: i64) -> Result<()> {
        if i >= self.n {
            return Err(SynopticError::IndexOutOfBounds {
                index: i,
                n: self.n,
            });
        }
        let d = delta as f64;
        Self::add_step(&mut self.hp, self.nn, i, d);
        Self::add_step(&mut self.hq, self.nn, i + 1, d);
        self.updates += 1;
        Ok(())
    }

    /// Number of updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Snapshots a top-`b` range-optimal synopsis from the live transforms.
    pub fn snapshot(&self, b: usize) -> RangeOptimalWavelet {
        RangeOptimalWavelet::from_transforms(self.n, &self.hp, &self.hq, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::sse::sse_brute;
    use synoptic_core::{PrefixSums, RangeEstimator, RangeQuery};

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    #[test]
    fn touching_indices_covers_exactly_the_containing_bases() {
        let nn = 16;
        for i in 0..nn {
            let touched: Vec<usize> = touching_indices(i, nn).collect();
            assert_eq!(touched.len(), 1 + 4); // scaling + log2(16) levels
            for c in 0..nn {
                let contains = BasisFn::for_index(c, nn).eval(i) != 0.0;
                assert_eq!(
                    touched.contains(&c),
                    contains,
                    "position {i}, coefficient {c}"
                );
            }
        }
    }

    #[test]
    fn streaming_haar_matches_from_scratch_after_updates() {
        let mut vals = vec![5i64, 2, 8, 1, 9, 9, 0, 3, 3, 7];
        let mut sh = StreamingHaar::new(&vals).unwrap();
        let mut seed = 99u64;
        for _ in 0..200 {
            let i = (lcg(&mut seed) % vals.len() as u64) as usize;
            let d = (lcg(&mut seed) % 21) as i64 - 10;
            vals[i] += d;
            sh.update(i, d).unwrap();
        }
        assert_eq!(sh.updates(), 200);
        let fresh = StreamingHaar::new(&vals).unwrap();
        for (a, b) in sh.dense().iter().zip(fresh.dense()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        // Snapshots answer identically.
        let ps = PrefixSums::from_values(&vals);
        let s1 = sh.snapshot(6);
        let s2 = fresh.snapshot(6);
        for q in RangeQuery::all(vals.len()) {
            assert!((s1.estimate(q) - s2.estimate(q)).abs() < 1e-6);
        }
        let _ = sse_brute(&s1, &ps);
    }

    #[test]
    fn streaming_range_optimal_matches_from_scratch_after_updates() {
        let mut vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2];
        let mut sr = StreamingRangeOptimal::new(&vals).unwrap();
        let mut seed = 7u64;
        for _ in 0..150 {
            let i = (lcg(&mut seed) % vals.len() as u64) as usize;
            let d = (lcg(&mut seed) % 15) as i64 - 7;
            vals[i] += d;
            sr.update(i, d).unwrap();
        }
        let ps = PrefixSums::from_values(&vals);
        let live = sr.snapshot(8);
        let fresh = RangeOptimalWavelet::build(&ps, 8);
        for q in RangeQuery::all(vals.len()) {
            assert!(
                (live.estimate(q) - fresh.estimate(q)).abs() < 1e-5,
                "{q:?}: {} vs {}",
                live.estimate(q),
                fresh.estimate(q)
            );
        }
        assert!(
            (live.virtual_matrix_error() - fresh.virtual_matrix_error()).abs()
                <= 1e-5 * (1.0 + fresh.virtual_matrix_error())
        );
    }

    #[test]
    fn single_update_changes_only_log_n_coefficients() {
        let vals = vec![10i64; 16];
        let mut sh = StreamingHaar::new(&vals).unwrap();
        let before = sh.dense().to_vec();
        sh.update(5, 3).unwrap();
        let changed = sh
            .dense()
            .iter()
            .zip(&before)
            .filter(|(a, b)| (*a - *b).abs() > 1e-12)
            .count();
        assert!(changed <= 5, "1 + log2(16) = 5, got {changed}");
    }

    #[test]
    fn updates_are_bounds_checked() {
        let vals = vec![1i64, 2, 3];
        let mut sh = StreamingHaar::new(&vals).unwrap();
        assert!(sh.update(3, 1).is_err());
        let mut sr = StreamingRangeOptimal::new(&vals).unwrap();
        assert!(sr.update(9, 1).is_err());
        assert!(StreamingHaar::new(&[]).is_err());
        assert!(StreamingRangeOptimal::new(&[]).is_err());
    }

    #[test]
    fn update_then_inverse_update_is_identity() {
        let vals = vec![4i64, 7, 7, 2, 9, 1, 1, 5];
        let mut sr = StreamingRangeOptimal::new(&vals).unwrap();
        let hp0 = sr.hp.clone();
        let hq0 = sr.hq.clone();
        sr.update(3, 42).unwrap();
        sr.update(3, -42).unwrap();
        for (a, b) in sr.hp.iter().zip(&hp0) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in sr.hq.iter().zip(&hq0) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
