//! A binary-indexed (Fenwick) tree over `i64` frequencies: the exact,
//! update-friendly companion to the static `PrefixSums` table.

/// Fenwick tree supporting O(log n) point updates and prefix sums.
#[derive(Debug, Clone)]
pub struct Fenwick {
    /// 1-based internal tree; `tree[0]` unused.
    tree: Vec<i128>,
    n: usize,
}

impl Fenwick {
    /// An all-zero tree over `n` positions.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
            n,
        }
    }

    /// Builds from initial frequencies in O(n).
    pub fn from_values(values: &[i64]) -> Self {
        let n = values.len();
        let mut tree = vec![0i128; n + 1];
        for (i, &v) in values.iter().enumerate() {
            tree[i + 1] += v as i128;
            let j = (i + 1) + ((i + 1) & (i + 1).wrapping_neg());
            if j <= n {
                let carried = tree[i + 1];
                tree[j] += carried;
            }
        }
        Self { tree, n }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `A[i] += delta` in O(log n).
    pub fn update(&mut self, i: usize, delta: i64) {
        assert!(i < self.n, "index {i} out of bounds for n={}", self.n);
        let mut j = i + 1;
        while j <= self.n {
            self.tree[j] += delta as i128;
            j += j & j.wrapping_neg();
        }
    }

    /// Fallible [`Fenwick::update`] for untrusted indexes (WAL replay):
    /// returns `false` and leaves the tree untouched when `i >= n` instead
    /// of panicking.
    pub fn try_update(&mut self, i: usize, delta: i64) -> bool {
        if i >= self.n {
            return false;
        }
        self.update(i, delta);
        true
    }

    /// Prefix sum `A[0] + … + A[i−1]` (i.e. `P[i]`), `i ∈ 0..=n`, O(log n).
    pub fn prefix(&self, i: usize) -> i128 {
        debug_assert!(i <= self.n);
        let mut acc = 0i128;
        let mut j = i;
        while j > 0 {
            acc += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        acc
    }

    /// Inclusive range sum `s[a, b]`.
    pub fn range_sum(&self, a: usize, b: usize) -> i128 {
        self.prefix(b + 1) - self.prefix(a)
    }

    /// Total mass.
    pub fn total(&self) -> i128 {
        self.prefix(self.n)
    }

    /// Materializes the current frequencies in O(n log n).
    pub fn to_values(&self) -> Vec<i64> {
        (0..self.n).map(|i| (self.range_sum(i, i)) as i64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_matches_naive_prefixes() {
        let vals = vec![3i64, -1, 4, 1, -5, 9, 2, 6, 5];
        let f = Fenwick::from_values(&vals);
        let mut acc = 0i128;
        for i in 0..=vals.len() {
            assert_eq!(f.prefix(i), acc, "prefix({i})");
            if i < vals.len() {
                acc += vals[i] as i128;
            }
        }
        assert_eq!(f.to_values(), vals);
    }

    #[test]
    fn updates_are_reflected_everywhere() {
        let mut f = Fenwick::new(8);
        f.update(3, 10);
        f.update(0, 2);
        f.update(7, -4);
        assert_eq!(f.range_sum(0, 7), 8);
        assert_eq!(f.range_sum(3, 3), 10);
        assert_eq!(f.range_sum(4, 6), 0);
        f.update(3, -10);
        assert_eq!(f.range_sum(3, 3), 0);
    }

    #[test]
    fn random_update_query_interleave_matches_reference() {
        let n = 33;
        let mut f = Fenwick::new(n);
        let mut reference = vec![0i64; n];
        let mut s = 12345u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s
        };
        for _ in 0..500 {
            let i = (next() % n as u64) as usize;
            let d = (next() % 41) as i64 - 20;
            f.update(i, d);
            reference[i] += d;
            let a = (next() % n as u64) as usize;
            let b = a + (next() as usize % (n - a));
            let want: i128 = reference[a..=b].iter().map(|&v| v as i128).sum();
            assert_eq!(f.range_sum(a, b), want);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn update_bounds_checked() {
        Fenwick::new(4).update(4, 1);
    }

    #[test]
    fn try_update_rejects_out_of_range_without_panicking() {
        let mut f = Fenwick::new(4);
        assert!(f.try_update(3, 5));
        assert!(!f.try_update(4, 1));
        assert!(!f.try_update(usize::MAX, 1));
        assert_eq!(f.total(), 5);
    }
}
