//! # synoptic-stream
//!
//! Dynamic maintenance of range-sum synopses under point updates
//! (`A[i] += δ`) — the "dynamic maintenance of such statistics" direction
//! the paper cites from the wavelet literature (§3), built out as a full
//! subsystem:
//!
//! * [`fenwick`] — a binary-indexed tree over the live frequencies: exact
//!   O(log n) point updates and prefix sums, the maintenance-side source of
//!   truth.
//! * [`haar_stream`] — **O(log n)-per-update** maintenance of Haar
//!   coefficient sets: [`haar_stream::StreamingHaar`] tracks the transform
//!   of `A` itself; [`haar_stream::StreamingRangeOptimal`] tracks the
//!   first-row/first-column coefficients of the paper's virtual range-sum
//!   matrix (Theorem 9). The key fact making the latter cheap: a point
//!   update shifts the prefix-sum vector by a *step function*, which is
//!   orthogonal to every wavelet whose support does not straddle the update
//!   position — so only one wavelet per level changes.
//! * [`progressive`] — online query answering (the paper's §1 scenario):
//!   a synopsis answer refined by user-paced scanning, with certified
//!   shrinking bounds.
//! * [`maintained`] — a rebuild-policy wrapper around any histogram family:
//!   ingest updates, serve the last-built synopsis, and rebuild when the
//!   accumulated drift or update count crosses a policy threshold.
//! * [`pool`] — the multi-threaded serving layer: a [`pool::MaintainedPool`]
//!   shards columns across a fixed set of background rebuild workers so that
//!   ingest and query threads never block on a rebuild or a persist retry;
//!   serving estimators are published through `synoptic_core::HotSwap`.
//! * [`recovery`] — crash recovery for journaled columns: fsck the durable
//!   catalog, prune abandoned generations, replay the write-ahead journal
//!   on top of the committed snapshot, and hand back exact frequencies to
//!   re-serve from. Durability itself is opt-in per column via
//!   [`maintained::DurabilityConfig`].
//! * [`segments`] — segmented columns: the domain splits into equi-width
//!   segments, each with its own anytime-built partial synopsis and a word
//!   budget fixed by the catalog's exact knapsack DP; `update()` dirties
//!   only the touched segment and rebuilds re-run the ladder on dirty
//!   slices alone ([`pool::MaintainedPool::add_column_segmented`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fenwick;
pub mod follow;
pub mod haar_stream;
pub mod maintained;
pub mod pool;
pub mod progressive;
pub mod queryable;
pub mod recovery;
pub mod segments;

pub use fenwick::Fenwick;
pub use follow::{promote, FollowConfig, Follower, ServeOutcome};
pub use haar_stream::{StreamingHaar, StreamingRangeOptimal};
pub use maintained::{
    drift_exceeds, ColumnJournal, DurabilityConfig, DurablePersistFn, DurableSnapshot,
    MaintainedHistogram, PersistFn, RebuildConfig, RebuildPolicy, RebuildStats, SharedStorage,
};
pub use pool::{ColumnBuild, ColumnHandle, MaintainedPool, PoolBuildFn};
pub use progressive::{ProgressiveAnswer, ProgressiveQuery};
pub use recovery::{recover, rejoin, RecoveredColumn, RecoveryReport};
pub use segments::split_segment_budget;
