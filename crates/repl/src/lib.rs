//! # synoptic-repl
//!
//! WAL segment replication for journaled columns: the leader streams
//! sealed write-ahead segments (see [`synoptic_catalog::wal`]) to N
//! follower processes, which continuously replay them into read-only
//! serving state. The subsystem keeps the workspace's zero-external-deps
//! contract: transports are std-only.
//!
//! * [`wire`] — the length-prefixed, CRC-checksummed frame format
//!   (`Segment` / `Heartbeat` / `Ack` / `Refuse`). Sealed segment files
//!   ship byte-for-byte; the receiver re-validates every record CRC and
//!   the LSN chain on receipt, so a transport cannot silently corrupt a
//!   journal.
//! * [`transport`] — the [`Transport`] trait with three implementations:
//!   [`TcpTransport`] (std-only, length-prefixed frames over a
//!   `TcpStream`), [`MemTransport`] (an in-process duplex pair for tests
//!   and same-process followers), and [`FaultyTransport`] (deterministic
//!   fault injection — drops, torn mid-record streams, duplicated frames,
//!   reordering — mirroring `synoptic_catalog::FaultyStorage`).
//! * [`ship`] — the leader side: [`Shipper`] probes a follower's applied
//!   LSN, ships every sealed segment past it in order, tracks cumulative
//!   acks, retries refused or lost segments with backoff, and reports —
//!   loudly, never silently — when a follower cannot converge.
//! * [`election`] — lease-based leader election and automated failover:
//!   monotonic terms persisted through the catalog's manifest
//!   generations, heartbeat-renewed leases over injectable clocks,
//!   fencing of deposed leaders via term-stamped frames, and the
//!   [`Seeder`] re-seed path that brings a fenced ex-leader or evicted
//!   laggard back as a follower.
//!
//! The follower side lives in `synoptic_stream::follow`, next to the
//! recovery machinery it reuses for promotion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod election;
pub mod ship;
pub mod transport;
pub mod wire;

pub use election::{Clock, LeaseTracker, ManualClock, SeedReport, Seeder, TermLedger, WallClock};
pub use ship::{ShipReport, Shipper};
pub use transport::{
    FaultyTransport, MemTransport, Received, TcpTransport, Transport, TransportFault,
};
pub use wire::{decode_frame, encode_frame, Frame};
