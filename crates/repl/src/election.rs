//! Lease-based leader election, fencing terms, and follower re-seed.
//!
//! Replication (PR 6) made a follower converge or refuse loudly; this
//! module makes failover *automatic*. The design is deliberately the
//! smallest thing that is safe for a primary/backup pair, not a
//! consensus protocol:
//!
//! * **Terms** are monotonic epoch counters persisted in the catalog
//!   manifest's WAL-marks section ([`synoptic_catalog::ELECTION_TERM_KEY`])
//!   — the same atomically-swapped generation machinery that protects
//!   synopses protects the term, so a crash can never roll a term back.
//! * **Leases** are heartbeat-renewed: a follower tracks the last tick a
//!   current-term heartbeat arrived and considers the leader dead once
//!   `ttl` ticks pass in silence. Time is an injected [`Clock`] —
//!   [`ManualClock`] in tests (fully deterministic, no wall-clock) and
//!   [`WallClock`] in the CLI.
//! * **Fencing**: every wire frame carries its sender's term. A receiver
//!   on a newer term refuses the frame with its own term in the refusal;
//!   the sender's shipper turns that into
//!   [`SynopticError::StaleLeaderTerm`]. A deposed leader cannot write —
//!   not because it promises to stop, but because every follower refuses
//!   it with provenance.
//! * **Promotion** is follower-driven and reuses the proven `recover`
//!   path: when the lease expires, the follower recovers its own catalog
//!   plus journal (exactly the crash path tested by the promotion
//!   sweep), claims `term + 1`, and starts serving.
//! * **Re-seed** ([`Seeder`]) brings a stranded node back: a fenced
//!   ex-leader, or a follower whose retention hold was cap-evicted,
//!   receives each column's committed frequency snapshot
//!   ([`crate::wire::Frame::Snapshot`]) plus the journal tail as ordinary
//!   segments, and rejoins as a follower.
//!
//! Safety argument (two nodes, one link): at most one node holds a valid
//! lease per term because a term is only ever claimed by the single node
//! that observed the previous lease expire, and every claim is granted at
//! most once — the grant is persisted (term + vote) before the `Grant`
//! frame is sent, so even a crash-and-restart cannot double-grant. An
//! ex-leader that never observed the new term keeps writing under its old
//! term and every such write is refused.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use synoptic_catalog::storage::Storage;
use synoptic_catalog::store::DurableCatalog;
use synoptic_catalog::wal::{list_journal_columns, scan_column_journal};
use synoptic_core::{Result, SynopticError};

use crate::ship::Shipper;
use crate::transport::{Received, Transport};
use crate::wire::{decode_frame, encode_frame, Frame};

/// A source of monotonic ticks. Lease arithmetic never touches the wall
/// clock directly — tests inject a [`ManualClock`] and advance it
/// explicitly, so every timeout path is deterministic.
pub trait Clock: Send + Sync {
    /// The current tick. Units are the caller's choice (tests use
    /// abstract ticks, the CLI uses milliseconds); only differences are
    /// ever computed.
    fn now(&self) -> u64;
}

/// A hand-advanced clock for deterministic tests. Clones share the same
/// underlying tick counter.
#[derive(Clone, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances by one tick.
    pub fn tick(&self) {
        self.advance(1);
    }

    /// Advances by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.0.fetch_add(ticks, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Milliseconds since the clock was created — the production clock behind
/// `synoptic follow --auto-promote`.
pub struct WallClock(std::time::Instant);

impl WallClock {
    /// A clock whose tick 0 is now.
    pub fn new() -> Self {
        Self(std::time::Instant::now())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// Follower-side lease bookkeeping: when did the leader last prove it was
/// alive, and has the lease expired?
#[derive(Debug, Clone)]
pub struct LeaseTracker {
    ttl: u64,
    renewed_at: u64,
}

impl LeaseTracker {
    /// Arms a lease of `ttl` ticks, treating `now` as the first renewal —
    /// a leader that never heartbeats at all still expires.
    pub fn arm(ttl: u64, now: u64) -> Self {
        Self {
            ttl,
            renewed_at: now,
        }
    }

    /// Records a heartbeat (of a current-or-newer term) at `now`.
    pub fn renew(&mut self, now: u64) {
        self.renewed_at = self.renewed_at.max(now);
    }

    /// Whether more than `ttl` ticks have passed since the last renewal.
    pub fn expired(&self, now: u64) -> bool {
        now.saturating_sub(self.renewed_at) > self.ttl
    }

    /// Ticks left before expiry (0 when already expired).
    pub fn remaining(&self, now: u64) -> u64 {
        (self.renewed_at + self.ttl).saturating_sub(now)
    }
}

/// Durable term/vote state, persisted through a [`DurableCatalog`]'s
/// manifest generations. Opening the ledger on a node's catalog root
/// reads whatever term that node last committed; [`TermLedger::claim`]
/// persists a newer term before it takes effect.
pub struct TermLedger<S: Storage> {
    store: DurableCatalog<S>,
}

impl<S: Storage> TermLedger<S> {
    /// Opens the ledger over a catalog root.
    pub fn open(root: impl Into<PathBuf>, storage: S) -> Result<Self> {
        Ok(Self {
            store: DurableCatalog::open(root, storage)?,
        })
    }

    /// The committed `(term, vote)` pair. Term 0 with no vote means the
    /// node has never participated in an election.
    pub fn current(&self) -> Result<(u64, Option<u64>)> {
        let cat = self.store.load()?;
        Ok((cat.election_term(), cat.election_vote()))
    }

    /// Persists `node`'s claim on `term`. Refuses (with provenance) a
    /// term at or below the committed one unless the committed vote
    /// already names `node` — terms are monotonic and granted at most
    /// once, which is the whole single-leaseholder argument.
    pub fn claim(&self, term: u64, node: u64) -> Result<u64> {
        let mut cat = self.store.load()?;
        let committed = cat.election_term();
        if term < committed || (term == committed && cat.election_vote() != Some(node)) {
            return Err(SynopticError::StaleLeaderTerm {
                stale_term: term,
                current_term: committed,
            });
        }
        cat.set_election_term(term);
        cat.set_election_vote(node);
        self.store.save(&cat)
    }
}

/// What one [`Seeder::seed`] call transferred.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeedReport {
    /// Columns whose committed frequency snapshot was transferred.
    pub snapshots: usize,
    /// Journal segments shipped after the snapshots.
    pub segments: usize,
    /// The term the receiver granted.
    pub term: u64,
}

/// The sending half of the re-seed path: the *current* leader streams its
/// committed state to a node that cannot catch up from segments alone (a
/// fenced ex-leader, or a follower whose retention hold was cap-evicted).
///
/// Protocol, over one [`Transport`]:
///
/// 1. [`Frame::Claim`] announces the leader's term; the receiver persists
///    its grant and answers [`Frame::Grant`] (or refuses — a refusal on a
///    newer term fences *this* leader too).
/// 2. One [`Frame::Snapshot`] per committed frequency column (values +
///    WAL mark), each acknowledged.
/// 3. The journal tail past each mark ships as ordinary segments through
///    the term-stamped [`Shipper`].
pub struct Seeder<S: Storage + Clone> {
    storage: S,
    catalog_root: PathBuf,
    wal_dir: PathBuf,
    term: u64,
    node: u64,
    timeout: Duration,
}

impl<S: Storage + Clone> Seeder<S> {
    /// A seeder for the leader state under `catalog_root` + `wal_dir`,
    /// announcing `term` held by `node`.
    pub fn new(
        storage: S,
        catalog_root: impl Into<PathBuf>,
        wal_dir: impl Into<PathBuf>,
        term: u64,
        node: u64,
    ) -> Self {
        Self {
            storage,
            catalog_root: catalog_root.into(),
            wal_dir: wal_dir.into(),
            term,
            node,
            timeout: Duration::from_millis(500),
        }
    }

    /// Sets how long each step waits for the receiver's response.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn diverged(&self, detail: impl Into<String>) -> SynopticError {
        SynopticError::ReplicationDivergence {
            context: "reseed".to_string(),
            detail: detail.into(),
        }
    }

    /// One response frame, with timeouts and link closure loud.
    fn expect_frame(&self, transport: &mut dyn Transport, what: &str) -> Result<Frame> {
        match transport.recv(Some(self.timeout))? {
            Received::Frame(bytes) => decode_frame(&bytes),
            Received::TimedOut => {
                Err(self.diverged(format!("receiver went quiet waiting for {what}")))
            }
            Received::Closed => {
                Err(self.diverged(format!("receiver closed the link waiting for {what}")))
            }
        }
    }

    /// Runs the full re-seed transfer. On success the receiver holds the
    /// committed snapshots, the granted term, and the journal tail — it
    /// rejoins as a follower via `synoptic_stream`'s rejoin path.
    pub fn seed(&self, transport: &mut dyn Transport) -> Result<SeedReport> {
        let mut report = SeedReport {
            term: self.term,
            ..SeedReport::default()
        };
        transport.send(&encode_frame(&Frame::Claim {
            term: self.term,
            node: self.node,
        }))?;
        match self.expect_frame(transport, "the term grant")? {
            Frame::Grant { term, node } if term == self.term && node == self.node => {}
            Frame::Refuse { term, reason, .. } => {
                if term > self.term {
                    return Err(SynopticError::StaleLeaderTerm {
                        stale_term: self.term,
                        current_term: term,
                    });
                }
                return Err(self.diverged(format!("claim refused: {reason}")));
            }
            other => return Err(self.diverged(format!("expected a grant, got {other:?}"))),
        }

        // Committed snapshots, one per frequency column.
        let store = DurableCatalog::open(&self.catalog_root, self.storage.clone())?;
        let cat = store.load()?;
        for (name, entry) in cat.iter() {
            let Some(values) = entry
                .synopsis
                .load()
                .ok()
                .and_then(|l| l.exact_frequencies().map(<[i64]>::to_vec))
            else {
                continue; // summary-only columns are rebuilt, not seeded
            };
            let mark = cat.wal_mark(name);
            transport.send(&encode_frame(&Frame::Snapshot {
                term: self.term,
                column: name.to_string(),
                mark,
                values,
            }))?;
            match self.expect_frame(transport, "a snapshot ack")? {
                Frame::Ack { column, .. } if column == name => {}
                Frame::Refuse { term, reason, .. } => {
                    if term > self.term {
                        return Err(SynopticError::StaleLeaderTerm {
                            stale_term: self.term,
                            current_term: term,
                        });
                    }
                    return Err(self.diverged(format!("snapshot refused: {reason}")));
                }
                other => return Err(self.diverged(format!("expected an ack, got {other:?}"))),
            }
            report.snapshots += 1;
        }

        // The journal tail past each mark, as ordinary term-stamped
        // segment shipping.
        for column in list_journal_columns(&self.storage, &self.wal_dir)? {
            let scan = scan_column_journal(&self.storage, &self.wal_dir, &column)?;
            let shipper =
                Shipper::new(self.storage.clone(), &self.wal_dir, &column).with_term(self.term);
            let ship = shipper.ship(transport, scan.max_lsn)?;
            report.segments += ship.shipped;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_catalog::storage::FsStorage;
    use synoptic_catalog::{Catalog, ColumnEntry, PersistentSynopsis};

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let clock = ManualClock::new();
        let other = clock.clone();
        assert_eq!(clock.now(), 0);
        other.advance(3);
        clock.tick();
        assert_eq!(clock.now(), 4);
        assert_eq!(other.now(), 4);
    }

    #[test]
    fn wall_clock_moves_forward() {
        let clock = WallClock::new();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(clock.now() >= a);
    }

    #[test]
    fn lease_expires_only_after_ttl_ticks_of_silence() {
        let mut lease = LeaseTracker::arm(10, 100);
        assert!(!lease.expired(110), "exactly ttl is still alive");
        assert_eq!(lease.remaining(105), 5);
        assert!(lease.expired(111));
        lease.renew(111);
        assert!(!lease.expired(121));
        assert!(lease.expired(122));
        // Renewals never move backwards.
        lease.renew(50);
        assert!(!lease.expired(121));
    }

    fn ledger_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("synoptic_election_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn seed_catalog(root: &PathBuf) {
        let store = DurableCatalog::open(root, FsStorage::new()).unwrap();
        let mut cat = Catalog::new();
        cat.insert(
            "c",
            ColumnEntry {
                n: 4,
                total_rows: 10,
                synopsis: PersistentSynopsis::from_frequencies(&[1, 2, 3, 4]),
            },
        );
        store.save(&cat).unwrap();
    }

    #[test]
    fn term_ledger_is_monotonic_and_grants_once() {
        let d = ledger_dir("ledger");
        seed_catalog(&d);
        let ledger = TermLedger::open(&d, FsStorage::new()).unwrap();
        assert_eq!(ledger.current().unwrap(), (0, None));
        ledger.claim(3, 11).unwrap();
        assert_eq!(ledger.current().unwrap(), (3, Some(11)));
        // Re-claiming the same term for the same node is idempotent.
        ledger.claim(3, 11).unwrap();
        // A different node cannot take an already-granted term…
        let err = ledger.claim(3, 99).unwrap_err();
        assert_eq!(
            err,
            SynopticError::StaleLeaderTerm {
                stale_term: 3,
                current_term: 3
            }
        );
        // …and a lower term is fenced outright.
        assert!(ledger.claim(2, 11).is_err());
        // The claim survives reopen: it was a manifest generation.
        drop(ledger);
        let reopened = TermLedger::open(&d, FsStorage::new()).unwrap();
        assert_eq!(reopened.current().unwrap(), (3, Some(11)));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn election_term_rides_the_catalog_untouched_by_column_saves() {
        let d = ledger_dir("coexist");
        seed_catalog(&d);
        let ledger = TermLedger::open(&d, FsStorage::new()).unwrap();
        ledger.claim(5, 1).unwrap();
        // A routine catalog save that edits columns (and knows nothing of
        // elections) must carry the term forward.
        let store = DurableCatalog::open(&d, FsStorage::new()).unwrap();
        let mut cat = store.load().unwrap();
        cat.set_wal_mark("c", 42);
        store.save(&cat).unwrap();
        assert_eq!(ledger.current().unwrap(), (5, Some(1)));
        assert_eq!(store.load().unwrap().wal_mark("c"), 42);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn seeder_is_fenced_by_a_newer_term_refusal() {
        let d = ledger_dir("seedfence");
        seed_catalog(&d);
        let (mut leader_end, mut other_end) = crate::transport::MemTransport::pair();
        let peer = std::thread::spawn(move || {
            match other_end.recv(None).unwrap() {
                Received::Frame(bytes) => {
                    assert!(matches!(decode_frame(&bytes).unwrap(), Frame::Claim { .. }));
                    other_end
                        .send(&encode_frame(&Frame::Refuse {
                            term: 9,
                            column: String::new(),
                            applied_lsn: 0,
                            reason: "fenced".into(),
                        }))
                        .unwrap();
                }
                other => panic!("{other:?}"),
            }
            other_end.recv(None).unwrap() // drain until close
        });
        let seeder = Seeder::new(FsStorage::new(), &d, d.join("wal"), 4, 1);
        let err = seeder.seed(&mut leader_end).unwrap_err();
        assert_eq!(
            err,
            SynopticError::StaleLeaderTerm {
                stale_term: 4,
                current_term: 9
            }
        );
        leader_end.close();
        peer.join().unwrap();
        let _ = std::fs::remove_dir_all(&d);
    }
}
