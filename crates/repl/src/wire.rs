//! The replication frame format.
//!
//! Every frame is self-delimiting at the transport layer (transports carry
//! whole frames) and self-validating at this layer:
//!
//! ```text
//! frame:   magic "SRP1" (4) | type u8 | payload | crc32 u32
//! string:  len u16 | bytes            (column names, refusal reasons)
//! blob:    len u32 | bytes            (raw segment file bytes)
//! values:  len u32 | i64-LE × len     (snapshot frequency vectors)
//! ```
//!
//! All integers are little-endian; the CRC covers every byte before it.
//! A frame that fails validation decodes to
//! [`SynopticError::ReplicationDivergence`] — the receiver reports the
//! reason and the sender's retry ladder re-ships; nothing is ever applied
//! from bytes that did not validate.
//!
//! The protocol is deliberately tiny and leader-driven. Every frame
//! carries the sender's **election term** (see `crate::election`): a
//! receiver on a newer term refuses the frame loudly with its own term in
//! the refusal — that refusal *is* the fencing mechanism that stops a
//! deposed leader from splitting the replicated history. Nodes that never
//! run elections use term 0 everywhere and the checks are vacuous.
//!
//! * [`Frame::Segment`] — one sealed WAL segment, byte-for-byte as it
//!   exists in the leader's journal, plus the leader's current pending
//!   mark so the follower can bound its replication lag.
//! * [`Frame::Heartbeat`] — the leader's mark with no payload: a probe
//!   that solicits an [`Frame::Ack`] (how far is this follower?), keeps
//!   lag accounting fresh between segments, and renews the follower's
//!   leader lease.
//! * [`Frame::Ack`] — the follower's *cumulative* applied LSN. Duplicate
//!   and stale acks are harmless: the shipper tracks the maximum.
//! * [`Frame::Refuse`] — the follower could not apply a segment, with the
//!   reason, its (unchanged) applied LSN, and its current term. Refusals
//!   are the loud half of the "converge or refuse, never silently
//!   diverge" contract; a refusal whose term exceeds the sender's is a
//!   fencing verdict.
//! * [`Frame::Claim`] — a node announces leadership of a term.
//! * [`Frame::Grant`] — the receiver recognizes that leadership (its vote
//!   is persisted before this frame is sent).
//! * [`Frame::Snapshot`] — one column's committed frequency snapshot plus
//!   its WAL mark: the re-seed path for a follower whose retention hold
//!   was cap-evicted (or a fenced ex-leader rejoining). The journal tail
//!   past the mark follows as ordinary [`Frame::Segment`]s.

use synoptic_catalog::checksum::crc32;
use synoptic_core::{Result, SynopticError};

/// Magic bytes opening every replication frame.
pub const FRAME_MAGIC: [u8; 4] = *b"SRP1";

const TYPE_SEGMENT: u8 = 1;
const TYPE_HEARTBEAT: u8 = 2;
const TYPE_ACK: u8 = 3;
const TYPE_REFUSE: u8 = 4;
const TYPE_CLAIM: u8 = 5;
const TYPE_GRANT: u8 = 6;
const TYPE_SNAPSHOT: u8 = 7;

/// One replication protocol message. See the module docs for the roles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Leader → follower: one sealed WAL segment, verbatim file bytes.
    Segment {
        /// The sender's election term (0 when elections are not in play).
        term: u64,
        /// Column the segment belongs to.
        column: String,
        /// Segment sequence number (the follower persists under the same
        /// name, keeping scan order).
        seq: u64,
        /// The leader's pending mark (last acknowledged LSN) when this
        /// frame was sent — the follower's lag reference point.
        leader_mark: u64,
        /// The raw segment file: header plus record stream.
        bytes: Vec<u8>,
    },
    /// Leader → follower: a probe carrying the leader's pending mark.
    /// Also the lease renewal: a follower counts heartbeats (of a
    /// current-or-newer term) toward its leader lease.
    Heartbeat {
        /// The sender's election term.
        term: u64,
        /// Column being probed.
        column: String,
        /// The leader's pending mark.
        leader_mark: u64,
    },
    /// Follower → leader: cumulative progress.
    Ack {
        /// The follower's current election term.
        term: u64,
        /// Column acknowledged.
        column: String,
        /// Highest LSN applied *and locally persisted* by the follower.
        applied_lsn: u64,
    },
    /// Follower → leader: a segment was not applied, and why. When
    /// `term` exceeds the sender's own term, this refusal is a fencing
    /// verdict: a newer leader exists and the sender must stand down.
    Refuse {
        /// The follower's current election term (fencing provenance).
        term: u64,
        /// Column refused (empty when the outer frame didn't validate).
        column: String,
        /// The follower's applied LSN, unchanged by the refusal.
        applied_lsn: u64,
        /// Human-readable reason, also recorded follower-side.
        reason: String,
    },
    /// A node announces it holds leadership of `term`.
    Claim {
        /// The claimed term.
        term: u64,
        /// The claiming node's id.
        node: u64,
    },
    /// The receiver recognizes `node` as the leader of `term`; its vote
    /// was persisted (term + vote in the catalog's WAL-marks section)
    /// before this frame was sent.
    Grant {
        /// The granted term.
        term: u64,
        /// The node granted leadership.
        node: u64,
    },
    /// Re-seed: one column's committed frequency snapshot. Everything at
    /// or below `mark` is captured by `values`; the journal tail past the
    /// mark follows as ordinary [`Frame::Segment`]s.
    Snapshot {
        /// The sender's election term.
        term: u64,
        /// Column being seeded.
        column: String,
        /// The WAL mark the snapshot captures (records ≤ mark included).
        mark: u64,
        /// Exact frequencies at the mark.
        values: Vec<i64>,
    },
}

impl Frame {
    /// The election term stamped on this frame.
    pub fn term(&self) -> u64 {
        match self {
            Frame::Segment { term, .. }
            | Frame::Heartbeat { term, .. }
            | Frame::Ack { term, .. }
            | Frame::Refuse { term, .. }
            | Frame::Claim { term, .. }
            | Frame::Grant { term, .. }
            | Frame::Snapshot { term, .. } => *term,
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn diverged(detail: impl Into<String>) -> SynopticError {
    SynopticError::ReplicationDivergence {
        context: "wire".to_string(),
        detail: detail.into(),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return Err(diverged("frame payload truncated"));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("2")) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| diverged("frame string is not UTF-8"))
    }

    fn blob(&mut self) -> Result<Vec<u8>> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4")) as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn values(&mut self) -> Result<Vec<i64>> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4")) as usize;
        let bytes = self.take(
            len.checked_mul(8)
                .ok_or_else(|| diverged("values overflow"))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8")))
            .collect())
    }

    fn done(&self) -> Result<()> {
        if self.at != self.bytes.len() {
            return Err(diverged(format!(
                "{} trailing bytes after frame payload",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

/// Encodes a frame into its checksummed byte representation.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&FRAME_MAGIC);
    match frame {
        Frame::Segment {
            term,
            column,
            seq,
            leader_mark,
            bytes,
        } => {
            out.push(TYPE_SEGMENT);
            out.extend_from_slice(&term.to_le_bytes());
            put_str(&mut out, column);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&leader_mark.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        Frame::Heartbeat {
            term,
            column,
            leader_mark,
        } => {
            out.push(TYPE_HEARTBEAT);
            out.extend_from_slice(&term.to_le_bytes());
            put_str(&mut out, column);
            out.extend_from_slice(&leader_mark.to_le_bytes());
        }
        Frame::Ack {
            term,
            column,
            applied_lsn,
        } => {
            out.push(TYPE_ACK);
            out.extend_from_slice(&term.to_le_bytes());
            put_str(&mut out, column);
            out.extend_from_slice(&applied_lsn.to_le_bytes());
        }
        Frame::Refuse {
            term,
            column,
            applied_lsn,
            reason,
        } => {
            out.push(TYPE_REFUSE);
            out.extend_from_slice(&term.to_le_bytes());
            put_str(&mut out, column);
            out.extend_from_slice(&applied_lsn.to_le_bytes());
            put_str(&mut out, reason);
        }
        Frame::Claim { term, node } => {
            out.push(TYPE_CLAIM);
            out.extend_from_slice(&term.to_le_bytes());
            out.extend_from_slice(&node.to_le_bytes());
        }
        Frame::Grant { term, node } => {
            out.push(TYPE_GRANT);
            out.extend_from_slice(&term.to_le_bytes());
            out.extend_from_slice(&node.to_le_bytes());
        }
        Frame::Snapshot {
            term,
            column,
            mark,
            values,
        } => {
            out.push(TYPE_SNAPSHOT);
            out.extend_from_slice(&term.to_le_bytes());
            put_str(&mut out, column);
            out.extend_from_slice(&mark.to_le_bytes());
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes and validates one frame. Any failure — bad magic, CRC
/// mismatch, truncation, an unknown type — is
/// [`SynopticError::ReplicationDivergence`]; the bytes are never trusted
/// after this.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame> {
    if bytes.len() < FRAME_MAGIC.len() + 1 + 4 {
        return Err(diverged(format!(
            "{} bytes is shorter than any frame",
            bytes.len()
        )));
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(diverged("bad frame magic"));
    }
    let crc_at = bytes.len() - 4;
    let crc_stored = u32::from_le_bytes(bytes[crc_at..].try_into().expect("4"));
    let crc_actual = crc32(&bytes[..crc_at]);
    if crc_stored != crc_actual {
        return Err(diverged("frame CRC mismatch"));
    }
    let kind = bytes[4];
    let mut r = Reader {
        bytes: &bytes[5..crc_at],
        at: 0,
    };
    let frame = match kind {
        TYPE_SEGMENT => {
            let term = r.u64()?;
            let column = r.str()?;
            let seq = r.u64()?;
            let leader_mark = r.u64()?;
            let bytes = r.blob()?;
            Frame::Segment {
                term,
                column,
                seq,
                leader_mark,
                bytes,
            }
        }
        TYPE_HEARTBEAT => Frame::Heartbeat {
            term: r.u64()?,
            column: r.str()?,
            leader_mark: r.u64()?,
        },
        TYPE_ACK => Frame::Ack {
            term: r.u64()?,
            column: r.str()?,
            applied_lsn: r.u64()?,
        },
        TYPE_REFUSE => Frame::Refuse {
            term: r.u64()?,
            column: r.str()?,
            applied_lsn: r.u64()?,
            reason: r.str()?,
        },
        TYPE_CLAIM => Frame::Claim {
            term: r.u64()?,
            node: r.u64()?,
        },
        TYPE_GRANT => Frame::Grant {
            term: r.u64()?,
            node: r.u64()?,
        },
        TYPE_SNAPSHOT => {
            let term = r.u64()?;
            let column = r.str()?;
            let mark = r.u64()?;
            let values = r.values()?;
            Frame::Snapshot {
                term,
                column,
                mark,
                values,
            }
        }
        other => return Err(diverged(format!("unknown frame type {other}"))),
    };
    r.done()?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }

    #[test]
    fn every_frame_round_trips() {
        round_trip(Frame::Segment {
            term: 3,
            column: "price".into(),
            seq: 7,
            leader_mark: 901,
            bytes: vec![1, 2, 3, 0, 255],
        });
        round_trip(Frame::Heartbeat {
            term: 0,
            column: "c".into(),
            leader_mark: 0,
        });
        round_trip(Frame::Ack {
            term: u64::MAX,
            column: "c".into(),
            applied_lsn: u64::MAX,
        });
        round_trip(Frame::Refuse {
            term: 5,
            column: "c".into(),
            applied_lsn: 3,
            reason: "segment starts at LSN 9 but 4 was expected".into(),
        });
        round_trip(Frame::Claim { term: 2, node: 7 });
        round_trip(Frame::Grant { term: 2, node: 7 });
        round_trip(Frame::Snapshot {
            term: 4,
            column: "price".into(),
            mark: 120,
            values: vec![i64::MIN, -1, 0, 1, i64::MAX],
        });
    }

    #[test]
    fn frame_term_accessor_reads_every_variant() {
        assert_eq!(Frame::Claim { term: 9, node: 1 }.term(), 9);
        assert_eq!(
            Frame::Snapshot {
                term: 4,
                column: "c".into(),
                mark: 0,
                values: vec![],
            }
            .term(),
            4
        );
    }

    #[test]
    fn corruption_anywhere_is_refused() {
        let good = encode_frame(&Frame::Ack {
            term: 1,
            column: "c".into(),
            applied_lsn: 5,
        });
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0x01;
            assert!(
                matches!(
                    decode_frame(&bad),
                    Err(SynopticError::ReplicationDivergence { .. })
                ),
                "flip at byte {at} must not decode"
            );
        }
        for cut in 0..good.len() {
            assert!(
                decode_frame(&good[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_refused() {
        let mut bytes = encode_frame(&Frame::Heartbeat {
            term: 0,
            column: "c".into(),
            leader_mark: 1,
        });
        // Valid-CRC frame with extra payload spliced in before re-CRCing.
        let crc_at = bytes.len() - 4;
        bytes.truncate(crc_at);
        bytes.extend_from_slice(&[0, 0, 0]);
        let crc = synoptic_catalog::checksum::crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let err = decode_frame(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                SynopticError::ReplicationDivergence { ref detail, .. } if detail.contains("trailing")
            ),
            "{err:?}"
        );
    }

    #[test]
    fn snapshot_with_truncated_values_is_refused() {
        let mut bytes = encode_frame(&Frame::Snapshot {
            term: 1,
            column: "c".into(),
            mark: 2,
            values: vec![10, 20, 30],
        });
        // Cut one value out of the payload and re-CRC: the declared count
        // no longer matches the bytes present.
        let crc_at = bytes.len() - 4;
        bytes.truncate(crc_at - 8);
        let crc = synoptic_catalog::checksum::crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(decode_frame(&bytes).is_err());
    }
}
