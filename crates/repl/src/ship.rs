//! Leader-side segment shipping.
//!
//! A [`Shipper`] pushes one column's sealed WAL segments to one follower
//! over any [`Transport`], in LSN order, and tracks the follower's
//! *cumulative* acknowledged LSN. The protocol is pipelined and
//! retry-driven:
//!
//! 1. **Probe.** A [`Frame::Heartbeat`] solicits an [`Frame::Ack`], so
//!    the shipper learns where the follower already is (a restarted
//!    leader does not re-ship what the follower holds; a duplicate would
//!    be absorbed idempotently anyway).
//! 2. **Ship.** Every on-disk segment holding records past the acked LSN
//!    is sent as a [`Frame::Segment`] — byte-for-byte, clipped to its
//!    validated prefix, so a torn on-disk tail (never acknowledged) is
//!    not shipped.
//! 3. **Drain.** Acks advance the watermark; [`Frame::Refuse`] frames are
//!    recorded. When the watermark reaches the last sealed LSN the pass
//!    succeeds.
//! 4. **Retry.** Lost, torn, or refused segments leave the watermark
//!    short; the shipper backs off (doubling per pass) and re-ships
//!    everything still unacknowledged. A follower that cannot converge
//!    within the retry budget is a loud
//!    [`SynopticError::ReplicationDivergence`] carrying the follower's
//!    own refusal reason — never a silent divergence.
//!
//! The shipper is deliberately storage-driven (it walks
//! [`list_sealed_segments`], the same enumeration fsck uses) rather than
//! hooked into a live `ColumnWal`'s internals: the one-shot `synoptic
//! ship` CLI and the in-process `maintain --replicate-to` loop ship
//! through the identical code path.

use std::path::PathBuf;
use std::time::Duration;

use synoptic_catalog::storage::Storage;
use synoptic_catalog::wal::{decode_segment, list_sealed_segments, WAL_RECORD_LEN};
use synoptic_core::{Result, SynopticError};

use crate::transport::{Received, Transport};
use crate::wire::{decode_frame, encode_frame, Frame};

/// What one [`Shipper::ship`] call accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Segment frames sent (including re-ships).
    pub shipped: usize,
    /// The follower's cumulative acknowledged LSN when shipping finished.
    pub acked_lsn: u64,
    /// The highest sealed LSN on disk — the convergence target.
    pub target_lsn: u64,
    /// Ship/drain passes used (1 = everything acked first try).
    pub passes: u32,
    /// Refusal reasons the follower reported along the way (retries may
    /// have resolved them; `acked_lsn` is the ground truth).
    pub refusals: Vec<String>,
}

/// Ships one column's sealed segments to one follower. See the module
/// docs for the protocol.
pub struct Shipper<S: Storage> {
    storage: S,
    dir: PathBuf,
    column: String,
    term: u64,
    max_passes: u32,
    backoff: Duration,
    drain_timeout: Duration,
}

impl<S: Storage> Shipper<S> {
    /// A shipper for `column`'s journal under `dir`. Defaults: 4 retry
    /// passes, 10 ms initial backoff (doubling), 500 ms ack-drain
    /// timeout, election term 0 (no election in play).
    pub fn new(storage: S, dir: impl Into<PathBuf>, column: &str) -> Self {
        Self {
            storage,
            dir: dir.into(),
            column: column.to_string(),
            term: 0,
            max_passes: 4,
            backoff: Duration::from_millis(10),
            drain_timeout: Duration::from_millis(500),
        }
    }

    /// Stamps every outgoing frame with the leader's election term. A
    /// follower on a newer term refuses the frames, and the shipper turns
    /// that refusal into [`SynopticError::StaleLeaderTerm`] — the fencing
    /// signal that this leader was deposed and must stand down.
    #[must_use]
    pub fn with_term(mut self, term: u64) -> Self {
        self.term = term;
        self
    }

    /// Sets the retry budget: `passes` ship/drain rounds with `backoff`
    /// doubling between them.
    #[must_use]
    pub fn with_retry(mut self, passes: u32, backoff: Duration) -> Self {
        self.max_passes = passes.max(1);
        self.backoff = backoff;
        self
    }

    /// Sets how long each drain waits for the next ack before re-shipping.
    #[must_use]
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    fn diverged(&self, detail: impl Into<String>) -> SynopticError {
        SynopticError::ReplicationDivergence {
            context: self.column.clone(),
            detail: detail.into(),
        }
    }

    /// Probes the follower's cumulative applied LSN with a heartbeat.
    /// `leader_mark` is the leader's current pending mark (what the
    /// follower bounds its lag against).
    pub fn probe(&self, transport: &mut dyn Transport, leader_mark: u64) -> Result<u64> {
        for pass in 0..self.max_passes {
            transport.send(&encode_frame(&Frame::Heartbeat {
                term: self.term,
                column: self.column.clone(),
                leader_mark,
            }))?;
            loop {
                match transport.recv(Some(self.drain_timeout))? {
                    Received::Frame(bytes) => match decode_frame(&bytes)? {
                        Frame::Ack {
                            column,
                            applied_lsn,
                            ..
                        } if column == self.column => return Ok(applied_lsn),
                        // A refusal on a newer term is the fence: stop
                        // immediately, no retry can make a deposed leader
                        // current again.
                        Frame::Refuse { term, .. } if term > self.term => {
                            return Err(SynopticError::StaleLeaderTerm {
                                stale_term: self.term,
                                current_term: term,
                            })
                        }
                        // Stale acks for other columns, late refusals:
                        // keep draining.
                        _ => continue,
                    },
                    Received::TimedOut => break,
                    Received::Closed => {
                        return Err(self.diverged("follower closed the link during probe"))
                    }
                }
            }
            std::thread::sleep(self.backoff * 2u32.pow(pass));
        }
        Err(self.diverged(format!(
            "follower never answered a probe within {} passes",
            self.max_passes
        )))
    }

    /// Segments of this column holding records past `acked`, each clipped
    /// to its validated prefix, ordered by first LSN. Returns
    /// `(file, seq, last_lsn, bytes)` tuples and the on-disk target LSN.
    #[allow(clippy::type_complexity)]
    fn pending_segments(&self, acked: u64) -> Result<(Vec<(String, u64, u64, Vec<u8>)>, u64)> {
        let mut out = Vec::new();
        let mut target = acked;
        for seg in list_sealed_segments(&self.storage, &self.dir)? {
            if seg.column != self.column {
                continue;
            }
            let path = self.dir.join(&seg.file);
            let bytes = match self.storage.read(&path) {
                Ok(bytes) => bytes,
                // A checkpoint may truncate a fully-acknowledged segment
                // between the directory listing and this read (the live
                // `maintain --replicate-to` loop races its own
                // checkpoints, which delete nothing past the retention
                // hold). A vanished segment holds nothing the follower
                // still needs.
                Err(_) if !self.storage.exists(&path) => continue,
                Err(e) => return Err(e),
            };
            let decoded = decode_segment(&bytes, &seg.file)?;
            if decoded.records.is_empty() {
                continue;
            }
            target = target.max(decoded.last_lsn);
            if decoded.last_lsn <= acked {
                continue;
            }
            // Ship only the validated prefix: a torn on-disk tail was
            // never acknowledged and must not travel.
            let valid = decoded.header_len + decoded.records.len() * WAL_RECORD_LEN;
            out.push((seg.file, seg.seq, decoded.last_lsn, bytes[..valid].to_vec()));
        }
        Ok((out, target))
    }

    /// Ships every sealed segment the follower has not acknowledged and
    /// drains acks until the follower converges to the highest sealed
    /// LSN, retrying with backoff. `leader_mark` is stamped into every
    /// segment frame for follower-side lag accounting.
    pub fn ship(&self, transport: &mut dyn Transport, leader_mark: u64) -> Result<ShipReport> {
        let mut report = ShipReport {
            acked_lsn: self.probe(transport, leader_mark)?,
            ..ShipReport::default()
        };
        for pass in 0..self.max_passes {
            report.passes = pass + 1;
            let (pending, target) = self.pending_segments(report.acked_lsn)?;
            report.target_lsn = target;
            if report.acked_lsn >= target {
                return Ok(report);
            }
            for (_, seq, _, bytes) in &pending {
                transport.send(&encode_frame(&Frame::Segment {
                    term: self.term,
                    column: self.column.clone(),
                    seq: *seq,
                    leader_mark,
                    bytes: bytes.clone(),
                }))?;
                report.shipped += 1;
            }
            // Drain until converged or the link goes quiet.
            loop {
                if report.acked_lsn >= target {
                    return Ok(report);
                }
                match transport.recv(Some(self.drain_timeout))? {
                    Received::Frame(bytes) => match decode_frame(&bytes)? {
                        Frame::Ack {
                            column,
                            applied_lsn,
                            ..
                        } if column == self.column => {
                            report.acked_lsn = report.acked_lsn.max(applied_lsn);
                        }
                        // A refusal on a newer term fences this leader
                        // outright — retrying a deposed term would split
                        // the replicated history.
                        Frame::Refuse { term, .. } if term > self.term => {
                            return Err(SynopticError::StaleLeaderTerm {
                                stale_term: self.term,
                                current_term: term,
                            })
                        }
                        // An empty column is the follower saying "the
                        // outer frame itself did not validate" — it
                        // cannot know which column the wreck was for, so
                        // every shipper takes the hint.
                        Frame::Refuse {
                            column,
                            applied_lsn,
                            reason,
                            ..
                        } if column == self.column || column.is_empty() => {
                            if column == self.column {
                                report.acked_lsn = report.acked_lsn.max(applied_lsn);
                            }
                            report.refusals.push(reason);
                        }
                        _ => continue,
                    },
                    Received::TimedOut => break,
                    Received::Closed => {
                        return Err(self.diverged(format!(
                            "follower closed the link at LSN {} of {}",
                            report.acked_lsn, target
                        )))
                    }
                }
            }
            std::thread::sleep(self.backoff * 2u32.pow(pass));
        }
        let detail = match report.refusals.last() {
            Some(reason) => format!(
                "follower refused and never converged (stalled at LSN {} of {}): {reason}",
                report.acked_lsn, report.target_lsn
            ),
            None => format!(
                "follower stalled at LSN {} of {} after {} passes",
                report.acked_lsn, report.target_lsn, report.passes
            ),
        };
        Err(self.diverged(detail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MemTransport;
    use synoptic_catalog::storage::FsStorage;
    use synoptic_catalog::wal::{ColumnWal, WalConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("synoptic_ship_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// A hand-rolled follower stub: acks everything whole, refusing
    /// nothing — enough to unit-test the shipper's bookkeeping. The real
    /// follower lives in synoptic-stream.
    fn ack_everything(mut t: MemTransport) -> std::thread::JoinHandle<usize> {
        std::thread::spawn(move || {
            let mut applied = 0u64;
            let mut segments = 0usize;
            loop {
                match t.recv(None).unwrap() {
                    Received::Frame(bytes) => {
                        let frame = decode_frame(&bytes).unwrap();
                        let column = match frame {
                            Frame::Segment { column, bytes, .. } => {
                                let seg = decode_segment(&bytes, "shipped").unwrap();
                                applied = applied.max(seg.last_lsn);
                                segments += 1;
                                column
                            }
                            Frame::Heartbeat { column, .. } => column,
                            _ => continue,
                        };
                        t.send(&encode_frame(&Frame::Ack {
                            term: 0,
                            column,
                            applied_lsn: applied,
                        }))
                        .unwrap();
                    }
                    Received::Closed => return segments,
                    Received::TimedOut => unreachable!(),
                }
            }
        })
    }

    #[test]
    fn ships_all_sealed_segments_and_converges() {
        let d = tmp_dir("converge");
        let s = FsStorage::new();
        let cfg = WalConfig {
            segment_bytes: 1,
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(s.clone(), &d, "c", 1, cfg).unwrap();
        for i in 0..5u64 {
            wal.append(i, 1).unwrap();
        }
        wal.seal().unwrap();
        let (leader_end, follower_end) = MemTransport::pair();
        let follower = ack_everything(follower_end);
        let shipper = Shipper::new(s, &d, "c");
        let mut t: Box<dyn Transport> = Box::new(leader_end);
        let report = shipper.ship(t.as_mut(), wal.pending_mark()).unwrap();
        assert_eq!(report.acked_lsn, 5);
        assert_eq!(report.target_lsn, 5);
        assert_eq!(report.shipped, 5);
        assert_eq!(report.passes, 1);
        assert!(report.refusals.is_empty());
        t.close();
        assert_eq!(follower.join().unwrap(), 5);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn second_ship_is_incremental_from_the_ack_watermark() {
        let d = tmp_dir("incremental");
        let s = FsStorage::new();
        let cfg = WalConfig {
            segment_bytes: 1,
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(s.clone(), &d, "c", 1, cfg).unwrap();
        wal.append(0, 1).unwrap();
        wal.seal().unwrap();
        let (leader_end, follower_end) = MemTransport::pair();
        let follower = ack_everything(follower_end);
        let shipper = Shipper::new(s, &d, "c");
        let mut t: Box<dyn Transport> = Box::new(leader_end);
        let r1 = shipper.ship(t.as_mut(), wal.pending_mark()).unwrap();
        assert_eq!((r1.shipped, r1.acked_lsn), (1, 1));
        wal.append(1, 2).unwrap();
        wal.seal().unwrap();
        // The probe finds the follower at LSN 1; only the new segment
        // travels.
        let r2 = shipper.ship(t.as_mut(), wal.pending_mark()).unwrap();
        assert_eq!((r2.shipped, r2.acked_lsn), (1, 2));
        t.close();
        assert_eq!(follower.join().unwrap(), 2);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn silent_follower_is_a_loud_divergence_not_a_hang() {
        let d = tmp_dir("silent");
        let s = FsStorage::new();
        let wal = ColumnWal::open(s.clone(), &d, "c", 1, WalConfig::default()).unwrap();
        wal.append(0, 1).unwrap();
        wal.seal().unwrap();
        let (mut leader_end, _follower_end_kept_silent) = MemTransport::pair();
        let shipper = Shipper::new(s, &d, "c")
            .with_retry(2, Duration::from_millis(1))
            .with_drain_timeout(Duration::from_millis(10));
        let err = shipper.ship(&mut leader_end, 1).unwrap_err();
        assert!(
            matches!(err, SynopticError::ReplicationDivergence { ref detail, .. } if detail.contains("probe")),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn newer_term_refusal_fences_the_shipper() {
        let d = tmp_dir("fenced");
        let s = FsStorage::new();
        let wal = ColumnWal::open(s.clone(), &d, "c", 1, WalConfig::default()).unwrap();
        wal.append(0, 1).unwrap();
        wal.seal().unwrap();
        let (leader_end, mut follower_end) = MemTransport::pair();
        // A follower that has granted term 7 fences everything from this
        // term-3 leader.
        let follower = std::thread::spawn(move || loop {
            match follower_end.recv(None).unwrap() {
                Received::Frame(bytes) => {
                    let frame = decode_frame(&bytes).unwrap();
                    follower_end
                        .send(&encode_frame(&Frame::Refuse {
                            term: 7,
                            column: match frame {
                                Frame::Segment { column, .. } | Frame::Heartbeat { column, .. } => {
                                    column
                                }
                                _ => String::new(),
                            },
                            applied_lsn: 0,
                            reason: "fenced: leader term 3 is stale (current term 7)".into(),
                        }))
                        .unwrap();
                }
                _ => return,
            }
        });
        let shipper = Shipper::new(s, &d, "c").with_term(3);
        let mut t: Box<dyn Transport> = Box::new(leader_end);
        let err = shipper.ship(t.as_mut(), 1).unwrap_err();
        assert_eq!(
            err,
            SynopticError::StaleLeaderTerm {
                stale_term: 3,
                current_term: 7
            }
        );
        t.close();
        follower.join().unwrap();
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn empty_journal_ships_nothing_and_succeeds() {
        let d = tmp_dir("empty");
        let s = FsStorage::new();
        s.create_dir_all(&d).unwrap();
        let (leader_end, follower_end) = MemTransport::pair();
        let follower = ack_everything(follower_end);
        let shipper = Shipper::new(s, &d, "c");
        let mut t: Box<dyn Transport> = Box::new(leader_end);
        let report = shipper.ship(t.as_mut(), 0).unwrap();
        assert_eq!(report.shipped, 0);
        assert_eq!(report.acked_lsn, 0);
        t.close();
        assert_eq!(follower.join().unwrap(), 0);
        let _ = std::fs::remove_dir_all(&d);
    }
}
