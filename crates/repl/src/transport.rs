//! Frame transports: how replication frames move between processes.
//!
//! A [`Transport`] carries *whole frames* (the wire layer's checksummed
//! byte strings) in order, with three implementations:
//!
//! * [`TcpTransport`] — std-only `u32`-length-prefixed frames over a
//!   `TcpStream`, for real leader/follower deployments.
//! * [`MemTransport`] — an in-process duplex pair backed by two queues,
//!   for tests and same-process followers. Blocking `recv` with optional
//!   timeout, unbounded buffering (a lagging receiver models unbounded
//!   replication lag, not backpressure).
//! * [`FaultyTransport`] — wraps any transport with deterministic fault
//!   queues, mirroring `synoptic_catalog::FaultyStorage`: dropped frames,
//!   torn mid-record deliveries, duplicated frames, reordering, and
//!   k-frame delays. Unbounded lag is a streak of
//!   [`TransportFault::Drop`]s. Faults are scheduled per *direction*:
//!   the send-side queue corrupts outgoing frames, the recv-side queue
//!   corrupts incoming ones — an **asymmetric partition** (one direction
//!   dark, the other clean) is a recv-side `Drop` streak with an empty
//!   send schedule, and a **delayed heartbeat** is a recv-side
//!   [`TransportFault::Delay`].
//!
//! Transports never interpret frames; all validation happens in
//! [`crate::wire`] and above. A transport failure is loud
//! ([`SynopticError::Io`]) — silent loss only ever comes from an injected
//! fault, and those are counted.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use synoptic_core::{Result, SynopticError};

/// Ceiling on a received frame's declared length: a sealed WAL segment is
/// at most a few hundred KiB, so anything past this is stream garbage,
/// not a frame.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Outcome of one [`Transport::recv`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Received {
    /// One whole frame arrived.
    Frame(Vec<u8>),
    /// The timeout elapsed with no frame; the link is still up.
    TimedOut,
    /// The peer closed the link cleanly; no more frames will arrive.
    Closed,
}

/// A bidirectional, ordered, whole-frame byte channel.
pub trait Transport: Send {
    /// Sends one frame. Returns only after the frame is handed to the
    /// underlying channel (not necessarily received).
    fn send(&mut self, frame: &[u8]) -> Result<()>;

    /// Receives the next frame, blocking up to `timeout` (`None` blocks
    /// until a frame arrives or the peer closes).
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Received>;

    /// Closes this end; the peer's next `recv` drains buffered frames and
    /// then reports [`Received::Closed`].
    fn close(&mut self);
}

fn io_err(detail: impl Into<String>) -> SynopticError {
    SynopticError::Io {
        path: "transport".to_string(),
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// In-memory duplex pair

#[derive(Default)]
struct ChannelState {
    queue: VecDeque<Vec<u8>>,
    closed: bool,
}

#[derive(Default)]
struct Channel {
    state: Mutex<ChannelState>,
    ready: Condvar,
}

impl Channel {
    fn lock(&self) -> std::sync::MutexGuard<'_, ChannelState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One end of an in-process duplex frame channel (see
/// [`MemTransport::pair`]).
pub struct MemTransport {
    tx: Arc<Channel>,
    rx: Arc<Channel>,
}

impl MemTransport {
    /// A connected pair: frames sent on one end arrive, in order, at the
    /// other.
    pub fn pair() -> (MemTransport, MemTransport) {
        let a = Arc::new(Channel::default());
        let b = Arc::new(Channel::default());
        (
            MemTransport {
                tx: Arc::clone(&a),
                rx: Arc::clone(&b),
            },
            MemTransport { tx: b, rx: a },
        )
    }
}

impl Transport for MemTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        let mut st = self.tx.lock();
        if st.closed {
            return Err(io_err("peer closed the link"));
        }
        st.queue.push_back(frame.to_vec());
        drop(st);
        self.tx.ready.notify_all();
        Ok(())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Received> {
        let mut st = self.rx.lock();
        loop {
            if let Some(frame) = st.queue.pop_front() {
                return Ok(Received::Frame(frame));
            }
            if st.closed {
                return Ok(Received::Closed);
            }
            match timeout {
                Some(t) => {
                    let (next, res) = self
                        .rx
                        .ready
                        .wait_timeout(st, t)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = next;
                    if res.timed_out() && st.queue.is_empty() && !st.closed {
                        return Ok(Received::TimedOut);
                    }
                }
                None => {
                    st = self
                        .rx
                        .ready
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn close(&mut self) {
        for ch in [&self.tx, &self.rx] {
            ch.lock().closed = true;
            ch.ready.notify_all();
        }
    }
}

impl Drop for MemTransport {
    fn drop(&mut self) {
        self.close();
    }
}

// ---------------------------------------------------------------------------
// TCP

/// `u32`-length-prefixed frames over a [`TcpStream`]. Std-only: the
/// workspace's zero-external-deps contract holds.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to a listening peer (e.g. `"127.0.0.1:7501"`).
    pub fn connect(addr: &str) -> Result<Self> {
        let stream =
            TcpStream::connect(addr).map_err(|e| io_err(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Wraps an accepted connection.
    pub fn from_stream(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        Self { stream }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        let len = u32::try_from(frame.len()).map_err(|_| io_err("frame exceeds u32 length"))?;
        self.stream
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.stream.write_all(frame))
            .and_then(|()| self.stream.flush())
            .map_err(|e| io_err(format!("send: {e}")))
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Received> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| io_err(format!("set timeout: {e}")))?;
        let mut len_buf = [0u8; 4];
        match self.stream.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(Received::Closed),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(Received::TimedOut)
            }
            Err(e) => return Err(io_err(format!("recv: {e}"))),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io_err(format!(
                "frame length {len} exceeds {MAX_FRAME_LEN}"
            )));
        }
        // The length prefix arrived, so the body is in flight: block for
        // it without a timeout — a half-received frame cannot be resumed.
        self.stream
            .set_read_timeout(None)
            .map_err(|e| io_err(format!("set timeout: {e}")))?;
        let mut frame = vec![0u8; len];
        self.stream
            .read_exact(&mut frame)
            .map_err(|e| io_err(format!("recv body: {e}")))?;
        Ok(Received::Frame(frame))
    }

    fn close(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection

/// One delivery fault, consumed in FIFO order from the schedule for its
/// direction (exactly like `synoptic_catalog::Fault` schedules storage
/// faults) — send-side faults per [`Transport::send`], recv-side faults
/// per received frame. With the queue empty, delivery is clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// The frame vanishes in flight. On the recv side this models an
    /// asymmetric partition: the sender believes the frame was delivered.
    Drop,
    /// Only the first `keep` bytes arrive — a torn mid-record stream: the
    /// receiver's CRC/torn-tail validation must catch it.
    Torn {
        /// Bytes of the frame that survive.
        keep: usize,
    },
    /// The frame arrives twice — replay idempotence must absorb it.
    Duplicate,
    /// The frame is held back and delivered *after* the next sent frame.
    Reorder,
    /// The frame is held back for `frames` subsequent deliveries before
    /// arriving — a delayed heartbeat. On the recv side, the delayed
    /// frame surfaces only after `frames` further `recv` calls have each
    /// produced (or failed to produce) a frame, so a lease clock keeps
    /// ticking while the renewal is stuck in flight.
    Delay {
        /// How many deliveries overtake the delayed frame.
        frames: usize,
    },
    /// The frame arrives intact (a scheduling placeholder).
    Clean,
}

/// A [`Transport`] decorator injecting deterministic queues of delivery
/// faults — one schedule per direction — for driving every follower-side
/// refusal path and every election/lease timeout path from tests.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    faults: Mutex<VecDeque<TransportFault>>,
    recv_faults: Mutex<VecDeque<TransportFault>>,
    /// Frames held back by [`TransportFault::Reorder`] /
    /// [`TransportFault::Delay`] on the send side: `(frame, deliveries
    /// still to overtake it)`.
    held: Vec<(Vec<u8>, usize)>,
    /// Same, for the recv side.
    recv_held: Vec<(Vec<u8>, usize)>,
    fired: AtomicUsize,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with a FIFO send-side fault schedule.
    pub fn new(inner: T, schedule: Vec<TransportFault>) -> Self {
        Self {
            inner,
            faults: Mutex::new(schedule.into()),
            recv_faults: Mutex::new(VecDeque::new()),
            held: Vec::new(),
            recv_held: Vec::new(),
            fired: AtomicUsize::new(0),
        }
    }

    /// Wraps `inner` with both a send-side and a recv-side schedule.
    pub fn with_recv_faults(
        inner: T,
        send_schedule: Vec<TransportFault>,
        recv_schedule: Vec<TransportFault>,
    ) -> Self {
        let mut t = Self::new(inner, send_schedule);
        t.recv_faults = Mutex::new(recv_schedule.into());
        t
    }

    /// Appends one fault to the send-side schedule.
    pub fn push_fault(&self, fault: TransportFault) {
        self.faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(fault);
    }

    /// Appends one fault to the recv-side schedule.
    pub fn push_recv_fault(&self, fault: TransportFault) {
        self.recv_faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(fault);
    }

    /// How many non-[`TransportFault::Clean`] faults have fired, across
    /// both directions.
    pub fn faults_fired(&self) -> usize {
        self.fired.load(Ordering::SeqCst)
    }

    /// Ages held-back frames by one delivery and returns the first that
    /// became due, preserving hold order.
    fn release_due(held: &mut Vec<(Vec<u8>, usize)>) -> Option<Vec<u8>> {
        for slot in held.iter_mut() {
            slot.1 = slot.1.saturating_sub(1);
        }
        let due = held.iter().position(|(_, left)| *left == 0)?;
        Some(held.remove(due).0)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        let fault = self
            .faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
            .unwrap_or(TransportFault::Clean);
        if !matches!(fault, TransportFault::Clean) {
            self.fired.fetch_add(1, Ordering::SeqCst);
        }
        match fault {
            TransportFault::Drop => {}
            TransportFault::Torn { keep } => {
                self.inner.send(&frame[..keep.min(frame.len())])?;
            }
            TransportFault::Duplicate => {
                self.inner.send(frame)?;
                self.inner.send(frame)?;
            }
            TransportFault::Reorder => {
                self.held.push((frame.to_vec(), 1));
                return Ok(()); // delivered after the *next* frame
            }
            TransportFault::Delay { frames } => {
                self.held.push((frame.to_vec(), frames.max(1)));
                return Ok(());
            }
            TransportFault::Clean => self.inner.send(frame)?,
        }
        while let Some(due) = Self::release_due(&mut self.held) {
            self.inner.send(&due)?;
        }
        Ok(())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Received> {
        // A held-back frame whose delay has elapsed is delivered before
        // the inner transport is polled again.
        if let Some(due) = self
            .recv_held
            .iter()
            .position(|(_, left)| *left == 0)
            .map(|at| self.recv_held.remove(at).0)
        {
            return Ok(Received::Frame(due));
        }
        loop {
            let frame = match self.inner.recv(timeout)? {
                Received::Frame(f) => f,
                Received::TimedOut => {
                    // The wait itself counts as a delivery opportunity:
                    // delayed frames age even while the link is quiet.
                    if let Some(due) = Self::release_due(&mut self.recv_held) {
                        return Ok(Received::Frame(due));
                    }
                    return Ok(Received::TimedOut);
                }
                Received::Closed => {
                    // A closing peer flushes whatever was stuck in flight.
                    if let Some((frame, _)) =
                        (!self.recv_held.is_empty()).then(|| self.recv_held.remove(0))
                    {
                        return Ok(Received::Frame(frame));
                    }
                    return Ok(Received::Closed);
                }
            };
            let fault = self
                .recv_faults
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
                .unwrap_or(TransportFault::Clean);
            if !matches!(fault, TransportFault::Clean) {
                self.fired.fetch_add(1, Ordering::SeqCst);
            }
            let deliver = match fault {
                TransportFault::Drop => {
                    // The frame is gone, but its non-arrival still ages
                    // delayed frames; then report the partition as
                    // silence, exactly what the sender's peer observes.
                    if let Some(due) = Self::release_due(&mut self.recv_held) {
                        return Ok(Received::Frame(due));
                    }
                    return Ok(Received::TimedOut);
                }
                TransportFault::Torn { keep } => frame[..keep.min(frame.len())].to_vec(),
                TransportFault::Duplicate => {
                    self.recv_held.push((frame.clone(), 0));
                    frame
                }
                TransportFault::Reorder => {
                    self.recv_held.push((frame, 1));
                    continue; // surfaces after the next arrival
                }
                TransportFault::Delay { frames } => {
                    // Model the delay as silence for this recv call: the
                    // receiver's lease clock sees nothing arrive, and the
                    // frame surfaces only after `frames` further recvs.
                    self.recv_held.push((frame, frames.max(1)));
                    return Ok(Received::TimedOut);
                }
                TransportFault::Clean => frame,
            };
            if let Some(due) = Self::release_due(&mut self.recv_held) {
                // An aged-out frame surfaces first; the current one waits
                // its turn at the head of the held queue.
                self.recv_held.insert(0, (deliver, 0));
                return Ok(Received::Frame(due));
            }
            return Ok(Received::Frame(deliver));
        }
    }

    fn close(&mut self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(t: &mut dyn Transport, n: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for _ in 0..n {
            match t.recv(Some(Duration::from_millis(200))).unwrap() {
                Received::Frame(f) => out.push(f),
                other => panic!("expected a frame, got {other:?}"),
            }
        }
        out
    }

    #[test]
    fn mem_pair_delivers_in_order_both_ways() {
        let (mut a, mut b) = MemTransport::pair();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        b.send(b"reply").unwrap();
        assert_eq!(frames(&mut b, 2), vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(frames(&mut a, 1), vec![b"reply".to_vec()]);
        assert_eq!(
            b.recv(Some(Duration::from_millis(10))).unwrap(),
            Received::TimedOut
        );
        a.close();
        assert_eq!(b.recv(None).unwrap(), Received::Closed);
        assert!(b.send(b"x").is_err(), "send after peer closed is loud");
    }

    #[test]
    fn mem_close_drains_buffered_frames_first() {
        let (mut a, mut b) = MemTransport::pair();
        a.send(b"last words").unwrap();
        drop(a);
        assert_eq!(
            b.recv(None).unwrap(),
            Received::Frame(b"last words".to_vec())
        );
        assert_eq!(b.recv(None).unwrap(), Received::Closed);
    }

    #[test]
    fn faults_fire_in_schedule_order() {
        let (inner, mut rx) = MemTransport::pair();
        let mut t = FaultyTransport::new(
            inner,
            vec![
                TransportFault::Drop,
                TransportFault::Torn { keep: 2 },
                TransportFault::Duplicate,
                TransportFault::Reorder,
                TransportFault::Clean,
            ],
        );
        for frame in [&b"AAAA"[..], b"BBBB", b"CCCC", b"DDDD", b"EEEE", b"FFFF"] {
            t.send(frame).unwrap();
        }
        assert_eq!(t.faults_fired(), 4, "Clean is not a fault");
        let got = frames(&mut rx, 6);
        assert_eq!(
            got,
            vec![
                b"BB".to_vec(),   // torn survivor of BBBB (AAAA dropped)
                b"CCCC".to_vec(), // duplicated
                b"CCCC".to_vec(),
                b"EEEE".to_vec(), // DDDD held back, EEEE overtakes
                b"DDDD".to_vec(),
                b"FFFF".to_vec(), // schedule exhausted: clean
            ]
        );
    }

    #[test]
    fn send_side_delay_holds_a_frame_for_k_deliveries() {
        let (inner, mut rx) = MemTransport::pair();
        let mut t = FaultyTransport::new(
            inner,
            vec![TransportFault::Delay { frames: 2 }, TransportFault::Clean],
        );
        t.send(b"late").unwrap();
        t.send(b"first").unwrap();
        t.send(b"second").unwrap(); // "late" becomes due after this
        assert_eq!(
            frames(&mut rx, 3),
            vec![b"first".to_vec(), b"second".to_vec(), b"late".to_vec()]
        );
        assert_eq!(t.faults_fired(), 1);
    }

    #[test]
    fn recv_side_drop_models_an_asymmetric_partition() {
        let (mut tx, inner) = MemTransport::pair();
        let mut t = FaultyTransport::with_recv_faults(
            inner,
            vec![],
            vec![TransportFault::Drop, TransportFault::Drop],
        );
        // One direction is dark: sends succeed, yet nothing arrives.
        tx.send(b"into the void").unwrap();
        tx.send(b"also lost").unwrap();
        tx.send(b"heard").unwrap();
        assert_eq!(
            t.recv(Some(Duration::from_millis(200))).unwrap(),
            Received::TimedOut
        );
        assert_eq!(
            t.recv(Some(Duration::from_millis(200))).unwrap(),
            Received::TimedOut
        );
        assert_eq!(
            t.recv(Some(Duration::from_millis(200))).unwrap(),
            Received::Frame(b"heard".to_vec())
        );
        assert_eq!(t.faults_fired(), 2);
        // The reverse direction stays clean.
        t.send(b"reply").unwrap();
        assert_eq!(frames(&mut tx, 1), vec![b"reply".to_vec()]);
    }

    #[test]
    fn recv_side_delay_surfaces_the_frame_after_k_recvs() {
        let (mut tx, inner) = MemTransport::pair();
        let mut t = FaultyTransport::with_recv_faults(
            inner,
            vec![],
            vec![TransportFault::Delay { frames: 2 }],
        );
        tx.send(b"heartbeat").unwrap();
        // The delayed frame reads as silence now…
        assert_eq!(
            t.recv(Some(Duration::from_millis(50))).unwrap(),
            Received::TimedOut
        );
        // …ages through one more quiet recv…
        assert_eq!(
            t.recv(Some(Duration::from_millis(50))).unwrap(),
            Received::TimedOut
        );
        // …and then arrives intact.
        assert_eq!(
            t.recv(Some(Duration::from_millis(50))).unwrap(),
            Received::Frame(b"heartbeat".to_vec())
        );
    }

    #[test]
    fn recv_side_delay_is_flushed_by_peer_close() {
        let (mut tx, inner) = MemTransport::pair();
        let mut t = FaultyTransport::with_recv_faults(
            inner,
            vec![],
            vec![TransportFault::Delay { frames: 50 }],
        );
        tx.send(b"stuck").unwrap();
        assert_eq!(
            t.recv(Some(Duration::from_millis(50))).unwrap(),
            Received::TimedOut
        );
        tx.close();
        assert_eq!(t.recv(None).unwrap(), Received::Frame(b"stuck".to_vec()));
        assert_eq!(t.recv(None).unwrap(), Received::Closed);
    }

    #[test]
    fn tcp_round_trips_frames_with_timeouts() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream);
            let frame = match t.recv(None).unwrap() {
                Received::Frame(f) => f,
                other => panic!("{other:?}"),
            };
            t.send(&frame).unwrap(); // echo
            assert_eq!(t.recv(None).unwrap(), Received::Closed);
        });
        let mut c = TcpTransport::connect(&addr).unwrap();
        assert_eq!(
            c.recv(Some(Duration::from_millis(20))).unwrap(),
            Received::TimedOut
        );
        c.send(b"ping with some payload").unwrap();
        assert_eq!(
            c.recv(None).unwrap(),
            Received::Frame(b"ping with some payload".to_vec())
        );
        c.close();
        server.join().unwrap();
    }
}
