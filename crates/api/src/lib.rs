//! The stable public query surface of the workspace.
//!
//! Everything an *external* consumer touches goes through this crate, so
//! the CLI, the `synoptic serve` network tier, and the in-process
//! libraries all speak the same types:
//!
//! * [`Request`] / [`Response`] — the four-verb query protocol
//!   (EstimateBatch, Update, Stats, Ping) with a checksummed binary
//!   encoding ([`wire`]), framed exactly like the replication protocol
//!   (`magic | type | payload | crc32`, length-prefixed by the
//!   transport).
//! * [`AnswerEnvelope`] — every estimate travels with its provenance:
//!   [`AnswerSource`](synoptic_core::AnswerSource), the hot-swap
//!   generation it was answered from, replication/rebuild lag, and the
//!   [`BuildOutcome`](synoptic_core::BuildOutcome) of the synopsis that
//!   answered. Provenance is never dropped at a boundary.
//! * [`Queryable`] — the one estimate entry point. Pool columns,
//!   replication followers, the durable catalog, and the network client
//!   all implement it, so call sites cannot tell (and need not care)
//!   where an answer comes from — only the envelope says.
//! * [`exit_code`] — the single `SynopticError` → process-exit-code
//!   mapping. The CLI derives every exit code from it and the wire error
//!   codec round-trips errors structurally, so a refusal keeps its exact
//!   meaning (and exit code) across process and network boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
pub mod exit;
pub mod wire;

pub use envelope::{AnswerEnvelope, Queryable};
pub use exit::{
    exit_code, EXIT_CANCELLED, EXIT_CORRUPT, EXIT_DEADLINE, EXIT_FAILURE, EXIT_FENCED,
    EXIT_REFUSED, EXIT_REPLICATION, EXIT_SUCCESS, EXIT_UNRECOVERABLE, EXIT_USAGE,
};
pub use wire::{
    decode_request, decode_request_with, decode_response, encode_request, encode_request_with,
    encode_response, encode_response_extended, BatchAnswer, DegradeRung, QueryBatch, Request,
    RequestHeader, Response, ServerStats,
};
