//! The one `SynopticError` → process-exit-code mapping.
//!
//! Every CLI exit code derives from [`exit_code`]; the wire error codec
//! ([`crate::wire`]) round-trips errors structurally, so a refusal
//! produced server-side maps to the *same* exit code when the client
//! process reports it. The contract is documented in
//! `docs/ROBUSTNESS.md` §7.2 and asserted against that table by the
//! table-driven test below — the doc and the code cannot drift apart
//! silently.

use synoptic_core::SynopticError;

/// Exit code for success.
pub const EXIT_SUCCESS: u8 = 0;
/// Exit code for generic failures (I/O, invalid data, internal errors).
pub const EXIT_FAILURE: u8 = 1;
/// Exit code for usage errors (bad flags, unknown commands/methods).
pub const EXIT_USAGE: u8 = 2;
/// Exit code when a synopsis, store, or wire frame fails checksum/format
/// validation.
pub const EXIT_CORRUPT: u8 = 4;
/// Exit code when a deadline or DP-cell budget is exhausted and no
/// fallback absorbed it.
pub const EXIT_DEADLINE: u8 = 5;
/// Exit code when the build was cancelled (cancellation always aborts; it
/// is never absorbed by the fallback ladder).
pub const EXIT_CANCELLED: u8 = 6;
/// Exit code when a write-ahead journal cannot be trusted during
/// `recover`: damage beyond the tolerated torn tail, or a journal written
/// against a newer generation than the recovered snapshot.
pub const EXIT_UNRECOVERABLE: u8 = 7;
/// Exit code for replication divergence: a shipped segment stream that a
/// follower refused (and retries could not repair), or a replica read
/// refused because it trails the leader beyond `--max-lag`.
pub const EXIT_REPLICATION: u8 = 8;
/// Exit code when this process's election term was superseded: a write or
/// ship was refused by a replica that granted a newer term.
pub const EXIT_FENCED: u8 = 9;
/// Exit code when the serving tier refused a request under admission
/// control: queue depth, rebuild lag, or a tenant's token bucket
/// exceeded its bound ([`SynopticError::ServerOverloaded`]). The refusal
/// carries the bound and the observed value; back off and retry.
pub const EXIT_REFUSED: u8 = 10;

/// Maps an error to the exit code contract of `docs/ROBUSTNESS.md` §7.2.
/// This is the *only* place the mapping lives: `CliError` derives from
/// it, and the wire codec preserves variants so remote errors keep their
/// code.
pub fn exit_code(e: &SynopticError) -> u8 {
    match e {
        SynopticError::Cancelled => EXIT_CANCELLED,
        SynopticError::DeadlineExceeded { .. } | SynopticError::CellBudgetExceeded { .. } => {
            EXIT_DEADLINE
        }
        SynopticError::CorruptSynopsis { .. } => EXIT_CORRUPT,
        SynopticError::CorruptJournal { .. } | SynopticError::WalGenerationMismatch { .. } => {
            EXIT_UNRECOVERABLE
        }
        SynopticError::ReplicationDivergence { .. }
        | SynopticError::ReplicationLagExceeded { .. } => EXIT_REPLICATION,
        SynopticError::StaleLeaderTerm { .. } => EXIT_FENCED,
        SynopticError::ServerOverloaded { .. } => EXIT_REFUSED,
        _ => EXIT_FAILURE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Parses the two-column exit-code table out of
    /// `docs/ROBUSTNESS.md` §7.2 (`| code | meaning |` rows). Other
    /// tables in the doc have more columns and are skipped.
    fn documented_codes() -> BTreeMap<u8, String> {
        let doc = include_str!("../../../docs/ROBUSTNESS.md");
        let mut rows = BTreeMap::new();
        for line in doc.lines() {
            let cells: Vec<&str> = line
                .strip_prefix('|')
                .and_then(|l| l.strip_suffix('|'))
                .map(|l| l.split('|').map(str::trim).collect())
                .unwrap_or_default();
            if cells.len() != 2 {
                continue;
            }
            if let Ok(code) = cells[0].parse::<u8>() {
                rows.insert(code, cells[1].to_string());
            }
        }
        rows
    }

    #[test]
    fn every_exit_constant_is_documented() {
        let rows = documented_codes();
        for (code, needle) in [
            (EXIT_SUCCESS, "success"),
            (EXIT_FAILURE, "failure"),
            (EXIT_USAGE, "usage"),
            (EXIT_CORRUPT, "corrupt"),
            (EXIT_DEADLINE, "deadline"),
            (EXIT_CANCELLED, "cancelled"),
            (EXIT_UNRECOVERABLE, "journal"),
            (EXIT_REPLICATION, "replication"),
            (EXIT_FENCED, "fenced"),
            (EXIT_REFUSED, "refus"),
        ] {
            let meaning = rows
                .get(&code)
                .unwrap_or_else(|| panic!("exit code {code} missing from docs/ROBUSTNESS.md §7.2"));
            assert!(
                meaning.to_lowercase().contains(needle),
                "docs row for code {code} ({meaning:?}) should mention {needle:?}"
            );
        }
    }

    #[test]
    fn error_mapping_matches_the_documented_table() {
        let rows = documented_codes();
        let cases: Vec<(SynopticError, u8)> = vec![
            (SynopticError::EmptyInput, EXIT_FAILURE),
            (
                SynopticError::Io {
                    path: "/x".into(),
                    detail: "gone".into(),
                },
                EXIT_FAILURE,
            ),
            (SynopticError::InvalidParameter("eps".into()), EXIT_FAILURE),
            (
                SynopticError::CorruptSynopsis {
                    context: "c".into(),
                    detail: "crc".into(),
                },
                EXIT_CORRUPT,
            ),
            (
                SynopticError::DeadlineExceeded { elapsed_ms: 9 },
                EXIT_DEADLINE,
            ),
            (
                SynopticError::CellBudgetExceeded { used: 2, limit: 1 },
                EXIT_DEADLINE,
            ),
            (SynopticError::Cancelled, EXIT_CANCELLED),
            (
                SynopticError::CorruptJournal {
                    context: "w".into(),
                    detail: "crc".into(),
                },
                EXIT_UNRECOVERABLE,
            ),
            (
                SynopticError::WalGenerationMismatch {
                    wal_generation: 2,
                    snapshot_generation: 1,
                },
                EXIT_UNRECOVERABLE,
            ),
            (
                SynopticError::ReplicationDivergence {
                    context: "c".into(),
                    detail: "gap".into(),
                },
                EXIT_REPLICATION,
            ),
            (
                SynopticError::ReplicationLagExceeded {
                    column: "c".into(),
                    lag: 9,
                    max_lag: 4,
                },
                EXIT_REPLICATION,
            ),
            (
                SynopticError::StaleLeaderTerm {
                    stale_term: 1,
                    current_term: 2,
                },
                EXIT_FENCED,
            ),
            (
                SynopticError::ServerOverloaded {
                    what: "queue depth".into(),
                    observed: 65,
                    limit: 64,
                },
                EXIT_REFUSED,
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(exit_code(&err), expected, "{err}");
            assert!(
                rows.contains_key(&expected),
                "exit code {expected} for {err} is not documented"
            );
        }
    }
}
