//! The query-protocol frame format.
//!
//! Same framing discipline as the replication protocol (`SRP1` in
//! `synoptic-repl`): every frame is self-delimiting at the transport
//! layer (transports carry whole frames, length-prefixed) and
//! self-validating here:
//!
//! ```text
//! frame:   magic "SQP1" (4) | type u8 | payload | crc32 u32
//! string:  len u16 | bytes              (column names, error text)
//! ranges:  len u32 | (lo u64, hi u64) × len
//! deltas:  len u32 | (index u64, delta i64) × len
//! answers: len u32 | (value f64-bits u64, cached u8) × len
//! ```
//!
//! All integers are little-endian; the CRC covers every byte before it.
//! A frame that fails validation decodes to
//! [`SynopticError::CorruptSynopsis`] with context `"query frame"` —
//! the receiver refuses it loudly (exit code 4 class) and never acts on
//! bytes that did not validate.
//!
//! Errors cross the wire *structurally*: [`Response::Error`] carries the
//! exact [`SynopticError`] variant, re-encoded field by field, so a
//! server-side refusal keeps its provenance fields and its
//! [`crate::exit_code`] mapping on the client — the consolidated
//! `SynopticError` → wire error → exit code chain has exactly one link
//! per hop and no lossy step.

use synoptic_catalog::checksum::crc32;
use synoptic_core::{AnswerSource, BuildAttempt, BuildOutcome, RangeQuery, Result, SynopticError};

use crate::envelope::AnswerEnvelope;

/// Magic bytes opening every query-protocol frame.
pub const FRAME_MAGIC: [u8; 4] = *b"SQP1";

const TYPE_PING: u8 = 1;
const TYPE_PONG: u8 = 2;
const TYPE_ESTIMATE_BATCH: u8 = 3;
const TYPE_ESTIMATES: u8 = 4;
const TYPE_UPDATE: u8 = 5;
const TYPE_UPDATED: u8 = 6;
const TYPE_STATS: u8 = 7;
const TYPE_STATS_RESP: u8 = 8;
const TYPE_ERROR: u8 = 9;
const TYPE_HEADERED: u8 = 10;
const TYPE_ESTIMATES_DEGRADED: u8 = 11;
const TYPE_STATS_RESP2: u8 = 12;

/// Optional per-request metadata riding ahead of any [`Request`].
///
/// The header is strictly additive to the PR-9 wire format: a request
/// with an **empty** header encodes to the exact same bytes an
/// un-headered client produces (no new frame type, no extra fields), and
/// every old frame decodes to the request plus a default header. A
/// non-empty header wraps the request in a `TYPE_HEADERED` frame that
/// old servers refuse loudly as an unknown type — never misread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestHeader {
    /// Remaining client deadline in milliseconds. The server converts it
    /// into a per-request `Budget` deadline and sheds already-expired
    /// work before execution (`0` means "expired on arrival": the
    /// request is always shed, with `DeadlineExceeded` provenance).
    pub deadline_ms: Option<u64>,
    /// Tenant identity for token-bucket admission. Requests without one
    /// share the default `""` tenant.
    pub tenant: Option<String>,
    /// Whether the client accepts a degraded answer (cache hit,
    /// last-good synopsis, or naive metadata estimate — see
    /// [`DegradeRung`]) instead of a refusal when admission would shed
    /// the estimate.
    pub degrade_ok: bool,
}

impl RequestHeader {
    /// Whether every field is at its default — an empty header encodes
    /// to the un-headered (PR-9) frame bytes.
    pub fn is_empty(&self) -> bool {
        self.deadline_ms.is_none() && self.tenant.is_none() && !self.degrade_ok
    }

    /// The tenant name admission control buckets this request under.
    pub fn tenant_or_default(&self) -> &str {
        self.tenant.as_deref().unwrap_or("")
    }
}

/// Which rung of the serving-side degradation ladder answered a batch
/// whose request set [`RequestHeader::degrade_ok`] while admission would
/// otherwise have refused it. Rungs descend in answer quality; every
/// degraded answer carries its rung so it can never be mistaken for a
/// normally-served one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeRung {
    /// Every range was answered from the generation-keyed cache at the
    /// pinned generation — values are as fresh as a normal answer, but
    /// nothing was computed under overload.
    CacheHit,
    /// Computed from the last-good (pinned) synopsis even though its
    /// rebuild lag exceeds the admission bound; the batch `lag` field
    /// says by how much.
    LastGood,
    /// A naive metadata estimate: the column's total mass spread
    /// uniformly over the domain. The cheapest possible answer, taken
    /// when computing from the synopsis is exactly what overload must
    /// avoid.
    Naive,
}

impl DegradeRung {
    fn tag(self) -> u8 {
        match self {
            DegradeRung::CacheHit => 0,
            DegradeRung::LastGood => 1,
            DegradeRung::Naive => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => DegradeRung::CacheHit,
            1 => DegradeRung::LastGood,
            2 => DegradeRung::Naive,
            other => return Err(corrupt(format!("bad degrade rung tag {other}"))),
        })
    }
}

impl std::fmt::Display for DegradeRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradeRung::CacheHit => "cache-hit",
            DegradeRung::LastGood => "last-good",
            DegradeRung::Naive => "naive",
        })
    }
}

/// Many ranges against one column, answered from one snapshot pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBatch {
    /// Column every range queries.
    pub column: String,
    /// The ranges, answered in order.
    pub ranges: Vec<RangeQuery>,
}

impl QueryBatch {
    /// A batch over `column`.
    pub fn new(column: impl Into<String>, ranges: Vec<RangeQuery>) -> Self {
        Self {
            column: column.into(),
            ranges,
        }
    }
}

/// A client request. The whole protocol is four verbs; anything richer
/// composes out of them client-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the server answers [`Response::Pong`].
    Ping,
    /// Answer every range in the batch against one snapshot pin.
    EstimateBatch(QueryBatch),
    /// Ingest point updates `A[index] += delta`, in order.
    Update {
        /// Column to update.
        column: String,
        /// `(index, delta)` pairs, applied in order.
        deltas: Vec<(u64, i64)>,
    },
    /// Maintenance counters and cache/admission meters for a column.
    Stats {
        /// Column to report on.
        column: String,
    },
}

/// One batch's answers plus the provenance shared by all of them (they
/// were answered from a single pinned snapshot, so source, generation,
/// lag, and build outcome are batch-wide by construction).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchAnswer {
    /// Publication generation of the pinned snapshot that answered every
    /// range in the batch.
    pub generation: u64,
    /// Which synopsis answered.
    pub source: AnswerSource,
    /// Updates applied but not yet rebuilt into the snapshot at pin time.
    pub lag: u64,
    /// Build provenance of the answering synopsis, when tracked.
    pub outcome: Option<BuildOutcome>,
    /// Per-segment build provenance for segmented columns.
    pub segment_outcomes: Option<Vec<BuildOutcome>>,
    /// Estimated range sums, in request order.
    pub values: Vec<f64>,
    /// Per-range: `true` when the hot-range cache answered (same
    /// `(column, generation, range)` key seen before), `false` when the
    /// pinned synopsis computed it fresh.
    pub cached: Vec<bool>,
    /// The degradation-ladder rung that produced this answer, when the
    /// server shed normal execution and the request allowed degradation
    /// (`None` for normally-served batches). Travels in a dedicated
    /// frame type, so only headered (PR-10+) clients ever receive it.
    pub rung: Option<DegradeRung>,
}

impl BatchAnswer {
    /// Expands the shared provenance into one [`AnswerEnvelope`] per
    /// range, in request order.
    pub fn envelopes(&self) -> Vec<AnswerEnvelope> {
        self.values
            .iter()
            .map(|&value| AnswerEnvelope {
                value,
                source: self.source.clone(),
                generation: self.generation,
                lag: self.lag,
                outcome: self.outcome.clone(),
                segment_outcomes: self.segment_outcomes.clone(),
            })
            .collect()
    }
}

/// Maintenance, cache, and admission meters for one served column.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Column reported on.
    pub column: String,
    /// Domain size.
    pub n: u64,
    /// Current serving generation of the column's hot-swap cell.
    pub generation: u64,
    /// Total updates ingested.
    pub updates: u64,
    /// Successful background rebuilds.
    pub rebuilds: u64,
    /// Rebuild attempts that failed (previous synopsis kept serving).
    pub failed_rebuilds: u64,
    /// Updates applied since the last successful rebuild (the rebuild
    /// lag that admission control bounds).
    pub updates_since_rebuild: u64,
    /// Hot-range cache hits across all connections.
    pub cache_hits: u64,
    /// Hot-range cache misses (fresh computations) across all
    /// connections.
    pub cache_misses: u64,
    /// Times the cache dropped its entries because the serving
    /// generation moved — every hot swap invalidates the whole keyed
    /// set, making a stale-generation hit impossible.
    pub cache_invalidations: u64,
    /// Requests refused by admission control (queue depth, rebuild lag,
    /// or tenant quota) since the server started.
    pub refused: u64,
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Requests shed before execution because their propagated deadline
    /// had already expired on arrival.
    pub deadline_sheds: u64,
    /// Estimates answered by the degradation ladder (any rung) instead
    /// of being refused.
    pub degraded: u64,
    /// Distinct tenants the token-bucket admission layer has seen.
    pub tenants: u64,
    /// Median estimate-request service latency in microseconds, derived
    /// from the server's log2-bucketed histogram (upper bucket bound).
    pub estimate_p50_us: u64,
    /// 99th-percentile estimate-request service latency in microseconds.
    pub estimate_p99_us: u64,
    /// Median update-request service latency in microseconds.
    pub update_p50_us: u64,
    /// 99th-percentile update-request service latency in microseconds.
    pub update_p99_us: u64,
}

impl ServerStats {
    /// The seven overload/latency meters added in the extended
    /// (`TYPE_STATS_RESP2`) stats frame, in wire order. The legacy frame
    /// omits them; a legacy decode leaves them zero.
    fn extended_fields(&self) -> [u64; 7] {
        [
            self.deadline_sheds,
            self.degraded,
            self.tenants,
            self.estimate_p50_us,
            self.estimate_p99_us,
            self.update_p50_us,
            self.update_p99_us,
        ]
    }
}

/// A server response. Every request gets exactly one, in order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::EstimateBatch`].
    Estimates(BatchAnswer),
    /// Answer to [`Request::Update`]: how many deltas were applied and
    /// how many background rebuilds the stream scheduled.
    Updated {
        /// Deltas applied (always all of them, or the request errored).
        applied: u64,
        /// Rebuild jobs the updates scheduled.
        scheduled: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// The request was refused or failed; the exact error crosses the
    /// wire structurally (see the module docs).
    Error(SynopticError),
}

fn corrupt(detail: impl Into<String>) -> SynopticError {
    SynopticError::CorruptSynopsis {
        context: "query frame".to_string(),
        detail: detail.into(),
    }
}

/// Encodes a length-prefixed string. The prefix is a `u16`, so strings
/// of 64 KiB or more (possible for error text built from user input) are
/// truncated at a char boundary rather than silently wrapping the
/// length — a wrapped prefix would make the payload disagree with the
/// frame and the peer would refuse the whole frame as corruption instead
/// of delivering the (merely shortened) text.
fn put_str(out: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(usize::from(u16::MAX));
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    out.extend_from_slice(&(end as u16).to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..end]);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return Err(corrupt("frame payload truncated"));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn count(&mut self, per_item: usize) -> Result<usize> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4")) as usize;
        // Refuse counts the remaining payload cannot possibly hold, so a
        // corrupt length cannot drive a giant allocation.
        let need = len
            .checked_mul(per_item)
            .ok_or_else(|| corrupt("count overflow"))?;
        if self.bytes.len() - self.at < need {
            return Err(corrupt("count exceeds frame payload"));
        }
        Ok(len)
    }

    fn str(&mut self) -> Result<String> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("2")) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("frame string is not UTF-8"))
    }

    fn done(&self) -> Result<()> {
        if self.at != self.bytes.len() {
            return Err(corrupt(format!(
                "{} trailing bytes after frame payload",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

fn put_outcome_opt(out: &mut Vec<u8>, outcome: &Option<BuildOutcome>) {
    match outcome {
        None => out.push(0),
        Some(o) => {
            out.push(1);
            put_outcome(out, o);
        }
    }
}

fn put_outcome(out: &mut Vec<u8>, o: &BuildOutcome) {
    put_str(out, &o.requested);
    put_str(out, &o.used);
    out.extend_from_slice(&(o.tier as u64).to_le_bytes());
    out.extend_from_slice(&o.elapsed_ms.to_le_bytes());
    out.extend_from_slice(&o.cells.to_le_bytes());
    out.extend_from_slice(&(o.attempts.len() as u32).to_le_bytes());
    for a in &o.attempts {
        put_str(out, &a.method);
        put_str(out, &a.error);
        out.extend_from_slice(&a.elapsed_ms.to_le_bytes());
        out.extend_from_slice(&a.cells.to_le_bytes());
    }
}

fn read_outcome_opt(r: &mut Reader<'_>) -> Result<Option<BuildOutcome>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_outcome(r)?)),
        other => Err(corrupt(format!("bad outcome flag {other}"))),
    }
}

fn read_outcome(r: &mut Reader<'_>) -> Result<BuildOutcome> {
    let requested = r.str()?;
    let used = r.str()?;
    let tier = r.u64()? as usize;
    let elapsed_ms = r.u64()?;
    let cells = r.u64()?;
    let attempts = r.count(4)?;
    let attempts = (0..attempts)
        .map(|_| {
            Ok(BuildAttempt {
                method: r.str()?,
                error: r.str()?,
                elapsed_ms: r.u64()?,
                cells: r.u64()?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(BuildOutcome {
        requested,
        used,
        tier,
        attempts,
        elapsed_ms,
        cells,
    })
}

fn put_source(out: &mut Vec<u8>, source: &AnswerSource) {
    match source {
        AnswerSource::Primary => out.push(0),
        AnswerSource::FallbackGeneration { generation } => {
            out.push(1);
            out.extend_from_slice(&generation.to_le_bytes());
        }
        AnswerSource::FallbackNaive => out.push(2),
    }
}

fn read_source(r: &mut Reader<'_>) -> Result<AnswerSource> {
    Ok(match r.u8()? {
        0 => AnswerSource::Primary,
        1 => AnswerSource::FallbackGeneration {
            generation: r.u64()?,
        },
        2 => AnswerSource::FallbackNaive,
        other => return Err(corrupt(format!("bad answer source tag {other}"))),
    })
}

// Structural error codec. One tag per variant; fields in declaration
// order. A variant this build does not know how to encode (the enum is
// `#[non_exhaustive]`) degrades to `InvalidParameter` carrying its
// rendered text — lossy display, lossless refusal.
const ERR_EMPTY_INPUT: u8 = 1;
const ERR_INDEX_OOB: u8 = 2;
const ERR_INVALID_RANGE: u8 = 3;
const ERR_INVALID_BUCKETS: u8 = 4;
const ERR_INVALID_BOUNDARIES: u8 = 5;
const ERR_BUDGET_TOO_SMALL: u8 = 6;
const ERR_INVALID_PARAMETER: u8 = 7;
const ERR_SINGULAR: u8 = 8;
const ERR_OVERFLOW: u8 = 9;
const ERR_CORRUPT_SYNOPSIS: u8 = 10;
const ERR_UNSUPPORTED_VERSION: u8 = 11;
const ERR_IO: u8 = 12;
const ERR_CANCELLED: u8 = 13;
const ERR_DEADLINE: u8 = 14;
const ERR_CELL_BUDGET: u8 = 15;
const ERR_BUILD_PANICKED: u8 = 16;
const ERR_WORKER_UNAVAILABLE: u8 = 17;
const ERR_WAL_GENERATION: u8 = 18;
const ERR_CORRUPT_JOURNAL: u8 = 19;
const ERR_REPL_DIVERGENCE: u8 = 20;
const ERR_STALE_TERM: u8 = 21;
const ERR_REPL_LAG: u8 = 22;
const ERR_SERVER_OVERLOADED: u8 = 23;

fn put_error(out: &mut Vec<u8>, e: &SynopticError) {
    match e {
        SynopticError::EmptyInput => out.push(ERR_EMPTY_INPUT),
        SynopticError::IndexOutOfBounds { index, n } => {
            out.push(ERR_INDEX_OOB);
            out.extend_from_slice(&(*index as u64).to_le_bytes());
            out.extend_from_slice(&(*n as u64).to_le_bytes());
        }
        SynopticError::InvalidRange { lo, hi } => {
            out.push(ERR_INVALID_RANGE);
            out.extend_from_slice(&(*lo as u64).to_le_bytes());
            out.extend_from_slice(&(*hi as u64).to_le_bytes());
        }
        SynopticError::InvalidBucketCount { buckets, n } => {
            out.push(ERR_INVALID_BUCKETS);
            out.extend_from_slice(&(*buckets as u64).to_le_bytes());
            out.extend_from_slice(&(*n as u64).to_le_bytes());
        }
        SynopticError::InvalidBoundaries(msg) => {
            out.push(ERR_INVALID_BOUNDARIES);
            put_str(out, msg);
        }
        SynopticError::BudgetTooSmall { words, minimum } => {
            out.push(ERR_BUDGET_TOO_SMALL);
            out.extend_from_slice(&(*words as u64).to_le_bytes());
            out.extend_from_slice(&(*minimum as u64).to_le_bytes());
        }
        SynopticError::InvalidParameter(msg) => {
            out.push(ERR_INVALID_PARAMETER);
            put_str(out, msg);
        }
        SynopticError::SingularSystem(msg) => {
            out.push(ERR_SINGULAR);
            put_str(out, msg);
        }
        SynopticError::Overflow => out.push(ERR_OVERFLOW),
        SynopticError::CorruptSynopsis { context, detail } => {
            out.push(ERR_CORRUPT_SYNOPSIS);
            put_str(out, context);
            put_str(out, detail);
        }
        SynopticError::UnsupportedVersion { found, supported } => {
            out.push(ERR_UNSUPPORTED_VERSION);
            out.extend_from_slice(&u64::from(*found).to_le_bytes());
            out.extend_from_slice(&u64::from(*supported).to_le_bytes());
        }
        SynopticError::Io { path, detail } => {
            out.push(ERR_IO);
            put_str(out, path);
            put_str(out, detail);
        }
        SynopticError::Cancelled => out.push(ERR_CANCELLED),
        SynopticError::DeadlineExceeded { elapsed_ms } => {
            out.push(ERR_DEADLINE);
            out.extend_from_slice(&elapsed_ms.to_le_bytes());
        }
        SynopticError::CellBudgetExceeded { used, limit } => {
            out.push(ERR_CELL_BUDGET);
            out.extend_from_slice(&used.to_le_bytes());
            out.extend_from_slice(&limit.to_le_bytes());
        }
        SynopticError::BuildPanicked { detail } => {
            out.push(ERR_BUILD_PANICKED);
            put_str(out, detail);
        }
        SynopticError::WorkerUnavailable { column } => {
            out.push(ERR_WORKER_UNAVAILABLE);
            put_str(out, column);
        }
        SynopticError::WalGenerationMismatch {
            wal_generation,
            snapshot_generation,
        } => {
            out.push(ERR_WAL_GENERATION);
            out.extend_from_slice(&wal_generation.to_le_bytes());
            out.extend_from_slice(&snapshot_generation.to_le_bytes());
        }
        SynopticError::CorruptJournal { context, detail } => {
            out.push(ERR_CORRUPT_JOURNAL);
            put_str(out, context);
            put_str(out, detail);
        }
        SynopticError::ReplicationDivergence { context, detail } => {
            out.push(ERR_REPL_DIVERGENCE);
            put_str(out, context);
            put_str(out, detail);
        }
        SynopticError::StaleLeaderTerm {
            stale_term,
            current_term,
        } => {
            out.push(ERR_STALE_TERM);
            out.extend_from_slice(&stale_term.to_le_bytes());
            out.extend_from_slice(&current_term.to_le_bytes());
        }
        SynopticError::ReplicationLagExceeded {
            column,
            lag,
            max_lag,
        } => {
            out.push(ERR_REPL_LAG);
            put_str(out, column);
            out.extend_from_slice(&lag.to_le_bytes());
            out.extend_from_slice(&max_lag.to_le_bytes());
        }
        SynopticError::ServerOverloaded {
            what,
            observed,
            limit,
        } => {
            out.push(ERR_SERVER_OVERLOADED);
            put_str(out, what);
            out.extend_from_slice(&observed.to_le_bytes());
            out.extend_from_slice(&limit.to_le_bytes());
        }
        // `SynopticError` is #[non_exhaustive]: a variant added after
        // this codec shipped still crosses the wire as a refusal, just
        // without structure.
        other => {
            out.push(ERR_INVALID_PARAMETER);
            put_str(out, &other.to_string());
        }
    }
}

fn read_error(r: &mut Reader<'_>) -> Result<SynopticError> {
    Ok(match r.u8()? {
        ERR_EMPTY_INPUT => SynopticError::EmptyInput,
        ERR_INDEX_OOB => SynopticError::IndexOutOfBounds {
            index: r.u64()? as usize,
            n: r.u64()? as usize,
        },
        ERR_INVALID_RANGE => SynopticError::InvalidRange {
            lo: r.u64()? as usize,
            hi: r.u64()? as usize,
        },
        ERR_INVALID_BUCKETS => SynopticError::InvalidBucketCount {
            buckets: r.u64()? as usize,
            n: r.u64()? as usize,
        },
        ERR_INVALID_BOUNDARIES => SynopticError::InvalidBoundaries(r.str()?),
        ERR_BUDGET_TOO_SMALL => SynopticError::BudgetTooSmall {
            words: r.u64()? as usize,
            minimum: r.u64()? as usize,
        },
        ERR_INVALID_PARAMETER => SynopticError::InvalidParameter(r.str()?),
        ERR_SINGULAR => SynopticError::SingularSystem(r.str()?),
        ERR_OVERFLOW => SynopticError::Overflow,
        ERR_CORRUPT_SYNOPSIS => SynopticError::CorruptSynopsis {
            context: r.str()?,
            detail: r.str()?,
        },
        ERR_UNSUPPORTED_VERSION => SynopticError::UnsupportedVersion {
            found: r.u64()? as u16,
            supported: r.u64()? as u16,
        },
        ERR_IO => SynopticError::Io {
            path: r.str()?,
            detail: r.str()?,
        },
        ERR_CANCELLED => SynopticError::Cancelled,
        ERR_DEADLINE => SynopticError::DeadlineExceeded {
            elapsed_ms: r.u64()?,
        },
        ERR_CELL_BUDGET => SynopticError::CellBudgetExceeded {
            used: r.u64()?,
            limit: r.u64()?,
        },
        ERR_BUILD_PANICKED => SynopticError::BuildPanicked { detail: r.str()? },
        ERR_WORKER_UNAVAILABLE => SynopticError::WorkerUnavailable { column: r.str()? },
        ERR_WAL_GENERATION => SynopticError::WalGenerationMismatch {
            wal_generation: r.u64()?,
            snapshot_generation: r.u64()?,
        },
        ERR_CORRUPT_JOURNAL => SynopticError::CorruptJournal {
            context: r.str()?,
            detail: r.str()?,
        },
        ERR_REPL_DIVERGENCE => SynopticError::ReplicationDivergence {
            context: r.str()?,
            detail: r.str()?,
        },
        ERR_STALE_TERM => SynopticError::StaleLeaderTerm {
            stale_term: r.u64()?,
            current_term: r.u64()?,
        },
        ERR_REPL_LAG => SynopticError::ReplicationLagExceeded {
            column: r.str()?,
            lag: r.u64()?,
            max_lag: r.u64()?,
        },
        ERR_SERVER_OVERLOADED => SynopticError::ServerOverloaded {
            what: r.str()?,
            observed: r.u64()?,
            limit: r.u64()?,
        },
        other => return Err(corrupt(format!("unknown error tag {other}"))),
    })
}

fn frame(kind: u8, payload: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind);
    payload(&mut out);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates magic + CRC and returns `(type, payload reader)`.
fn open_frame(bytes: &[u8]) -> Result<(u8, Reader<'_>)> {
    if bytes.len() < FRAME_MAGIC.len() + 1 + 4 {
        return Err(corrupt(format!(
            "{} bytes is shorter than any frame",
            bytes.len()
        )));
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(corrupt("bad frame magic"));
    }
    let crc_at = bytes.len() - 4;
    let crc_stored = u32::from_le_bytes(bytes[crc_at..].try_into().expect("4"));
    if crc_stored != crc32(&bytes[..crc_at]) {
        return Err(corrupt("frame CRC mismatch"));
    }
    Ok((
        bytes[4],
        Reader {
            bytes: &bytes[5..crc_at],
            at: 0,
        },
    ))
}

fn request_kind(req: &Request) -> u8 {
    match req {
        Request::Ping => TYPE_PING,
        Request::EstimateBatch(_) => TYPE_ESTIMATE_BATCH,
        Request::Update { .. } => TYPE_UPDATE,
        Request::Stats { .. } => TYPE_STATS,
    }
}

fn put_request_body(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Ping => {}
        Request::EstimateBatch(batch) => {
            put_str(out, &batch.column);
            out.extend_from_slice(&(batch.ranges.len() as u32).to_le_bytes());
            for q in &batch.ranges {
                out.extend_from_slice(&(q.lo as u64).to_le_bytes());
                out.extend_from_slice(&(q.hi as u64).to_le_bytes());
            }
        }
        Request::Update { column, deltas } => {
            put_str(out, column);
            out.extend_from_slice(&(deltas.len() as u32).to_le_bytes());
            for (i, d) in deltas {
                out.extend_from_slice(&i.to_le_bytes());
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        Request::Stats { column } => put_str(out, column),
    }
}

fn read_request_body(kind: u8, r: &mut Reader<'_>) -> Result<Request> {
    Ok(match kind {
        TYPE_PING => Request::Ping,
        TYPE_ESTIMATE_BATCH => {
            let column = r.str()?;
            let count = r.count(16)?;
            let ranges = (0..count)
                .map(|_| {
                    let lo = r.u64()? as usize;
                    let hi = r.u64()? as usize;
                    RangeQuery::new(lo, hi)
                })
                .collect::<Result<Vec<_>>>()?;
            Request::EstimateBatch(QueryBatch { column, ranges })
        }
        TYPE_UPDATE => {
            let column = r.str()?;
            let count = r.count(16)?;
            let deltas = (0..count)
                .map(|_| Ok((r.u64()?, r.i64()?)))
                .collect::<Result<Vec<_>>>()?;
            Request::Update { column, deltas }
        }
        TYPE_STATS => Request::Stats { column: r.str()? },
        other => return Err(corrupt(format!("unknown request type {other}"))),
    })
}

const HEADER_HAS_DEADLINE: u8 = 1;
const HEADER_HAS_TENANT: u8 = 2;
const HEADER_DEGRADE_OK: u8 = 4;

/// Encodes a request into its checksummed byte representation (no
/// header — the PR-9 frame bytes, unchanged).
pub fn encode_request(req: &Request) -> Vec<u8> {
    frame(request_kind(req), |out| put_request_body(out, req))
}

/// Encodes a request with its header. An **empty** header produces byte
/// output identical to [`encode_request`] — the back-compat guarantee —
/// while a non-empty one wraps the request in a `TYPE_HEADERED` frame:
///
/// ```text
/// headered: flags u8 | [deadline_ms u64] | [tenant str] | inner type u8 | inner payload
/// ```
pub fn encode_request_with(header: &RequestHeader, req: &Request) -> Vec<u8> {
    if header.is_empty() {
        return encode_request(req);
    }
    frame(TYPE_HEADERED, |out| {
        let mut flags = 0u8;
        if header.deadline_ms.is_some() {
            flags |= HEADER_HAS_DEADLINE;
        }
        if header.tenant.is_some() {
            flags |= HEADER_HAS_TENANT;
        }
        if header.degrade_ok {
            flags |= HEADER_DEGRADE_OK;
        }
        out.push(flags);
        if let Some(ms) = header.deadline_ms {
            out.extend_from_slice(&ms.to_le_bytes());
        }
        if let Some(tenant) = &header.tenant {
            put_str(out, tenant);
        }
        out.push(request_kind(req));
        put_request_body(out, req);
    })
}

/// Decodes and validates one request frame. Any failure — bad magic,
/// CRC mismatch, truncation, an unknown or response-side type — refuses
/// the bytes. A headered frame decodes to its inner request (use
/// [`decode_request_with`] to keep the header).
pub fn decode_request(bytes: &[u8]) -> Result<Request> {
    decode_request_with(bytes).map(|(_, req)| req)
}

/// Decodes one request frame together with its header. Un-headered
/// (PR-9) frames decode to a default header, so a server upgraded past
/// the header change keeps serving old clients unchanged.
pub fn decode_request_with(bytes: &[u8]) -> Result<(RequestHeader, Request)> {
    let (kind, mut r) = open_frame(bytes)?;
    let (header, req) = if kind == TYPE_HEADERED {
        let flags = r.u8()?;
        if flags & !(HEADER_HAS_DEADLINE | HEADER_HAS_TENANT | HEADER_DEGRADE_OK) != 0 {
            return Err(corrupt(format!("unknown request header flags {flags:#x}")));
        }
        let deadline_ms = if flags & HEADER_HAS_DEADLINE != 0 {
            Some(r.u64()?)
        } else {
            None
        };
        let tenant = if flags & HEADER_HAS_TENANT != 0 {
            Some(r.str()?)
        } else {
            None
        };
        let degrade_ok = flags & HEADER_DEGRADE_OK != 0;
        let inner = r.u8()?;
        if inner == TYPE_HEADERED {
            return Err(corrupt("nested headered request"));
        }
        (
            RequestHeader {
                deadline_ms,
                tenant,
                degrade_ok,
            },
            read_request_body(inner, &mut r)?,
        )
    } else {
        (RequestHeader::default(), read_request_body(kind, &mut r)?)
    };
    r.done()?;
    Ok((header, req))
}

fn put_batch_answer(out: &mut Vec<u8>, b: &BatchAnswer) {
    out.extend_from_slice(&b.generation.to_le_bytes());
    put_source(out, &b.source);
    out.extend_from_slice(&b.lag.to_le_bytes());
    put_outcome_opt(out, &b.outcome);
    match &b.segment_outcomes {
        None => out.push(0),
        Some(outcomes) => {
            out.push(1);
            out.extend_from_slice(&(outcomes.len() as u32).to_le_bytes());
            for o in outcomes {
                put_outcome(out, o);
            }
        }
    }
    out.extend_from_slice(&(b.values.len() as u32).to_le_bytes());
    for (v, cached) in b.values.iter().zip(&b.cached) {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
        out.push(u8::from(*cached));
    }
}

fn put_legacy_stats(out: &mut Vec<u8>, s: &ServerStats) {
    put_str(out, &s.column);
    for v in [
        s.n,
        s.generation,
        s.updates,
        s.rebuilds,
        s.failed_rebuilds,
        s.updates_since_rebuild,
        s.cache_hits,
        s.cache_misses,
        s.cache_invalidations,
        s.refused,
        s.connections,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes a response into its checksummed byte representation, in the
/// frame dialect a **pre-header (PR-9) client** understands: stats use
/// the legacy frame (the overload/latency meters are dropped). The one
/// exception is a degraded batch answer (`rung` set): it has no legacy
/// representation and always takes the degraded frame type — servers
/// only produce one in reply to a headered request, so an old client
/// can never receive it.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Pong => frame(TYPE_PONG, |_| {}),
        Response::Estimates(b) => match b.rung {
            None => frame(TYPE_ESTIMATES, |out| put_batch_answer(out, b)),
            Some(rung) => frame(TYPE_ESTIMATES_DEGRADED, |out| {
                out.push(rung.tag());
                put_batch_answer(out, b);
            }),
        },
        Response::Updated { applied, scheduled } => frame(TYPE_UPDATED, |out| {
            out.extend_from_slice(&applied.to_le_bytes());
            out.extend_from_slice(&scheduled.to_le_bytes());
        }),
        Response::Stats(s) => frame(TYPE_STATS_RESP, |out| put_legacy_stats(out, s)),
        Response::Error(e) => frame(TYPE_ERROR, |out| put_error(out, e)),
    }
}

/// Encodes a response in the extended dialect for a client that sent a
/// headered request: stats carry the overload/latency meters
/// (`TYPE_STATS_RESP2`). Every other variant encodes exactly as
/// [`encode_response`]. Servers pick the dialect per request, so a
/// pre-header client only ever sees frame types it can decode.
pub fn encode_response_extended(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Stats(s) => frame(TYPE_STATS_RESP2, |out| {
            put_legacy_stats(out, s);
            for v in s.extended_fields() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }),
        other => encode_response(other),
    }
}

fn read_batch_answer(r: &mut Reader<'_>, rung: Option<DegradeRung>) -> Result<BatchAnswer> {
    let generation = r.u64()?;
    let source = read_source(r)?;
    let lag = r.u64()?;
    let outcome = read_outcome_opt(r)?;
    let segment_outcomes = match r.u8()? {
        0 => None,
        1 => {
            let count = r.count(1)?;
            Some(
                (0..count)
                    .map(|_| read_outcome(r))
                    .collect::<Result<Vec<_>>>()?,
            )
        }
        other => return Err(corrupt(format!("bad segment-outcomes flag {other}"))),
    };
    let count = r.count(9)?;
    let mut values = Vec::with_capacity(count);
    let mut cached = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(r.f64()?);
        cached.push(match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(corrupt(format!("bad cached flag {other}"))),
        });
    }
    Ok(BatchAnswer {
        generation,
        source,
        lag,
        outcome,
        segment_outcomes,
        values,
        cached,
        rung,
    })
}

fn read_legacy_stats(r: &mut Reader<'_>) -> Result<ServerStats> {
    let column = r.str()?;
    let mut next = || r.u64();
    Ok(ServerStats {
        column,
        n: next()?,
        generation: next()?,
        updates: next()?,
        rebuilds: next()?,
        failed_rebuilds: next()?,
        updates_since_rebuild: next()?,
        cache_hits: next()?,
        cache_misses: next()?,
        cache_invalidations: next()?,
        refused: next()?,
        connections: next()?,
        ..ServerStats::default()
    })
}

/// Decodes and validates one response frame (either dialect: legacy
/// PR-9 frames and the extended degraded-answer / extended-stats
/// frames all decode).
pub fn decode_response(bytes: &[u8]) -> Result<Response> {
    let (kind, mut r) = open_frame(bytes)?;
    let resp = match kind {
        TYPE_PONG => Response::Pong,
        TYPE_ESTIMATES => Response::Estimates(read_batch_answer(&mut r, None)?),
        TYPE_ESTIMATES_DEGRADED => {
            let rung = DegradeRung::from_tag(r.u8()?)?;
            Response::Estimates(read_batch_answer(&mut r, Some(rung))?)
        }
        TYPE_UPDATED => Response::Updated {
            applied: r.u64()?,
            scheduled: r.u64()?,
        },
        TYPE_STATS_RESP => Response::Stats(read_legacy_stats(&mut r)?),
        TYPE_STATS_RESP2 => {
            let mut stats = read_legacy_stats(&mut r)?;
            stats.deadline_sheds = r.u64()?;
            stats.degraded = r.u64()?;
            stats.tenants = r.u64()?;
            stats.estimate_p50_us = r.u64()?;
            stats.estimate_p99_us = r.u64()?;
            stats.update_p50_us = r.u64()?;
            stats.update_p99_us = r.u64()?;
            Response::Stats(stats)
        }
        TYPE_ERROR => Response::Error(read_error(&mut r)?),
        other => return Err(corrupt(format!("unknown response type {other}"))),
    };
    r.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exit::exit_code;

    fn sample_outcome() -> BuildOutcome {
        BuildOutcome {
            requested: "opt-a".into(),
            used: "sap0".into(),
            tier: 2,
            attempts: vec![BuildAttempt {
                method: "opt-a".into(),
                error: "deadline exceeded after 9 ms".into(),
                elapsed_ms: 9,
                cells: 1234,
            }],
            elapsed_ms: 12,
            cells: 2048,
        }
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::EstimateBatch(QueryBatch::new(
                "price",
                vec![
                    RangeQuery::new(0, 5).unwrap(),
                    RangeQuery::point(3),
                    RangeQuery::new(2, 1023).unwrap(),
                ],
            )),
            Request::Update {
                column: "price".into(),
                deltas: vec![(0, 5), (1023, -3), (7, 0)],
            },
            Request::Stats {
                column: "price".into(),
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Estimates(BatchAnswer {
                generation: 42,
                source: AnswerSource::FallbackGeneration { generation: 41 },
                lag: 7,
                outcome: Some(sample_outcome()),
                segment_outcomes: Some(vec![sample_outcome(), BuildOutcome::direct("sap0", 1, 2)]),
                values: vec![1.5, -0.25, 1e12],
                cached: vec![true, false, true],
                rung: None,
            }),
            Response::Estimates(BatchAnswer {
                generation: 0,
                source: AnswerSource::Primary,
                lag: 0,
                outcome: None,
                segment_outcomes: None,
                values: vec![],
                cached: vec![],
                rung: None,
            }),
            Response::Updated {
                applied: 100,
                scheduled: 3,
            },
            Response::Stats(ServerStats {
                column: "price".into(),
                n: 1024,
                generation: 9,
                updates: 5000,
                rebuilds: 12,
                failed_rebuilds: 1,
                updates_since_rebuild: 88,
                cache_hits: 700,
                cache_misses: 300,
                cache_invalidations: 12,
                refused: 4,
                connections: 2,
                ..ServerStats::default()
            }),
            Response::Error(SynopticError::ServerOverloaded {
                what: "rebuild lag".into(),
                observed: 100,
                limit: 64,
            }),
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn every_error_variant_round_trips_with_its_exit_code() {
        let errors = vec![
            SynopticError::EmptyInput,
            SynopticError::IndexOutOfBounds { index: 9, n: 4 },
            SynopticError::InvalidRange { lo: 3, hi: 1 },
            SynopticError::InvalidBucketCount { buckets: 0, n: 10 },
            SynopticError::InvalidBoundaries("b".into()),
            SynopticError::BudgetTooSmall {
                words: 1,
                minimum: 2,
            },
            SynopticError::InvalidParameter("eps".into()),
            SynopticError::SingularSystem("Q".into()),
            SynopticError::Overflow,
            SynopticError::CorruptSynopsis {
                context: "c".into(),
                detail: "crc".into(),
            },
            SynopticError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
            SynopticError::Io {
                path: "/x".into(),
                detail: "denied".into(),
            },
            SynopticError::Cancelled,
            SynopticError::DeadlineExceeded { elapsed_ms: 42 },
            SynopticError::CellBudgetExceeded {
                used: 101,
                limit: 100,
            },
            SynopticError::BuildPanicked {
                detail: "oor".into(),
            },
            SynopticError::WorkerUnavailable {
                column: "price".into(),
            },
            SynopticError::WalGenerationMismatch {
                wal_generation: 4,
                snapshot_generation: 2,
            },
            SynopticError::CorruptJournal {
                context: "w".into(),
                detail: "crc".into(),
            },
            SynopticError::ReplicationDivergence {
                context: "c".into(),
                detail: "gap".into(),
            },
            SynopticError::StaleLeaderTerm {
                stale_term: 3,
                current_term: 5,
            },
            SynopticError::ReplicationLagExceeded {
                column: "price".into(),
                lag: 12,
                max_lag: 8,
            },
            SynopticError::ServerOverloaded {
                what: "connection quota".into(),
                observed: 1001,
                limit: 1000,
            },
        ];
        for err in errors {
            let bytes = encode_response(&Response::Error(err.clone()));
            let Response::Error(back) = decode_response(&bytes).unwrap() else {
                panic!("error response decoded to a non-error");
            };
            assert_eq!(back, err, "error must round-trip structurally");
            assert_eq!(
                exit_code(&back),
                exit_code(&err),
                "wire transit must preserve the exit code of {err}"
            );
        }
    }

    /// A string of 64 KiB or more cannot be length-prefixed by a `u16`;
    /// it must truncate (at a char boundary) rather than wrap the prefix
    /// and corrupt the frame — the peer still gets a decodable error
    /// carrying as much of the text as fits.
    #[test]
    fn over_long_strings_truncate_instead_of_corrupting_the_frame() {
        // 65_534 ASCII bytes then multibyte chars: the u16::MAX cut at
        // byte 65_535 lands mid-char and must back off to a boundary.
        let long = "a".repeat(65_534) + &"é".repeat(100);
        let bytes = encode_response(&Response::Error(SynopticError::InvalidParameter(
            long.clone(),
        )));
        let Response::Error(SynopticError::InvalidParameter(back)) =
            decode_response(&bytes).unwrap()
        else {
            panic!("over-long error text must still decode as the same variant");
        };
        assert!(back.len() <= usize::from(u16::MAX));
        assert!(long.starts_with(&back), "truncation keeps a prefix");
        assert_eq!(back.len(), 65_534, "the cut backs off to a char boundary");
    }

    #[test]
    fn batch_answer_expands_to_per_range_envelopes() {
        let batch = BatchAnswer {
            generation: 5,
            source: AnswerSource::Primary,
            lag: 2,
            outcome: Some(sample_outcome()),
            segment_outcomes: None,
            values: vec![1.0, 2.0],
            cached: vec![false, true],
            rung: None,
        };
        let envelopes = batch.envelopes();
        assert_eq!(envelopes.len(), 2);
        for (env, v) in envelopes.iter().zip([1.0, 2.0]) {
            assert_eq!(env.value, v);
            assert_eq!(env.generation, 5);
            assert_eq!(env.lag, 2);
            assert_eq!(env.outcome.as_ref().unwrap().used, "sap0");
        }
    }

    fn sample_headers() -> Vec<RequestHeader> {
        vec![
            RequestHeader {
                deadline_ms: Some(250),
                tenant: Some("analytics".into()),
                degrade_ok: true,
            },
            RequestHeader {
                deadline_ms: Some(0),
                tenant: None,
                degrade_ok: false,
            },
            RequestHeader {
                deadline_ms: None,
                tenant: Some("ingest".into()),
                degrade_ok: false,
            },
            RequestHeader {
                deadline_ms: None,
                tenant: None,
                degrade_ok: true,
            },
        ]
    }

    #[test]
    fn headered_requests_round_trip_with_their_header() {
        for header in sample_headers() {
            for req in sample_requests() {
                let bytes = encode_request_with(&header, &req);
                let (back_header, back_req) = decode_request_with(&bytes).unwrap();
                assert_eq!(back_header, header);
                assert_eq!(back_req, req);
                // The header-blind decoder still accepts the frame.
                assert_eq!(decode_request(&bytes).unwrap(), req);
            }
        }
    }

    /// The back-compat contract, from the encoding side: an empty header
    /// adds nothing — the frame is byte-for-byte what a pre-header client
    /// sends, and decodes everywhere a pre-header frame does.
    #[test]
    fn an_empty_header_encodes_to_the_unheadered_frame_bytes() {
        for req in sample_requests() {
            let bare = encode_request(&req);
            let headered = encode_request_with(&RequestHeader::default(), &req);
            assert_eq!(bare, headered, "empty header must not change the bytes");
            let (header, back) = decode_request_with(&bare).unwrap();
            assert!(header.is_empty());
            assert_eq!(back, req);
        }
    }

    #[test]
    fn degraded_answers_round_trip_their_rung() {
        for rung in [
            DegradeRung::CacheHit,
            DegradeRung::LastGood,
            DegradeRung::Naive,
        ] {
            let resp = Response::Estimates(BatchAnswer {
                generation: 7,
                source: AnswerSource::FallbackNaive,
                lag: 90,
                outcome: None,
                segment_outcomes: None,
                values: vec![12.5],
                cached: vec![false],
                rung: Some(rung),
            });
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn extended_stats_round_trip_and_the_legacy_dialect_drops_them() {
        let stats = ServerStats {
            column: "price".into(),
            n: 64,
            generation: 3,
            refused: 4,
            deadline_sheds: 11,
            degraded: 6,
            tenants: 3,
            estimate_p50_us: 128,
            estimate_p99_us: 4096,
            update_p50_us: 64,
            update_p99_us: 512,
            ..ServerStats::default()
        };
        let resp = Response::Stats(stats.clone());
        // Extended dialect: everything survives.
        assert_eq!(
            decode_response(&encode_response_extended(&resp)).unwrap(),
            resp
        );
        // Legacy dialect: the PR-9 fields survive, the meters zero out —
        // exactly what a pre-header client would have seen.
        let Response::Stats(legacy) = decode_response(&encode_response(&resp)).unwrap() else {
            panic!("stats frame decoded to a non-stats response");
        };
        assert_eq!(legacy.column, stats.column);
        assert_eq!(legacy.refused, stats.refused);
        assert_eq!(legacy.extended_fields(), [0; 7]);
        // Non-stats responses are dialect-independent.
        assert_eq!(
            encode_response_extended(&Response::Pong),
            encode_response(&Response::Pong)
        );
    }

    /// Golden PR-9 frames, captured byte-for-byte from the codec **before**
    /// the header change. Every one must still decode to the same value,
    /// and re-encode to the identical bytes — the proof that a pre-PR-10
    /// peer's wire traffic is untouched by this upgrade.
    #[test]
    fn pr9_golden_frames_decode_and_re_encode_identically() {
        fn unhex(s: &str) -> Vec<u8> {
            (0..s.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
                .collect()
        }
        let golden_requests = [
            ("53515031015533c617", Request::Ping),
            (
                "53515031030500707269636502000000020000000000000009000000000000000400000000000000040000000000000040e7a4a5",
                Request::EstimateBatch(QueryBatch::new(
                    "price",
                    vec![RangeQuery::new(2, 9).unwrap(), RangeQuery::point(4)],
                )),
            ),
            (
                "53515031050500707269636502000000010000000000000005000000000000000900000000000000fdfffffffffffffff99703a0",
                Request::Update {
                    column: "price".into(),
                    deltas: vec![(1, 5), (9, -3)],
                },
            ),
            (
                "535150310705007072696365d4ed495d",
                Request::Stats {
                    column: "price".into(),
                },
            ),
        ];
        for (hex, expected) in golden_requests {
            let bytes = unhex(hex);
            let (header, req) = decode_request_with(&bytes).unwrap();
            assert!(header.is_empty(), "golden frames carry no header");
            assert_eq!(req, expected);
            assert_eq!(encode_request(&req), bytes, "re-encode must be identical");
        }
        let golden_responses = [
            ("5351503102ef62cf8e", Response::Pong),
            (
                "53515031040300000000000000000200000000000000000002000000000000000000f83f00000000000000004001a177c802",
                Response::Estimates(BatchAnswer {
                    generation: 3,
                    source: AnswerSource::Primary,
                    lag: 2,
                    outcome: None,
                    segment_outcomes: None,
                    values: vec![1.5, 2.0],
                    cached: vec![false, true],
                    rung: None,
                }),
            ),
            (
                "5351503106020000000000000001000000000000001e3f851b",
                Response::Updated {
                    applied: 2,
                    scheduled: 1,
                },
            ),
            (
                "535150310805007072696365400000000000000003000000000000000a00000000000000020000000000000000000000000000000400000000000000070000000000000005000000000000000100000000000000000000000000000002000000000000003a02f465",
                Response::Stats(ServerStats {
                    column: "price".into(),
                    n: 64,
                    generation: 3,
                    updates: 10,
                    rebuilds: 2,
                    failed_rebuilds: 0,
                    updates_since_rebuild: 4,
                    cache_hits: 7,
                    cache_misses: 5,
                    cache_invalidations: 1,
                    refused: 0,
                    connections: 2,
                    ..ServerStats::default()
                }),
            ),
            (
                "5351503109170b00717565756520646570746809000000000000000800000000000000b827e68f",
                Response::Error(SynopticError::ServerOverloaded {
                    what: "queue depth".into(),
                    observed: 9,
                    limit: 8,
                }),
            ),
        ];
        for (hex, expected) in golden_responses {
            let bytes = unhex(hex);
            assert_eq!(decode_response(&bytes).unwrap(), expected);
            assert_eq!(
                encode_response(&expected),
                bytes,
                "re-encode must be identical"
            );
        }
    }

    /// The repl wire discipline, applied here: flip any byte or truncate
    /// at any length and the frame must refuse to decode — never a
    /// partial or garbled result. Headered requests and extended
    /// responses are held to the same bar as the legacy frames.
    #[test]
    fn corruption_anywhere_is_refused() {
        let header = RequestHeader {
            deadline_ms: Some(250),
            tenant: Some("analytics".into()),
            degrade_ok: true,
        };
        let frames: Vec<Vec<u8>> = sample_requests()
            .iter()
            .map(encode_request)
            .chain(
                sample_requests()
                    .iter()
                    .map(|r| encode_request_with(&header, r)),
            )
            .chain(sample_responses().iter().map(|r| encode_response(r)))
            .chain(std::iter::once(encode_response_extended(&Response::Stats(
                ServerStats {
                    column: "price".into(),
                    estimate_p99_us: 4096,
                    ..ServerStats::default()
                },
            ))))
            .collect();
        for bytes in frames {
            let decodes = |b: &[u8]| decode_request(b).is_ok() || decode_response(b).is_ok();
            assert!(decodes(&bytes), "pristine frame must decode");
            for i in 0..bytes.len() {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[i] ^= 1 << bit;
                    assert!(
                        !decodes(&bad),
                        "flipping bit {bit} of byte {i} must refuse the frame"
                    );
                }
            }
            for len in 0..bytes.len() {
                assert!(!decodes(&bytes[..len]), "truncation at {len} must refuse");
            }
        }
    }
}
