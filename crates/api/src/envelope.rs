//! Answers that carry their provenance, and the one trait that produces
//! them.
//!
//! Before this crate existed the workspace had three estimate entry
//! points with three shapes: `ColumnHandle::estimate` returned a bare
//! `f64` (dropping the serving generation and build outcome),
//! `Follower::estimate` returned `Result<f64>` (dropping the observed
//! lag that justified the answer), and `DurableCatalog::estimate`
//! returned a `SourcedEstimate` (dropping the manifest generation).
//! [`Queryable`] unifies them: every answer is an [`AnswerEnvelope`] and
//! no boundary is allowed to strip the provenance off.

use std::fmt;

use synoptic_catalog::{DurableCatalog, Storage};
use synoptic_core::{AnswerSource, BuildOutcome, RangeQuery, Result};

/// An estimate plus everything needed to judge it: where the answer came
/// from, which published snapshot answered, how stale it was, and how the
/// synopsis that answered was built.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerEnvelope {
    /// The estimated range sum.
    pub value: f64,
    /// Which synopsis answered (primary, an older generation, or the
    /// naive fallback) — the serving-side half of the provenance.
    pub source: AnswerSource,
    /// The publication generation of the snapshot that answered: the
    /// hot-swap generation for pool columns and batch servers, the
    /// manifest generation for catalog reads, the applied LSN for
    /// replication followers. Two answers with equal generations from
    /// the same responder came from the same published snapshot.
    pub generation: u64,
    /// How stale the answerer was: records applied-but-not-rebuilt for a
    /// maintained column, records behind the leader for a follower, `0`
    /// for a fresh primary.
    pub lag: u64,
    /// Provenance of the build that produced the answering synopsis
    /// (which anytime rung served and why), when the answerer tracks it.
    pub outcome: Option<BuildOutcome>,
    /// Per-segment build provenance for segmented columns, in segment
    /// order; `None` for monolithic answerers.
    pub segment_outcomes: Option<Vec<BuildOutcome>>,
}

impl AnswerEnvelope {
    /// A fresh primary answer with no build provenance attached.
    pub fn primary(value: f64, generation: u64) -> Self {
        Self {
            value,
            source: AnswerSource::Primary,
            generation,
            lag: 0,
            outcome: None,
            segment_outcomes: None,
        }
    }

    /// `true` when anything about this answer is weaker than asked for:
    /// a non-primary source or a build that fell down the anytime ladder.
    pub fn is_degraded(&self) -> bool {
        self.source.is_degraded() || self.outcome.as_ref().is_some_and(BuildOutcome::is_degraded)
    }
}

impl fmt::Display for AnswerEnvelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} (source {}, generation {}, lag {})",
            self.value, self.source, self.generation, self.lag
        )?;
        if let Some(outcome) = &self.outcome {
            write!(f, " — {outcome}")?;
        }
        Ok(())
    }
}

/// The one estimate entry point. Implementors answer a range-sum query
/// for a named column and *must* return full provenance — or refuse
/// loudly (lag bound exceeded, unknown column, out-of-bounds range).
pub trait Queryable {
    /// Answers `q` against `column`, or refuses with provenance.
    fn query(&self, column: &str, q: RangeQuery) -> Result<AnswerEnvelope>;
}

/// Every `&Q` is as queryable as `Q` itself.
impl<Q: Queryable + ?Sized> Queryable for &Q {
    fn query(&self, column: &str, q: RangeQuery) -> Result<AnswerEnvelope> {
        (**self).query(column, q)
    }
}

/// Catalog reads answer through the degraded-mode fallback chain; the
/// envelope carries the fallback source and the manifest generation that
/// served.
impl<S: Storage> Queryable for DurableCatalog<S> {
    fn query(&self, column: &str, q: RangeQuery) -> Result<AnswerEnvelope> {
        let answer = self.estimate(column, q)?;
        let generation = self.effective_manifest()?.generation;
        Ok(AnswerEnvelope {
            value: answer.value,
            source: answer.source,
            generation,
            lag: 0,
            outcome: None,
            segment_outcomes: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_catalog::{Catalog, ColumnEntry, FsStorage, PersistentSynopsis};

    #[test]
    fn degradation_is_visible_from_source_and_outcome() {
        let mut env = AnswerEnvelope::primary(4.0, 7);
        assert!(!env.is_degraded());
        env.outcome = Some(BuildOutcome::direct("sap0", 1, 10));
        assert!(!env.is_degraded());
        env.source = AnswerSource::FallbackNaive;
        assert!(env.is_degraded());
        let mut degraded_build = AnswerEnvelope::primary(4.0, 7);
        degraded_build.outcome = Some(BuildOutcome {
            requested: "opt-a".into(),
            used: "sap0".into(),
            tier: 2,
            attempts: Vec::new(),
            elapsed_ms: 3,
            cells: 9,
        });
        assert!(degraded_build.is_degraded());
    }

    #[test]
    fn display_carries_the_provenance() {
        let env = AnswerEnvelope::primary(12.5, 3);
        let text = env.to_string();
        assert!(text.contains("12.50"), "{text}");
        assert!(text.contains("generation 3"), "{text}");
    }

    #[test]
    fn durable_catalog_answers_with_manifest_generation() {
        let dir = std::env::temp_dir().join(format!("synoptic-api-env-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DurableCatalog::open(&dir, FsStorage::new()).unwrap();
        let values = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
        let mut catalog = Catalog::new();
        catalog.insert(
            "c",
            ColumnEntry {
                n: values.len(),
                total_rows: values.iter().sum(),
                synopsis: PersistentSynopsis::from_frequencies(&values),
            },
        );
        let generation = store.save(&catalog).unwrap();
        let env = store.query("c", RangeQuery::new(1, 3).unwrap()).unwrap();
        assert_eq!(env.generation, generation);
        assert_eq!(env.source, AnswerSource::Primary);
        assert_eq!(env.value, (1 + 4 + 1) as f64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
