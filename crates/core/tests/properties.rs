//! Randomized property tests for the core data structures and evaluators,
//! driven by the in-repo seeded [`Rng`] so they run fully offline and are
//! reproducible from the printed seed.

use synoptic_core::rng::Rng;
use synoptic_core::sse::{
    sse_brute, sse_endpoint_decomposed, sse_two_function, sse_value_histogram,
};
use synoptic_core::window::{WeightedPointOracle, WindowOracle};
use synoptic_core::{
    Bucketing, DataArray, OptAHistogram, PrefixSums, RangeEstimator, RangeQuery, RoundingMode,
    Sap0Histogram, Sap1Histogram, ValueHistogram,
};

const CASES: u64 = 64;

/// A random non-empty data array of bounded length and magnitude.
fn rand_values(rng: &mut Rng) -> Vec<i64> {
    let n = rng.usize_in(1, 24);
    (0..n).map(|_| rng.i64_in(-50, 199)).collect()
}

/// A random valid bucketing of a domain of size `n`.
fn rand_bucketing(rng: &mut Rng, n: usize) -> Bucketing {
    let mut starts = vec![0usize];
    for i in 1..n {
        if rng.bool() {
            starts.push(i);
        }
    }
    Bucketing::new(n, starts).expect("constructed starts are valid")
}

#[test]
fn prefix_sums_match_naive_summation() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x1000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        for a in 0..vals.len() {
            for b in a..vals.len() {
                let naive: i128 = vals[a..=b].iter().map(|&v| v as i128).sum();
                assert_eq!(ps.range_sum(a, b), naive, "case {case}");
            }
        }
    }
}

#[test]
fn value_histogram_closed_form_equals_brute() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x2000 + case);
        let vals = rand_values(&mut rng);
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let b = rand_bucketing(&mut rng, n);
        let h = ValueHistogram::with_averages(b, &ps, "p").unwrap();
        let brute = sse_brute(&h, &ps);
        let fast = sse_value_histogram(h.xprefix(), &ps);
        assert!(
            (brute - fast).abs() <= 1e-6 * (1.0 + brute),
            "case {case}: brute {brute} vs fast {fast}"
        );
    }
}

#[test]
fn window_oracle_intra_matches_brute() {
    for case in 0..CASES / 4 {
        let mut rng = Rng::new(0x3000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        let o = WindowOracle::new(&ps);
        let n = vals.len();
        for l in 0..n {
            for r in l..n {
                let m = ps.range_sum(l, r) as f64 / (r - l + 1) as f64;
                let mut brute = 0.0;
                for a in l..=r {
                    for b in a..=r {
                        let d = ps.range_sum(a, b) as f64 - (b - a + 1) as f64 * m;
                        brute += d * d;
                    }
                }
                let fast = o.intra_avg_sse(l, r);
                assert!(
                    (fast - brute).abs() <= 1e-6 * (1.0 + brute),
                    "case {case}: window ({l},{r})"
                );
            }
        }
    }
}

#[test]
fn suffix_errors_sum_to_zero_under_optimal_sap0() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x4000 + case);
        let vals = rand_values(&mut rng);
        if vals.len() < 2 {
            continue;
        }
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(n, vec![0, n / 2]).unwrap();
        let h = Sap0Histogram::optimal_values(b.clone(), &ps).unwrap();
        for bi in 0..b.num_buckets() {
            let (l, r) = (b.left(bi), b.right(bi));
            let su: f64 = (l..=r)
                .map(|a| ps.range_sum(a, r) as f64 - h.suff()[bi])
                .sum();
            assert!(su.abs() < 1e-6, "case {case}: bucket {bi} suffix sum {su}");
        }
    }
}

#[test]
fn sap1_never_worse_than_sap0_at_fixed_boundaries() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5000 + case);
        let vals = rand_values(&mut rng);
        if vals.len() < 3 {
            continue;
        }
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(n, vec![0, n / 3 + 1]).unwrap();
        let s0 = sse_brute(&Sap0Histogram::optimal_values(b.clone(), &ps).unwrap(), &ps);
        let s1 = sse_brute(&Sap1Histogram::optimal_values(b, &ps).unwrap(), &ps);
        // SAP1's linear fit subsumes SAP0's constant fit per bucket, and the
        // cross terms vanish for both, so SAP1 ≤ SAP0 at fixed boundaries.
        assert!(
            s1 <= s0 + 1e-6 * (1.0 + s0),
            "case {case}: SAP1 {s1} vs SAP0 {s0}"
        );
    }
}

#[test]
fn rounded_opta_estimates_are_integral_and_close() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x6000 + case);
        let n = rng.usize_in(2, 20);
        let vals: Vec<i64> = (0..n).map(|_| rng.i64_in(0, 199)).collect();
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(n, vec![0, n / 2]).unwrap();
        let hr = OptAHistogram::new(b.clone(), &ps, RoundingMode::NearestInt).unwrap();
        let hu = OptAHistogram::new(b, &ps, RoundingMode::None).unwrap();
        for q in RangeQuery::all(n) {
            let e = hr.estimate(q);
            assert_eq!(e, e.round(), "case {case}: non-integral estimate at {q:?}");
            assert!((e - hu.estimate(q)).abs() <= 1.0 + 1e-9, "case {case}");
        }
    }
}

#[test]
fn endpoint_decomposed_evaluator_is_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x7000 + case);
        let vals = rand_values(&mut rng);
        if vals.len() < 4 {
            continue;
        }
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let bks = Bucketing::new(n, vec![0, n / 4 + 1, n / 2 + 1]).unwrap();
        let oracle = WindowOracle::new(&ps);
        let h = OptAHistogram::new(bks.clone(), &ps, RoundingMode::None).unwrap();
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut intra = 0.0;
        for bi in 0..bks.num_buckets() {
            let (l, r) = (bks.left(bi), bks.right(bi));
            let m = oracle.avg(l, r);
            for a in l..=r {
                u[a] = ps.range_sum(a, r) as f64 - (r - a + 1) as f64 * m;
                v[a] = ps.range_sum(l, a) as f64 - (a - l + 1) as f64 * m;
            }
            intra += oracle.intra_avg_sse(l, r);
        }
        let fast = sse_endpoint_decomposed(&u, &v, &bks, intra);
        let brute = sse_brute(&h, &ps);
        assert!(
            (fast - brute).abs() <= 1e-6 * (1.0 + brute),
            "case {case}: fast {fast} vs brute {brute}"
        );
    }
}

#[test]
fn two_function_evaluator_is_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x8000 + case);
        let n = rng.usize_in(1, 16);
        let e: Vec<f64> = (0..n).map(|_| rng.f64_in(-100.0, 100.0)).collect();
        let d: Vec<f64> = (0..n).map(|_| rng.f64_in(-4.0, 4.0)).collect();
        let mut direct = 0.0;
        for (b, &eb) in e.iter().enumerate() {
            for &da in &d[..=b] {
                let x: f64 = eb - da;
                direct += x * x;
            }
        }
        let fast = sse_two_function(&e, &d);
        assert!(
            (fast - direct).abs() <= 1e-6 * (1.0 + direct),
            "case {case}: fast {fast} vs direct {direct}"
        );
    }
}

#[test]
fn weighted_oracle_cost_is_nonnegative_and_additive_at_split() {
    for case in 0..CASES / 2 {
        let mut rng = Rng::new(0x9000 + case);
        let vals = rand_values(&mut rng);
        let o = WeightedPointOracle::range_inclusion(&vals);
        let n = vals.len();
        for l in 0..n {
            for r in l..n {
                assert!(o.cost(l, r) >= 0.0, "case {case}");
                // Splitting a window cannot increase total cost.
                if r > l {
                    let mid = (l + r) / 2;
                    assert!(
                        o.cost(l, mid) + o.cost(mid + 1, r) <= o.cost(l, r) + 1e-6,
                        "case {case}: split ({l},{r}) at {mid}"
                    );
                }
            }
        }
    }
}

#[test]
fn any_bucketing_gives_finite_nonneg_sse() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xA000 + case);
        let vals = rand_values(&mut rng);
        let b = rand_bucketing(&mut rng, vals.len());
        let ps = PrefixSums::from_values(&vals);
        let h = ValueHistogram::with_averages(b, &ps, "x").unwrap();
        let sse = sse_value_histogram(h.xprefix(), &ps);
        assert!(sse.is_finite() && sse >= 0.0, "case {case}: sse {sse}");
    }
}

#[test]
fn data_array_total_matches_prefix_total() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xB000 + case);
        let vals = rand_values(&mut rng);
        let d = DataArray::new(vals).unwrap();
        assert_eq!(d.total(), d.prefix_sums().total(), "case {case}");
    }
}
