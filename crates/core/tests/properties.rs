//! Property-based tests for the core data structures and evaluators.

use proptest::prelude::*;
use synoptic_core::sse::{
    sse_brute, sse_endpoint_decomposed, sse_two_function, sse_value_histogram,
};
use synoptic_core::window::{WeightedPointOracle, WindowOracle};
use synoptic_core::{
    Bucketing, DataArray, OptAHistogram, PrefixSums, RangeEstimator, RangeQuery, RoundingMode,
    Sap0Histogram, Sap1Histogram, ValueHistogram,
};

/// A random non-empty data array of bounded length and magnitude.
fn arb_values() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-50i64..200, 1..24)
}

/// A random valid bucketing of a domain of size `n`.
fn arb_bucketing(n: usize) -> impl Strategy<Value = Bucketing> {
    prop::collection::vec(any::<bool>(), n - 1).prop_map(move |cuts| {
        let mut starts = vec![0usize];
        for (i, &c) in cuts.iter().enumerate() {
            if c {
                starts.push(i + 1);
            }
        }
        Bucketing::new(n, starts).expect("constructed starts are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prefix_sums_match_naive_summation(vals in arb_values()) {
        let ps = PrefixSums::from_values(&vals);
        for a in 0..vals.len() {
            for b in a..vals.len() {
                let naive: i128 = vals[a..=b].iter().map(|&v| v as i128).sum();
                prop_assert_eq!(ps.range_sum(a, b), naive);
            }
        }
    }

    #[test]
    fn value_histogram_closed_form_equals_brute((vals, seed) in (arb_values(), any::<u64>())) {
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        // Derive a bucketing deterministically from the seed.
        let mut starts = vec![0usize];
        let mut s = seed;
        for i in 1..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s % 3 == 0 {
                starts.push(i);
            }
        }
        let b = Bucketing::new(n, starts).unwrap();
        let h = ValueHistogram::with_averages(b, &ps, "p").unwrap();
        let brute = sse_brute(&h, &ps);
        let fast = sse_value_histogram(h.xprefix(), &ps);
        prop_assert!((brute - fast).abs() <= 1e-6 * (1.0 + brute),
            "brute {} vs fast {}", brute, fast);
    }

    #[test]
    fn window_oracle_intra_matches_brute(vals in arb_values()) {
        let ps = PrefixSums::from_values(&vals);
        let o = WindowOracle::new(&ps);
        let n = vals.len();
        for l in 0..n {
            for r in l..n {
                let m = ps.range_sum(l, r) as f64 / (r - l + 1) as f64;
                let mut brute = 0.0;
                for a in l..=r {
                    for b in a..=r {
                        let d = ps.range_sum(a, b) as f64 - (b - a + 1) as f64 * m;
                        brute += d * d;
                    }
                }
                let fast = o.intra_avg_sse(l, r);
                prop_assert!((fast - brute).abs() <= 1e-6 * (1.0 + brute));
            }
        }
    }

    #[test]
    fn suffix_and_prefix_errors_sum_to_zero_under_optimal_sap0(vals in arb_values()) {
        prop_assume!(vals.len() >= 2);
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(n, vec![0, n / 2]).unwrap();
        let h = Sap0Histogram::optimal_values(b.clone(), &ps).unwrap();
        for bi in 0..b.num_buckets() {
            let (l, r) = (b.left(bi), b.right(bi));
            let su: f64 = (l..=r).map(|a| ps.range_sum(a, r) as f64 - h.suff()[bi]).sum();
            prop_assert!(su.abs() < 1e-6, "bucket {} suffix sum {}", bi, su);
        }
    }

    #[test]
    fn sap1_never_worse_than_sap0_at_fixed_boundaries(vals in arb_values()) {
        prop_assume!(vals.len() >= 3);
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(n, vec![0, n / 3 + 1]).unwrap();
        let s0 = sse_brute(&Sap0Histogram::optimal_values(b.clone(), &ps).unwrap(), &ps);
        let s1 = sse_brute(&Sap1Histogram::optimal_values(b, &ps).unwrap(), &ps);
        // SAP1's linear fit subsumes SAP0's constant fit per bucket, and the
        // cross terms vanish for both, so SAP1 ≤ SAP0 at fixed boundaries.
        prop_assert!(s1 <= s0 + 1e-6 * (1.0 + s0), "SAP1 {} vs SAP0 {}", s1, s0);
    }

    #[test]
    fn rounded_opta_estimates_are_integral_and_close(vals in prop::collection::vec(0i64..200, 2..20)) {
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(n, vec![0, n / 2]).unwrap();
        let hr = OptAHistogram::new(b.clone(), &ps, RoundingMode::NearestInt).unwrap();
        let hu = OptAHistogram::new(b, &ps, RoundingMode::None).unwrap();
        for q in RangeQuery::all(n) {
            let e = hr.estimate(q);
            prop_assert_eq!(e, e.round());
            prop_assert!((e - hu.estimate(q)).abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn endpoint_decomposed_evaluator_is_exact(vals in arb_values()) {
        prop_assume!(vals.len() >= 4);
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let bks = Bucketing::new(n, vec![0, n / 4 + 1, n / 2 + 1]).unwrap();
        let oracle = WindowOracle::new(&ps);
        let h = OptAHistogram::new(bks.clone(), &ps, RoundingMode::None).unwrap();
        let mut u = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut intra = 0.0;
        for bi in 0..bks.num_buckets() {
            let (l, r) = (bks.left(bi), bks.right(bi));
            let m = oracle.avg(l, r);
            for a in l..=r {
                u[a] = ps.range_sum(a, r) as f64 - (r - a + 1) as f64 * m;
                v[a] = ps.range_sum(l, a) as f64 - (a - l + 1) as f64 * m;
            }
            intra += oracle.intra_avg_sse(l, r);
        }
        let fast = sse_endpoint_decomposed(&u, &v, &bks, intra);
        let brute = sse_brute(&h, &ps);
        prop_assert!((fast - brute).abs() <= 1e-6 * (1.0 + brute));
    }

    #[test]
    fn two_function_evaluator_is_exact(e in prop::collection::vec(-100.0f64..100.0, 1..16),
                                       dseed in any::<u64>()) {
        let n = e.len();
        let mut s = dseed;
        let d: Vec<f64> = (0..n).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((s >> 33) as f64 / (1u64 << 30) as f64) - 4.0
        }).collect();
        let mut direct = 0.0;
        for (b, &eb) in e.iter().enumerate() {
            for &da in &d[..=b] {
                let x: f64 = eb - da;
                direct += x * x;
            }
        }
        let fast = sse_two_function(&e, &d);
        prop_assert!((fast - direct).abs() <= 1e-6 * (1.0 + direct));
    }

    #[test]
    fn weighted_oracle_cost_is_nonnegative_and_additive_at_split(vals in arb_values()) {
        let o = WeightedPointOracle::range_inclusion(&vals);
        let n = vals.len();
        for l in 0..n {
            for r in l..n {
                prop_assert!(o.cost(l, r) >= 0.0);
                // Splitting a window cannot increase total cost.
                if r > l {
                    let mid = (l + r) / 2;
                    prop_assert!(
                        o.cost(l, mid) + o.cost(mid + 1, r) <= o.cost(l, r) + 1e-6,
                        "split ({},{}) at {}", l, r, mid
                    );
                }
            }
        }
    }

    #[test]
    fn any_bucketing_gives_finite_nonneg_sse((vals, cuts) in arb_values()
        .prop_flat_map(|v| {
            let n = v.len();
            (Just(v), arb_bucketing(n))
        })) {
        let ps = PrefixSums::from_values(&vals);
        let h = ValueHistogram::with_averages(cuts, &ps, "x").unwrap();
        let sse = sse_value_histogram(h.xprefix(), &ps);
        prop_assert!(sse.is_finite() && sse >= 0.0);
    }

    #[test]
    fn data_array_total_matches_prefix_total(vals in arb_values()) {
        let d = DataArray::new(vals.clone()).unwrap();
        prop_assert_eq!(d.total(), d.prefix_sums().total());
    }
}
