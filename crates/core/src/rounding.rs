//! Rounding conventions for histogram answering procedures.
//!
//! Equation (1) of the paper rounds its argument "to a nearby integer in an
//! arbitrary way". For the OPT-A dynamic program the rounding must be fixed
//! and must keep the per-endpoint error decomposition exact, so we round the
//! two *end-piece* contributions separately (see DESIGN.md §4.2); the summed
//! answer remains an admissible "nearby integer". The unrounded mode — the
//! default for cross-method comparisons — skips rounding entirely, which
//! matches the SAP0/SAP1/wavelet procedures that are defined without it.

/// How a histogram's fractional range-sum contributions are rounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// No rounding: estimates are real-valued sums of per-position bucket
    /// averages. Default.
    #[default]
    None,
    /// Round each end-piece contribution (and each intra-bucket answer) to
    /// the nearest integer, ties away from zero. This makes every estimate —
    /// and therefore every error term `δ` and DP state `Λ` — integral, as the
    /// paper's pseudo-polynomial analysis requires.
    NearestInt,
}

impl RoundingMode {
    /// Applies the rounding convention to a raw contribution.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            RoundingMode::None => x,
            RoundingMode::NearestInt => x.round(),
        }
    }

    /// Whether estimates under this mode are guaranteed integral for integral
    /// data.
    pub fn is_integral(self) -> bool {
        matches!(self, RoundingMode::NearestInt)
    }
}

/// Rounds `len · avg` where `avg = sum / bucket_len`, exactly in integer
/// arithmetic (avoids `f64` ties-behaviour surprises for large sums).
///
/// Computes `round(len · sum / bucket_len)` with ties away from zero.
#[inline]
pub fn round_scaled(len: i128, sum: i128, bucket_len: i128) -> i128 {
    debug_assert!(bucket_len > 0 && len >= 0);
    let num = len * sum;
    // round(num / den) with ties away from zero, den > 0.
    let den = bucket_len;
    if num >= 0 {
        (2 * num + den) / (2 * den)
    } else {
        -((2 * (-num) + den) / (2 * den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        assert_eq!(RoundingMode::None.apply(2.7), 2.7);
        assert_eq!(RoundingMode::None.apply(-0.4), -0.4);
        assert!(!RoundingMode::None.is_integral());
    }

    #[test]
    fn nearest_rounds_half_away_from_zero() {
        let m = RoundingMode::NearestInt;
        assert_eq!(m.apply(2.5), 3.0);
        assert_eq!(m.apply(2.4), 2.0);
        assert_eq!(m.apply(-2.5), -3.0);
        assert_eq!(m.apply(-2.4), -2.0);
        assert!(m.is_integral());
    }

    #[test]
    fn round_scaled_matches_f64_rounding_on_small_inputs() {
        for len in 0..10i128 {
            for sum in -30..30i128 {
                for bl in 1..7i128 {
                    let exact = round_scaled(len, sum, bl);
                    let viaf = ((len * sum) as f64 / bl as f64).round() as i128;
                    assert_eq!(exact, viaf, "len={len} sum={sum} bl={bl}");
                }
            }
        }
    }

    #[test]
    fn round_scaled_is_exact_for_large_inputs() {
        // 2^70 / 3 would lose precision in f64; integer path stays exact.
        let big = 1i128 << 70;
        let r = round_scaled(1, big + 1, 3);
        // (2^70 + 1)/3 rounded.
        let q = (2 * (big + 1) + 3) / 6;
        assert_eq!(r, q);
    }
}
