//! The trait implemented by every synopsis.

use crate::query::RangeQuery;

/// A synopsis that can estimate range sums.
///
/// Implementations include every histogram representation in
/// [`crate::histogram`] and the wavelet synopses in `synoptic-wavelet`.
/// Estimates are `f64`: the OPT-A answering procedure with
/// [`crate::RoundingMode::NearestInt`] produces integral estimates, all other
/// procedures are real-valued.
pub trait RangeEstimator {
    /// Domain size the synopsis was built for.
    fn n(&self) -> usize;

    /// Estimated range sum `ŝ[q.lo, q.hi]`.
    fn estimate(&self, q: RangeQuery) -> f64;

    /// Storage footprint in machine words, using the paper's accounting:
    /// bucket boundaries and summary values cost one word each, wavelet
    /// coefficients cost two (index + value).
    fn storage_words(&self) -> usize;

    /// Short method name used in reports (e.g. `"OPT-A"`, `"SAP0"`).
    fn method_name(&self) -> &str;
}

/// Blanket impl so `&T` and boxed estimators can be passed around uniformly.
impl<T: RangeEstimator + ?Sized> RangeEstimator for &T {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        (**self).estimate(q)
    }
    fn storage_words(&self) -> usize {
        (**self).storage_words()
    }
    fn method_name(&self) -> &str {
        (**self).method_name()
    }
}

impl<T: RangeEstimator + ?Sized> RangeEstimator for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        (**self).estimate(q)
    }
    fn storage_words(&self) -> usize {
        (**self).storage_words()
    }
    fn method_name(&self) -> &str {
        (**self).method_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl RangeEstimator for Dummy {
        fn n(&self) -> usize {
            3
        }
        fn estimate(&self, q: RangeQuery) -> f64 {
            (q.hi - q.lo + 1) as f64
        }
        fn storage_words(&self) -> usize {
            1
        }
        fn method_name(&self) -> &str {
            "DUMMY"
        }
    }

    #[test]
    fn blanket_impls_delegate() {
        let d = Dummy;
        let r: &dyn RangeEstimator = &d;
        assert_eq!(r.n(), 3);
        assert_eq!(r.estimate(RangeQuery { lo: 0, hi: 2 }), 3.0);
        let b: Box<dyn RangeEstimator> = Box::new(Dummy);
        assert_eq!(b.storage_words(), 1);
        assert_eq!(b.method_name(), "DUMMY");
        assert_eq!(b.n(), 3);
    }
}
