//! The trait implemented by every synopsis.

use crate::query::RangeQuery;

/// A synopsis that can estimate range sums.
///
/// Implementations include every histogram representation in
/// [`crate::histogram`] and the wavelet synopses in `synoptic-wavelet`.
/// Estimates are `f64`: the OPT-A answering procedure with
/// [`crate::RoundingMode::NearestInt`] produces integral estimates, all other
/// procedures are real-valued.
///
/// `Send + Sync` are supertraits: a synopsis is immutable answered data, and
/// the maintained-serving layer (`synoptic-stream`) hot-swaps freshly built
/// estimators from a background rebuild worker into serving threads. Every
/// implementation in the workspace is a plain owned data structure, so the
/// bounds are free; they are what lets `Arc<dyn RangeEstimator>` cross
/// thread boundaries without per-implementation ceremony.
pub trait RangeEstimator: Send + Sync {
    /// Domain size the synopsis was built for.
    fn n(&self) -> usize;

    /// Estimated range sum `ŝ[q.lo, q.hi]`.
    fn estimate(&self, q: RangeQuery) -> f64;

    /// Storage footprint in machine words, using the paper's accounting:
    /// bucket boundaries and summary values cost one word each, wavelet
    /// coefficients cost two (index + value).
    fn storage_words(&self) -> usize;

    /// Short method name used in reports (e.g. `"OPT-A"`, `"SAP0"`).
    fn method_name(&self) -> &str;
}

/// Where a served estimate actually came from, for systems that answer
/// through a fallback chain (see `synoptic-catalog`): the primary synopsis,
/// an older persisted generation, or a last-resort metadata-only estimator.
///
/// Serving layers thread this alongside every answer so that a degraded
/// catalog **never lies silently** — callers can observe that a corruption
/// was detected and a weaker estimator substituted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerSource {
    /// The requested synopsis, loaded and fully validated.
    Primary,
    /// An older persisted generation was substituted after the newest one
    /// failed validation.
    FallbackGeneration {
        /// Generation number actually served.
        generation: u64,
    },
    /// All persisted synopses failed validation; the answer comes from a
    /// naive estimator reconstructed from manifest metadata (`n`, total).
    FallbackNaive,
}

impl AnswerSource {
    /// `true` unless the primary synopsis answered.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, AnswerSource::Primary)
    }
}

impl std::fmt::Display for AnswerSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnswerSource::Primary => write!(f, "primary"),
            AnswerSource::FallbackGeneration { generation } => {
                write!(f, "fallback:generation-{generation}")
            }
            AnswerSource::FallbackNaive => write!(f, "fallback:naive"),
        }
    }
}

/// An estimate paired with its provenance, returned by degraded-mode-aware
/// serving paths.
#[derive(Debug, Clone, PartialEq)]
pub struct SourcedEstimate {
    /// The estimated range sum.
    pub value: f64,
    /// Which link of the fallback chain produced it.
    pub source: AnswerSource,
}

/// Blanket impl so `&T` and boxed estimators can be passed around uniformly.
impl<T: RangeEstimator + ?Sized> RangeEstimator for &T {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        (**self).estimate(q)
    }
    fn storage_words(&self) -> usize {
        (**self).storage_words()
    }
    fn method_name(&self) -> &str {
        (**self).method_name()
    }
}

impl<T: RangeEstimator + ?Sized> RangeEstimator for Box<T> {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        (**self).estimate(q)
    }
    fn storage_words(&self) -> usize {
        (**self).storage_words()
    }
    fn method_name(&self) -> &str {
        (**self).method_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl RangeEstimator for Dummy {
        fn n(&self) -> usize {
            3
        }
        fn estimate(&self, q: RangeQuery) -> f64 {
            (q.hi - q.lo + 1) as f64
        }
        fn storage_words(&self) -> usize {
            1
        }
        fn method_name(&self) -> &str {
            "DUMMY"
        }
    }

    #[test]
    fn blanket_impls_delegate() {
        let d = Dummy;
        let r: &dyn RangeEstimator = &d;
        assert_eq!(r.n(), 3);
        assert_eq!(r.estimate(RangeQuery { lo: 0, hi: 2 }), 3.0);
        let b: Box<dyn RangeEstimator> = Box::new(Dummy);
        assert_eq!(b.storage_words(), 1);
        assert_eq!(b.method_name(), "DUMMY");
        assert_eq!(b.n(), 3);
    }

    #[test]
    fn answer_source_degradation_and_display() {
        assert!(!AnswerSource::Primary.is_degraded());
        assert!(AnswerSource::FallbackGeneration { generation: 3 }.is_degraded());
        assert!(AnswerSource::FallbackNaive.is_degraded());
        assert_eq!(AnswerSource::Primary.to_string(), "primary");
        assert_eq!(
            AnswerSource::FallbackGeneration { generation: 3 }.to_string(),
            "fallback:generation-3"
        );
        assert_eq!(AnswerSource::FallbackNaive.to_string(), "fallback:naive");
    }
}
