//! O(1)-per-window cost statistics after O(n) preprocessing.
//!
//! Every dynamic program in the paper enumerates candidate buckets
//! `[l, r] ⊆ [0, n)` and needs, in constant time per candidate,
//!
//! * the SSE of all ranges **inside** the bucket answered by
//!   `(len)·avg` (the *intra* cost),
//! * the variance of the bucket's **suffix sums** `σ_a = s[a, r]` and
//!   **prefix sums** `π_b = s[l, b]` (SAP0, Decomposition Lemma),
//! * the least-squares **residual** of the linear fits used by SAP1,
//! * the per-endpoint error aggregates `U₁, U₂, V₁, V₂` of the OPT-A
//!   answering procedure (paper §2.1), and
//! * weighted point-query variances (POINT-OPT / V-optimal).
//!
//! All of these reduce to window sums of `P[x]`, `P[x]²` and `x·P[x]` over
//! the prefix-sum table, which this oracle precomputes as exact `i128`
//! cumulatives. Per-window quantities are *centered* (shifted by `P[l]` and
//! `l`) while still in integer arithmetic, and the cancellation-prone final
//! subtractions (variances, regression residuals, intra SSE) are performed in
//! **scaled integer arithmetic** — multiplying through by the window length
//! so fractional averages become integral — before a single conversion to
//! `f64`. This keeps every statistic exact (not merely accurate) for data
//! within the supported envelope below.
//!
//! ## Supported input envelope
//!
//! Intermediates are `i128`. Exactness is guaranteed when
//! `n ≤ 2²⁰` and `|s[0, n−1]| ≤ 2⁴⁰` (comfortably beyond any dataset in the
//! paper or the experiment harness); larger inputs panic on overflow via
//! checked arithmetic rather than returning silently wrong costs.

use crate::array::PrefixSums;

/// Aggregates of the per-endpoint errors of one candidate bucket under the
/// OPT-A (bucket-average) answering procedure, without rounding.
///
/// With `m = avg(l..=r)`, the suffix error at `a ∈ [l,r]` is
/// `u_a = s[a,r] − (r−a+1)·m` and the prefix error at `b` is
/// `v_b = s[l,b] − (b−l+1)·m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndpointAggregates {
    /// `Σ_a u_a`.
    pub u1: f64,
    /// `Σ_a u_a²`.
    pub u2: f64,
    /// `Σ_b v_b`.
    pub v1: f64,
    /// `Σ_b v_b²`.
    pub v2: f64,
}

#[inline]
fn mul(a: i128, b: i128) -> i128 {
    a.checked_mul(b)
        .expect("window statistic overflowed i128: input exceeds the supported envelope")
}

/// Exact centered window moments over prefix-table positions, in `i128`.
#[derive(Debug, Clone, Copy)]
struct Centered {
    /// Number of positions `K`.
    k: i128,
    /// `Σ d_x` with `d_x = P[x] − P[center]`.
    s1: i128,
    /// `Σ d_x²`.
    s2: i128,
    /// `Σ (x − x0)·d_x`.
    sxp: i128,
}

/// Precomputed prefix-sum cumulatives enabling O(1) window statistics.
#[derive(Debug, Clone)]
pub struct WindowOracle {
    n: usize,
    /// `P[0..=n]`.
    p: Vec<i128>,
    /// `cp[i] = Σ_{x<i} P[x]` for `i ∈ 0..=n+1`.
    cp: Vec<i128>,
    /// `cp2[i] = Σ_{x<i} P[x]²`.
    cp2: Vec<i128>,
    /// `cxp[i] = Σ_{x<i} x·P[x]`.
    cxp: Vec<i128>,
}

impl WindowOracle {
    /// Builds the oracle from exact prefix sums in O(n).
    pub fn new(ps: &PrefixSums) -> Self {
        let p = ps.table().to_vec();
        let m = p.len(); // n + 1
        let mut cp = Vec::with_capacity(m + 1);
        let mut cp2 = Vec::with_capacity(m + 1);
        let mut cxp = Vec::with_capacity(m + 1);
        cp.push(0);
        cp2.push(0);
        cxp.push(0);
        let (mut a, mut b, mut c) = (0i128, 0i128, 0i128);
        for (x, &px) in p.iter().enumerate() {
            a += px;
            b += mul(px, px);
            c += mul(x as i128, px);
            cp.push(a);
            cp2.push(b);
            cxp.push(c);
        }
        Self {
            n: ps.n(),
            p,
            cp,
            cp2,
            cxp,
        }
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `P[x]`.
    #[inline]
    pub fn p(&self, x: usize) -> i128 {
        self.p[x]
    }

    /// Exact window sum `s[l, r]`.
    #[inline]
    pub fn sum(&self, l: usize, r: usize) -> i128 {
        self.p[r + 1] - self.p[l]
    }

    /// Window average `s[l,r] / (r−l+1)`.
    #[inline]
    pub fn avg(&self, l: usize, r: usize) -> f64 {
        self.sum(l, r) as f64 / (r - l + 1) as f64
    }

    /// `Σ_{x=x0}^{x1} P[x]` (inclusive, over prefix-table positions).
    #[inline]
    fn sum_p(&self, x0: usize, x1: usize) -> i128 {
        self.cp[x1 + 1] - self.cp[x0]
    }

    #[inline]
    fn sum_p2(&self, x0: usize, x1: usize) -> i128 {
        self.cp2[x1 + 1] - self.cp2[x0]
    }

    #[inline]
    fn sum_xp(&self, x0: usize, x1: usize) -> i128 {
        self.cxp[x1 + 1] - self.cxp[x0]
    }

    /// Centered window moments over prefix-table positions `x ∈ [x0, x1]`
    /// with `d_x = P[x] − P[center]`, exactly in `i128`.
    #[inline]
    fn centered(&self, x0: usize, x1: usize, center: usize) -> Centered {
        let k = (x1 - x0 + 1) as i128;
        let pc = self.p[center];
        let sp = self.sum_p(x0, x1);
        let s1 = sp - k * pc;
        let s2 = self.sum_p2(x0, x1) - 2 * mul(pc, sp) + mul(k, mul(pc, pc));
        // Σ (x − x0)(P[x] − pc)
        let sum_x: i128 = {
            let (a, b) = (x0 as i128, x1 as i128);
            (a + b) * (b - a + 1) / 2
        };
        let sxp = self.sum_xp(x0, x1) - (x0 as i128) * sp - mul(pc, sum_x) + (x0 as i128) * pc * k;
        Centered { k, s1, s2, sxp }
    }

    /// SSE over all sub-ranges of `[l, r]` answered by `(len)·avg(l,r)`
    /// without rounding — the *intra-bucket* cost shared by OPT-A (unrounded),
    /// SAP0, SAP1 and A0.
    ///
    /// Closed form: with `w_x = (P[x]−P[l]) − m(x−l)` over the `K = L+1`
    /// table positions `x ∈ [l, r+1]`, every query `[a,b] ⊆ [l,r]`
    /// contributes `(w_{b+1} − w_a)²` exactly once, so the cost is
    /// `K·Σw² − (Σw)²`. Scaling by `L` (`W_x = L·w_x`, integral) keeps the
    /// subtraction exact: `cost = (K·ΣW² − (ΣW)²) / L²`.
    pub fn intra_avg_sse(&self, l: usize, r: usize) -> f64 {
        let len = (r - l + 1) as i128;
        let s = self.sum(l, r);
        let c = self.centered(l, r + 1, l);
        // W_x = L·d_x − S·(x − l); positions x − l run over 0..=L.
        // ΣW = L·s1 − S·Σ(x−l);  Σ(x−l) = L(L+1)/2.
        // ΣW² = L²·s2 − 2·L·S·sxp + S²·Σ(x−l)².
        let qx = len * (len + 1) / 2;
        let qx2 = len * (len + 1) * (2 * len + 1) / 6;
        let sw = mul(len, c.s1) - mul(s, qx);
        let sw2 = mul(mul(len, len), c.s2) - 2 * mul(mul(len, s), c.sxp) + mul(mul(s, s), qx2);
        let num = mul(c.k, sw2) - mul(sw, sw);
        debug_assert!(num >= 0);
        num.max(0) as f64 / (len * len) as f64
    }

    /// Exact integer moments `(Σ σ_a, Σ σ_a², Σ t_a·σ_a)` over `a ∈ [l, r]`
    /// with suffix sums `σ_a = s[a, r]` and multipliers `t_a = r − a + 1`.
    pub fn suffix_moments_int(&self, l: usize, r: usize) -> (i128, i128, i128) {
        let lcount = (r - l + 1) as i128;
        // σ_a = D − d_a where D = P[r+1] − P[l], d_a = P[a] − P[l], a ∈ [l, r].
        let d = self.p[r + 1] - self.p[l];
        let c = self.centered(l, r, l);
        let sum = lcount * d - c.s1;
        let sumsq = mul(lcount, mul(d, d)) - 2 * mul(d, c.s1) + c.s2;
        // t_a = r + 1 − a; with j = a − l ∈ [0, L−1], t = L − j.
        // Σ t σ = Σ (L − j)(D − d_a) = L²·D − D·Σj − L·Σd + Σ j·d.
        let sum_j = (lcount - 1) * lcount / 2;
        let tsum = mul(lcount, mul(lcount, d)) - mul(d, sum_j) - mul(lcount, c.s1) + c.sxp;
        (sum, sumsq, tsum)
    }

    /// Exact integer moments `(Σ π_b, Σ π_b², Σ t_b·π_b)` over `b ∈ [l, r]`
    /// with prefix sums `π_b = s[l, b]` and multipliers `t_b = b − l + 1`.
    pub fn prefix_moments_int(&self, l: usize, r: usize) -> (i128, i128, i128) {
        // π_b = P[b+1] − P[l]; positions x = b + 1 ∈ [l+1, r+1]; t = x − l.
        let c = self.centered(l + 1, r + 1, l);
        // t_b = (x − (l+1)) + 1, so Σ t π = sxp + s1.
        (c.s1, c.s2, c.sxp + c.s1)
    }

    /// `f64` view of [`suffix_moments_int`](Self::suffix_moments_int).
    pub fn suffix_moments(&self, l: usize, r: usize) -> (f64, f64, f64) {
        let (a, b, c) = self.suffix_moments_int(l, r);
        (a as f64, b as f64, c as f64)
    }

    /// `f64` view of [`prefix_moments_int`](Self::prefix_moments_int).
    pub fn prefix_moments(&self, l: usize, r: usize) -> (f64, f64, f64) {
        let (a, b, c) = self.prefix_moments_int(l, r);
        (a as f64, b as f64, c as f64)
    }

    /// Sum of squared deviations of the suffix sums around their mean:
    /// `Σ_a (σ_a − mean)²`. This is the SAP0 suffix cost (before the
    /// `(n − r − 1)` multiplier). Computed as `(L·Σσ² − (Σσ)²)/L` with the
    /// subtraction in exact integers.
    pub fn suffix_var(&self, l: usize, r: usize) -> f64 {
        let lcount = (r - l + 1) as i128;
        let (s, s2, _) = self.suffix_moments_int(l, r);
        let num = mul(lcount, s2) - mul(s, s);
        debug_assert!(num >= 0);
        num.max(0) as f64 / lcount as f64
    }

    /// Sum of squared deviations of the prefix sums around their mean.
    pub fn prefix_var(&self, l: usize, r: usize) -> f64 {
        let lcount = (r - l + 1) as i128;
        let (s, s2, _) = self.prefix_moments_int(l, r);
        let num = mul(lcount, s2) - mul(s, s);
        debug_assert!(num >= 0);
        num.max(0) as f64 / lcount as f64
    }

    /// Mean of the suffix sums — the optimal SAP0 `suff` value (Lemma 5.2).
    pub fn suffix_mean(&self, l: usize, r: usize) -> f64 {
        let (s, _, _) = self.suffix_moments_int(l, r);
        s as f64 / (r - l + 1) as f64
    }

    /// Mean of the prefix sums — the optimal SAP0 `pref` value (Lemma 5.2).
    pub fn prefix_mean(&self, l: usize, r: usize) -> f64 {
        let (s, _, _) = self.prefix_moments_int(l, r);
        s as f64 / (r - l + 1) as f64
    }

    /// Least-squares residual sum of squares of fitting `σ_a ≈ α·t_a + β`
    /// with `t_a = r − a + 1` — the SAP1 suffix cost. Returns `(rss, α, β)`.
    pub fn suffix_fit(&self, l: usize, r: usize) -> (f64, f64, f64) {
        let m = self.suffix_moments_int(l, r);
        Self::linear_fit((r - l + 1) as i128, m)
    }

    /// Least-squares residual of fitting `π_b ≈ α·t_b + β` with
    /// `t_b = b − l + 1` — the SAP1 prefix cost. Returns `(rss, α, β)`.
    pub fn prefix_fit(&self, l: usize, r: usize) -> (f64, f64, f64) {
        let m = self.prefix_moments_int(l, r);
        Self::linear_fit((r - l + 1) as i128, m)
    }

    /// Shared regression arithmetic over regressor values `t = 1, 2, …, L`,
    /// with the cancellation-prone determinants computed in exact integers:
    ///
    /// ```text
    /// L·Sxx = L·Σt² − (Σt)²      L·Sxy = L·Σtσ − Σt·Σσ
    /// L·Syy = L·Σσ² − (Σσ)²      RSS = (L·Syy·L·Sxx − (L·Sxy)²) / (L·(L·Sxx))
    /// ```
    fn linear_fit(len: i128, (sy, sy2, sty): (i128, i128, i128)) -> (f64, f64, f64) {
        let st = len * (len + 1) / 2;
        let st2 = len * (len + 1) * (2 * len + 1) / 6;
        let lsxx = mul(len, st2) - mul(st, st);
        if lsxx == 0 {
            // Single point: fit is exact with α = 0 (convention), β = σ.
            return (0.0, 0.0, sy as f64 / len as f64);
        }
        let lsxy = mul(len, sty) - mul(st, sy);
        let lsyy = mul(len, sy2) - mul(sy, sy);
        let alpha = lsxy as f64 / lsxx as f64;
        let beta = (sy as f64 - alpha * st as f64) / len as f64;
        // RSS = Syy − Sxy²/Sxx, with the Cauchy–Schwarz-nonnegative
        // determinant L·Syy·L·Sxx − (L·Sxy)² computed in exact integers.
        let num = mul(lsyy, lsxx)
            .checked_sub(mul(lsxy, lsxy))
            .expect("window statistic overflowed i128: input exceeds the supported envelope");
        debug_assert!(num >= 0);
        let rss = num.max(0) as f64 / (len as f64 * lsxx as f64);
        (rss, alpha, beta)
    }

    /// OPT-A per-endpoint error aggregates for the *unrounded* answering
    /// procedure (see [`EndpointAggregates`]). The squared sums are computed
    /// in scaled integers (`L·u_a` is integral) for exactness.
    pub fn endpoint_aggregates(&self, l: usize, r: usize) -> EndpointAggregates {
        let len = (r - l + 1) as i128;
        let s = self.sum(l, r);
        let st = len * (len + 1) / 2;
        let st2 = len * (len + 1) * (2 * len + 1) / 6;
        let (ss, ss2, sts) = self.suffix_moments_int(l, r);
        let (ps_, ps2, tps) = self.prefix_moments_int(l, r);
        // L·u_a = L·σ_a − t_a·S ⇒ Σ(L·u) = L·Σσ − S·Σt,
        // Σ(L·u)² = L²·Σσ² − 2·L·S·Σtσ + S²·Σt².
        let lu1 = mul(len, ss) - mul(s, st);
        let lu2 = mul(mul(len, len), ss2) - 2 * mul(mul(len, s), sts) + mul(mul(s, s), st2);
        let lv1 = mul(len, ps_) - mul(s, st);
        let lv2 = mul(mul(len, len), ps2) - 2 * mul(mul(len, s), tps) + mul(mul(s, s), st2);
        debug_assert!(lu2 >= 0 && lv2 >= 0);
        let lf = len as f64;
        EndpointAggregates {
            u1: lu1 as f64 / lf,
            u2: lu2.max(0) as f64 / (lf * lf),
            v1: lv1 as f64 / lf,
            v2: lv2.max(0) as f64 / (lf * lf),
        }
    }
}

/// O(1) weighted point-query variances after O(n) preprocessing — the cost
/// oracle for V-optimal / POINT-OPT histograms.
#[derive(Debug, Clone)]
pub struct WeightedPointOracle {
    /// `cw[i] = Σ_{x<i} w_x`.
    cw: Vec<i128>,
    /// `cwa[i] = Σ_{x<i} w_x·A[x]`.
    cwa: Vec<i128>,
    /// `cwa2[i] = Σ_{x<i} w_x·A[x]²`.
    cwa2: Vec<i128>,
}

impl WeightedPointOracle {
    /// Builds the oracle for frequencies `values` and non-negative integer
    /// point weights `weights` (same length).
    pub fn new(values: &[i64], weights: &[i64]) -> Self {
        assert_eq!(values.len(), weights.len());
        let n = values.len();
        let mut cw = Vec::with_capacity(n + 1);
        let mut cwa = Vec::with_capacity(n + 1);
        let mut cwa2 = Vec::with_capacity(n + 1);
        cw.push(0);
        cwa.push(0);
        cwa2.push(0);
        let (mut a, mut b, mut c) = (0i128, 0i128, 0i128);
        for (&v, &w) in values.iter().zip(weights) {
            debug_assert!(w >= 0, "point weights must be non-negative");
            let (v, w) = (v as i128, w as i128);
            a += w;
            b += mul(w, v);
            c += mul(w, mul(v, v));
            cw.push(a);
            cwa.push(b);
            cwa2.push(c);
        }
        Self { cw, cwa, cwa2 }
    }

    /// Uniform (all-ones) weights: the classical V-optimal objective of
    /// Jagadish et al.
    pub fn uniform(values: &[i64]) -> Self {
        Self::new(values, &vec![1i64; values.len()])
    }

    /// Range-inclusion weights `w_i = (i+1)(n−i)`: the number of range
    /// queries containing index `i`, i.e. the probability (up to scale) that
    /// `A[i]` is part of a uniformly random range query — the adjustment the
    /// paper applies to POINT-OPT.
    pub fn range_inclusion(values: &[i64]) -> Self {
        let n = values.len() as i64;
        let w: Vec<i64> = (0..n).map(|i| (i + 1) * (n - i)).collect();
        Self::new(values, &w)
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cw.len() - 1
    }

    /// Total weight over `[l, r]`.
    pub fn weight(&self, l: usize, r: usize) -> i128 {
        self.cw[r + 1] - self.cw[l]
    }

    /// The weighted mean of `A` over `[l, r]` — the value minimizing the
    /// weighted point-query SSE for the window. Falls back to 0 when the
    /// window carries zero weight.
    pub fn wmean(&self, l: usize, r: usize) -> f64 {
        let w = self.weight(l, r);
        if w == 0 {
            return 0.0;
        }
        (self.cwa[r + 1] - self.cwa[l]) as f64 / w as f64
    }

    /// Minimum weighted point SSE `min_v Σ_{i∈[l,r]} w_i (A[i] − v)²`,
    /// computed as `(W·Σwa² − (Σwa)²)/W` with the subtraction in exact
    /// integers.
    pub fn cost(&self, l: usize, r: usize) -> f64 {
        let w = self.weight(l, r);
        if w == 0 {
            return 0.0;
        }
        let swa = self.cwa[r + 1] - self.cwa[l];
        let swa2 = self.cwa2[r + 1] - self.cwa2[l];
        let num = mul(w, swa2) - mul(swa, swa);
        debug_assert!(num >= 0);
        num.max(0) as f64 / w as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PrefixSums;

    /// Brute-force versions of every oracle statistic.
    struct Brute {
        ps: PrefixSums,
    }

    impl Brute {
        fn new(vals: &[i64]) -> Self {
            Self {
                ps: PrefixSums::from_values(vals),
            }
        }
        fn s(&self, a: usize, b: usize) -> f64 {
            self.ps.range_sum(a, b) as f64
        }
        fn intra(&self, l: usize, r: usize) -> f64 {
            let m = self.s(l, r) / (r - l + 1) as f64;
            let mut sse = 0.0;
            for a in l..=r {
                for b in a..=r {
                    let est = (b - a + 1) as f64 * m;
                    let d = self.s(a, b) - est;
                    sse += d * d;
                }
            }
            sse
        }
        fn suffixes(&self, l: usize, r: usize) -> Vec<f64> {
            (l..=r).map(|a| self.s(a, r)).collect()
        }
        fn prefixes(&self, l: usize, r: usize) -> Vec<f64> {
            (l..=r).map(|b| self.s(l, b)).collect()
        }
    }

    fn var(xs: &[f64]) -> f64 {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - m) * (x - m)).sum()
    }

    fn datasets() -> Vec<Vec<i64>> {
        vec![
            vec![1, 3, 5, 11, 12, 13],
            vec![0, 0, 0, 0],
            vec![7],
            vec![5, -3, 8, 0, -2, 9, 1],
            vec![1000000, 2, 999999, 5, 4, 3, 2, 1, 0, 100],
        ]
    }

    #[test]
    fn intra_avg_sse_matches_brute_force() {
        for vals in datasets() {
            let br = Brute::new(&vals);
            let o = WindowOracle::new(&br.ps);
            let n = vals.len();
            for l in 0..n {
                for r in l..n {
                    let fast = o.intra_avg_sse(l, r);
                    let slow = br.intra(l, r);
                    let tol = 1e-6 * (1.0 + slow.abs());
                    assert!(
                        (fast - slow).abs() <= tol,
                        "intra({l},{r}) fast={fast} slow={slow} vals={vals:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn suffix_prefix_moments_match_brute_force() {
        for vals in datasets() {
            let br = Brute::new(&vals);
            let o = WindowOracle::new(&br.ps);
            let n = vals.len();
            for l in 0..n {
                for r in l..n {
                    let sf = br.suffixes(l, r);
                    let pf = br.prefixes(l, r);
                    let (s1, s2, st) = o.suffix_moments(l, r);
                    assert_eq!(s1, sf.iter().sum::<f64>(), "s1 {l},{r}");
                    assert_eq!(s2, sf.iter().map(|x| x * x).sum::<f64>(), "s2 {l},{r}");
                    let tsy: f64 = sf
                        .iter()
                        .enumerate()
                        .map(|(i, x)| (r - (l + i) + 1) as f64 * x)
                        .sum();
                    assert_eq!(st, tsy, "st {l},{r}");
                    let (p1, p2, pt) = o.prefix_moments(l, r);
                    assert_eq!(p1, pf.iter().sum::<f64>());
                    assert_eq!(p2, pf.iter().map(|x| x * x).sum::<f64>());
                    let tpy: f64 = pf.iter().enumerate().map(|(i, x)| (i + 1) as f64 * x).sum();
                    assert_eq!(pt, tpy);
                }
            }
        }
    }

    #[test]
    fn variances_match_brute_force() {
        for vals in datasets() {
            let br = Brute::new(&vals);
            let o = WindowOracle::new(&br.ps);
            let n = vals.len();
            for l in 0..n {
                for r in l..n {
                    let sv = var(&br.suffixes(l, r));
                    let pv = var(&br.prefixes(l, r));
                    assert!(
                        (o.suffix_var(l, r) - sv).abs() <= 1e-6 * (1.0 + sv),
                        "suffix_var({l},{r})"
                    );
                    assert!(
                        (o.prefix_var(l, r) - pv).abs() <= 1e-6 * (1.0 + pv),
                        "prefix_var({l},{r}): {} vs {pv}",
                        o.prefix_var(l, r)
                    );
                    assert!(
                        (o.suffix_mean(l, r)
                            - br.suffixes(l, r).iter().sum::<f64>() / (r - l + 1) as f64)
                            .abs()
                            < 1e-9
                    );
                    assert!(
                        (o.prefix_mean(l, r)
                            - br.prefixes(l, r).iter().sum::<f64>() / (r - l + 1) as f64)
                            .abs()
                            < 1e-9
                    );
                }
            }
        }
    }

    /// Brute-force least squares of y on x.
    fn brute_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
        let n = xs.len() as f64;
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum::<f64>() - sx * sx / n;
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum::<f64>() - sx * sy / n;
        if sxx <= 0.0 {
            return (0.0, 0.0, sy / n);
        }
        let a = sxy / sxx;
        let b = (sy - a * sx) / n;
        let rss = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = y - a * x - b;
                e * e
            })
            .sum();
        (rss, a, b)
    }

    #[test]
    fn regression_fits_match_brute_force() {
        for vals in datasets() {
            let br = Brute::new(&vals);
            let o = WindowOracle::new(&br.ps);
            let n = vals.len();
            for l in 0..n {
                for r in l..n {
                    let sf = br.suffixes(l, r);
                    let ts: Vec<f64> = (l..=r).map(|a| (r - a + 1) as f64).collect();
                    let (rss, a, b) = brute_fit(&ts, &sf);
                    let (frss, fa, fb) = o.suffix_fit(l, r);
                    assert!(
                        (frss - rss).abs() <= 1e-5 * (1.0 + rss),
                        "rss {l},{r}: {frss} vs {rss} vals={vals:?}"
                    );
                    assert!((fa - a).abs() < 1e-6 && (fb - b).abs() < 1e-5, "αβ {l},{r}");
                    let pf = br.prefixes(l, r);
                    let tp: Vec<f64> = (l..=r).map(|b2| (b2 - l + 1) as f64).collect();
                    let (rss2, a2, b2c) = brute_fit(&tp, &pf);
                    let (grss, ga, gb) = o.prefix_fit(l, r);
                    assert!((grss - rss2).abs() <= 1e-5 * (1.0 + rss2));
                    assert!((ga - a2).abs() < 1e-6 && (gb - b2c).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn endpoint_aggregates_match_brute_force() {
        for vals in datasets() {
            let br = Brute::new(&vals);
            let o = WindowOracle::new(&br.ps);
            let n = vals.len();
            for l in 0..n {
                for r in l..n {
                    let len = (r - l + 1) as f64;
                    let m = br.s(l, r) / len;
                    let us: Vec<f64> = (l..=r)
                        .map(|a| br.s(a, r) - (r - a + 1) as f64 * m)
                        .collect();
                    let vs: Vec<f64> = (l..=r)
                        .map(|b| br.s(l, b) - (b - l + 1) as f64 * m)
                        .collect();
                    let agg = o.endpoint_aggregates(l, r);
                    let tol = 1e-5;
                    assert!((agg.u1 - us.iter().sum::<f64>()).abs() < tol, "u1 {l},{r}");
                    assert!(
                        (agg.u2 - us.iter().map(|x| x * x).sum::<f64>()).abs()
                            < tol * (1.0 + agg.u2.abs()),
                        "u2 {l},{r}"
                    );
                    assert!((agg.v1 - vs.iter().sum::<f64>()).abs() < tol, "v1 {l},{r}");
                    assert!(
                        (agg.v2 - vs.iter().map(|x| x * x).sum::<f64>()).abs()
                            < tol * (1.0 + agg.v2.abs()),
                        "v2 {l},{r}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_window_has_zero_total_error() {
        // The suffix error of the whole window at a = l is zero:
        // s[l, r] − len·avg = 0.
        let vals = vec![4i64, 9, 2, 7, 7, 1];
        let ps = PrefixSums::from_values(&vals);
        let o = WindowOracle::new(&ps);
        let m = o.avg(0, 5);
        assert!((o.sum(0, 5) as f64 - 6.0 * m).abs() < 1e-9);
    }

    #[test]
    fn single_point_windows_cost_nothing() {
        let vals = vec![5i64, 9, 3];
        let ps = PrefixSums::from_values(&vals);
        let o = WindowOracle::new(&ps);
        for i in 0..3 {
            assert_eq!(o.intra_avg_sse(i, i), 0.0);
            assert_eq!(o.suffix_var(i, i), 0.0);
            assert_eq!(o.prefix_var(i, i), 0.0);
            let (rss, _, _) = o.suffix_fit(i, i);
            assert_eq!(rss, 0.0);
            let agg = o.endpoint_aggregates(i, i);
            assert_eq!((agg.u1, agg.u2, agg.v1, agg.v2), (0.0, 0.0, 0.0, 0.0));
        }
    }

    #[test]
    fn weighted_point_oracle_matches_brute_force() {
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
        for orc in [
            WeightedPointOracle::uniform(&vals),
            WeightedPointOracle::range_inclusion(&vals),
        ] {
            assert_eq!(orc.n(), vals.len());
            let n = vals.len();
            let weights: Vec<f64> = if orc.weight(0, 0) == 1 {
                vec![1.0; n]
            } else {
                (0..n).map(|i| ((i + 1) * (n - i)) as f64).collect()
            };
            for l in 0..n {
                for r in l..n {
                    let wsum: f64 = weights[l..=r].iter().sum();
                    let wm: f64 = weights[l..=r]
                        .iter()
                        .zip(&vals[l..=r])
                        .map(|(w, &v)| w * v as f64)
                        .sum::<f64>()
                        / wsum;
                    let cost: f64 = weights[l..=r]
                        .iter()
                        .zip(&vals[l..=r])
                        .map(|(w, &v)| w * (v as f64 - wm) * (v as f64 - wm))
                        .sum();
                    assert!((orc.wmean(l, r) - wm).abs() < 1e-9, "wmean {l},{r}");
                    assert!(
                        (orc.cost(l, r) - cost).abs() <= 1e-6 * (1.0 + cost),
                        "cost {l},{r}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_weight_window_is_free() {
        let vals = vec![5i64, 6, 7];
        let orc = WeightedPointOracle::new(&vals, &[0, 0, 0]);
        assert_eq!(orc.cost(0, 2), 0.0);
        assert_eq!(orc.wmean(0, 2), 0.0);
    }

    #[test]
    fn range_inclusion_weights_count_covering_ranges() {
        // w_i must equal #{(a,b): a ≤ i ≤ b}.
        let n = 9usize;
        let vals = vec![1i64; n];
        let orc = WeightedPointOracle::range_inclusion(&vals);
        for i in 0..n {
            let brute = (0..n)
                .flat_map(|a| (a..n).map(move |b| (a, b)))
                .filter(|&(a, b)| a <= i && i <= b)
                .count() as i128;
            assert_eq!(orc.weight(i, i), brute, "weight at {i}");
        }
    }

    #[test]
    fn large_magnitudes_remain_exact() {
        // The very case that breaks naive f64 accumulation: values near 1e6
        // make Σπ² ≈ 1e13, where f64 subtraction loses the ~40.7 variance.
        let vals = vec![1000000i64, 2, 999999, 5, 4, 3, 2, 1, 0, 100];
        let ps = PrefixSums::from_values(&vals);
        let o = WindowOracle::new(&ps);
        let pf: Vec<f64> = (2..=4).map(|b| ps.range_sum(2, b) as f64).collect();
        let m = pf.iter().sum::<f64>() / 3.0;
        let exact: f64 = pf.iter().map(|x| (x - m) * (x - m)).sum();
        assert!((o.prefix_var(2, 4) - 122.0 / 3.0).abs() < 1e-9);
        let _ = exact;
    }
}
