//! Execution control for long-running synopsis construction.
//!
//! OPT-A is pseudo-polynomial, and even the polynomial DPs (SAP0, SAP1,
//! V-OPT) are super-linear: a single oversized `n·B` build can stall a
//! rebuild loop or a CLI invocation indefinitely. This module provides the
//! cooperative execution-control layer every builder in the workspace
//! threads through its hot loops:
//!
//! * [`CancelToken`] — a shareable cancellation flag. The owner calls
//!   [`CancelToken::cancel`]; the builder observes it at its next
//!   checkpoint and aborts with [`SynopticError::Cancelled`].
//! * [`Budget`] — a per-build control block bundling an optional wall-clock
//!   deadline, an optional DP-cell budget, and an optional cancel token.
//!   Builders call [`Budget::charge`] at coarse checkpoints (typically once
//!   per DP cell-group, never per inner-loop iteration); the call is a few
//!   nanoseconds when unconstrained.
//!
//! The contract that keeps unconstrained builds **bit-identical** to the
//! pre-budget code: budgets only ever *observe* progress and *abort*
//! between checkpoints. They never alter iteration order, numeric state, or
//! tie-breaking. [`Budget::unlimited`] runs the exact same instruction
//! stream as a constrained budget that never fires.
//!
//! Checkpoint semantics for tests: [`CancelToken::cancel_after_checks`]
//! arms the token to trip at an exact checkpoint index, which lets property
//! tests drive cancellation through *every* checkpoint of a build
//! deterministically and offline (no timing dependence). Armed trip points
//! are consumed only by [`CancelToken::observe`] (which [`Budget::charge`]
//! calls); the read-only [`CancelToken::is_cancelled`] never perturbs them,
//! so diagnostics and logging can poll the token freely without an
//! observer effect on cancellation tests.
//!
//! Both [`Budget`] and [`CancelToken`] are `Send + Sync`: a budget can be
//! shared by reference with a background rebuild worker while the owner
//! watches its meters, and the token is the cross-thread cancel handle.
//! The counters are relaxed atomics — they are monotone meters, not
//! synchronization edges — so the unconstrained fast path stays a few
//! nanoseconds per checkpoint.
//!
//! # Example
//!
//! ```
//! use synoptic_core::{Budget, CancelToken, SynopticError};
//!
//! // A cell cap trips at the first checkpoint past the limit.
//! let budget = Budget::unlimited().with_max_cells(10);
//! assert!(budget.charge(8).is_ok());
//! assert!(matches!(
//!     budget.charge(8),
//!     Err(SynopticError::CellBudgetExceeded { used: 16, limit: 10 })
//! ));
//!
//! // Cancellation is cooperative and outranks resource constraints.
//! let token = CancelToken::new();
//! let budget = Budget::unlimited().with_cancel_token(token.clone());
//! assert!(budget.check().is_ok());
//! token.cancel();
//! assert!(matches!(budget.check(), Err(SynopticError::Cancelled)));
//! ```

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Result, SynopticError};

/// Sentinel for "no armed trip point" in [`CancelToken`].
const TRIP_DISABLED: i64 = -1;

/// A shareable, cooperative cancellation flag.
///
/// Cloning the token yields a handle to the same flag, so a maintenance
/// thread (or a test) can hold one clone while a builder polls the other
/// through its [`Budget`]. Cancellation is *cooperative*: the builder
/// observes the flag at its next checkpoint, never mid-expression.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Number of further checks allowed before the token auto-trips;
    /// [`TRIP_DISABLED`] when no trip point is armed.
    trip_after: AtomicI64,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no armed trip point.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                trip_after: AtomicI64::new(TRIP_DISABLED),
            }),
        }
    }

    /// Requests cancellation. Every [`Budget`] holding a clone of this
    /// token fails its next [`Budget::charge`] with
    /// [`SynopticError::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Arms the token to trip automatically at a checkpoint: the first
    /// `checks` observations pass, and the observation after that cancels.
    /// `cancel_after_checks(0)` therefore trips at the very first
    /// checkpoint. Used by tests to exercise cancellation at every
    /// checkpoint index deterministically.
    pub fn cancel_after_checks(&self, checks: u64) {
        self.inner
            .trip_after
            .store(checks.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested (or an armed trip point has
    /// already been reached by a previous [`CancelToken::observe`]).
    ///
    /// This is a **pure read**: it never advances an armed trip point, so a
    /// diagnostic or logging call cannot perturb the checkpoint at which a
    /// `cancel_after_checks` sweep trips. The counted primitive — the one
    /// [`Budget::charge`] uses at every checkpoint — is
    /// [`CancelToken::observe`].
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Records one *checkpoint observation* and reports whether the build
    /// should abort. Identical to [`CancelToken::is_cancelled`] for plain
    /// tokens; on a token armed with [`CancelToken::cancel_after_checks`],
    /// each call consumes one allowed check and the call after the allowance
    /// trips (and latches) cancellation.
    pub fn observe(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        if self.inner.trip_after.load(Ordering::SeqCst) == TRIP_DISABLED {
            return false;
        }
        let prev = self.inner.trip_after.fetch_sub(1, Ordering::SeqCst);
        if prev <= 0 {
            // Trip point reached: latch the cancelled flag and disarm so the
            // counter does not wrap on further observations.
            self.inner.cancelled.store(true, Ordering::SeqCst);
            self.inner.trip_after.store(TRIP_DISABLED, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Clears the cancelled flag and disarms any trip point, returning the
    /// token to its freshly-constructed state. Intended for reuse across
    /// ladder rungs in tests.
    pub fn reset(&self) {
        self.inner.cancelled.store(false, Ordering::SeqCst);
        self.inner.trip_after.store(TRIP_DISABLED, Ordering::SeqCst);
    }
}

/// Per-build execution control: wall-clock deadline, DP-cell budget, and
/// cooperative cancellation, checked together at coarse checkpoints.
///
/// A `Budget` is created per build attempt and passed by shared reference
/// down the call tree. It is `Send + Sync`: a background rebuild worker can
/// run a build under a budget while another thread reads its meters
/// ([`Budget::cells_used`], [`Budget::elapsed`]) or cancels through the
/// attached [`CancelToken`]. Builders call [`Budget::charge`] with the
/// number of DP cells (or comparable work units) completed since the last
/// checkpoint; the budget accumulates usage and fails the build with the
/// first exhausted constraint.
///
/// # Example
///
/// ```
/// use synoptic_core::{Budget, SynopticError};
///
/// let budget = Budget::unlimited().with_max_cells(10);
/// assert!(budget.charge(8).is_ok());
/// match budget.charge(8) {
///     Err(SynopticError::CellBudgetExceeded { used: 16, limit: 10 }) => {}
///     other => panic!("unexpected: {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct Budget {
    started: Instant,
    deadline: Option<Instant>,
    max_cells: Option<u64>,
    cancel: Option<CancelToken>,
    /// Evaluate constraints only every `charge_batch`-th checkpoint; see
    /// [`Budget::with_charge_batch`].
    charge_batch: u64,
    cells: AtomicU64,
    checks: AtomicU64,
}

/// Compile-time proof (checked by every `cargo build`, including the
/// release gate in `ci.sh`) that the execution-control types can cross
/// thread boundaries: a serving thread hands a `Budget` to a rebuild
/// worker and keeps a `CancelToken` clone as the abort handle.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Budget>();
    assert_send_sync::<CancelToken>();
};

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget with no constraints. [`Budget::charge`] still meters usage
    /// (so provenance can report cells touched) but never fails.
    pub fn unlimited() -> Self {
        Self {
            started: Instant::now(),
            deadline: None,
            max_cells: None,
            cancel: None,
            charge_batch: 1,
            cells: AtomicU64::new(0),
            checks: AtomicU64::new(0),
        }
    }

    /// Adds a wall-clock deadline, measured from *now*.
    #[must_use]
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Adds a cap on total DP cells (work units) charged.
    #[must_use]
    pub fn with_max_cells(mut self, max_cells: u64) -> Self {
        self.max_cells = Some(max_cells);
        self
    }

    /// Attaches a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Evaluates the attached constraints only at every `batch`-th
    /// checkpoint (cells are still metered at every one). On small `n`,
    /// where per-checkpoint work is a handful of DP cells, this trades
    /// cancellation/deadline latency — up to `batch - 1` checkpoints of
    /// it — for lower checkpoint overhead. `batch` values `0` and `1`
    /// both mean "every checkpoint", the default.
    ///
    /// The bit-identity contract is unchanged: batching never alters
    /// iteration order or numeric state, only *when* an abort is noticed,
    /// so an unconstrained build produces identical output at any batch.
    #[must_use]
    pub fn with_charge_batch(mut self, batch: u64) -> Self {
        self.charge_batch = batch.max(1);
        self
    }

    /// Whether no constraint (deadline, cell cap, or token) is attached.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_cells.is_none() && self.cancel.is_none()
    }

    /// Records `cells` work units completed and checks every attached
    /// constraint. This is the *checkpoint* primitive: each call counts as
    /// exactly one checkpoint regardless of `cells`.
    ///
    /// Constraint precedence (first failure wins): cancellation, then
    /// deadline, then cell cap. The order is part of the contract —
    /// explicit user intent (cancel) outranks resource exhaustion, which
    /// lets callers distinguish "abort, don't fall back" from "fall down
    /// the quality ladder".
    pub fn charge(&self, cells: u64) -> Result<()> {
        // Saturating add via CAS: the meters are relaxed (they order
        // nothing; they are read for provenance), but saturation must hold
        // even under concurrent charging.
        let mut cur = self.cells.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(cells);
            match self
                .cells
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let check_no = self.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if !check_no.is_multiple_of(self.charge_batch) {
            // Off-batch checkpoint: metered above, constraints deferred to
            // the next on-batch checkpoint. (`charge_batch` is 1 unless
            // [`Budget::with_charge_batch`] raised it, and x % 1 == 0.)
            return Ok(());
        }
        if let Some(token) = &self.cancel {
            if token.observe() {
                return Err(SynopticError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(SynopticError::DeadlineExceeded {
                    elapsed_ms: now.duration_since(self.started).as_millis() as u64,
                });
            }
        }
        if let Some(limit) = self.max_cells {
            let used = self.cells.load(Ordering::Relaxed);
            if used > limit {
                return Err(SynopticError::CellBudgetExceeded { used, limit });
            }
        }
        Ok(())
    }

    /// A checkpoint that records no work units (e.g. at a phase boundary).
    pub fn check(&self) -> Result<()> {
        self.charge(0)
    }

    /// Total work units charged so far.
    pub fn cells_used(&self) -> u64 {
        self.cells.load(Ordering::Relaxed)
    }

    /// Total checkpoints observed so far.
    pub fn checks_performed(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Wall-clock time remaining before the deadline, if one is set.
    /// Returns `Some(Duration::ZERO)` once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_fails_but_meters() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..1000 {
            b.charge(7).unwrap();
        }
        assert_eq!(b.cells_used(), 7000);
        assert_eq!(b.checks_performed(), 1000);
        assert!(b.remaining().is_none());
    }

    #[test]
    fn cell_budget_trips_at_the_right_checkpoint() {
        let b = Budget::unlimited().with_max_cells(100);
        assert!(!b.is_unlimited());
        b.charge(60).unwrap();
        b.charge(40).unwrap(); // exactly at the limit: still fine
        let err = b.charge(1).unwrap_err();
        assert_eq!(
            err,
            SynopticError::CellBudgetExceeded {
                used: 101,
                limit: 100
            }
        );
    }

    #[test]
    fn expired_deadline_fails_with_elapsed_time() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        match b.charge(1) {
            Err(SynopticError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        for _ in 0..100 {
            b.charge(1).unwrap();
        }
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_token_trips_next_checkpoint() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel_token(token.clone());
        b.charge(1).unwrap();
        token.cancel();
        assert_eq!(b.charge(1).unwrap_err(), SynopticError::Cancelled);
        // Cancellation latches.
        assert_eq!(b.check().unwrap_err(), SynopticError::Cancelled);
    }

    #[test]
    fn cancel_after_checks_is_exact() {
        for k in 0..5u64 {
            let token = CancelToken::new();
            token.cancel_after_checks(k);
            let b = Budget::unlimited().with_cancel_token(token);
            let mut passed = 0u64;
            let err = loop {
                match b.charge(1) {
                    Ok(()) => passed += 1,
                    Err(e) => break e,
                }
            };
            assert_eq!(err, SynopticError::Cancelled);
            assert_eq!(passed, k, "token armed at {k} must pass exactly {k} checks");
        }
    }

    #[test]
    fn reset_clears_cancellation_and_trip_point() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        token.reset();
        assert!(!token.is_cancelled());
        token.cancel_after_checks(0);
        token.reset();
        assert!(!token.is_cancelled(), "reset must disarm the trip point");
    }

    #[test]
    fn cancellation_outranks_deadline_and_cells() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited()
            .with_cancel_token(token)
            .with_deadline(Duration::ZERO)
            .with_max_cells(0);
        assert_eq!(b.charge(10).unwrap_err(), SynopticError::Cancelled);
    }

    #[test]
    fn is_cancelled_is_a_pure_read_with_no_observer_effect() {
        // An armed trip point must be consumed only by counted observations
        // (`observe`, i.e. budget checkpoints) — never by diagnostic reads.
        let token = CancelToken::new();
        token.cancel_after_checks(2);
        for _ in 0..100 {
            assert!(!token.is_cancelled(), "pure read must not consume checks");
        }
        let b = Budget::unlimited().with_cancel_token(token.clone());
        b.charge(1).unwrap();
        assert!(!token.is_cancelled());
        b.charge(1).unwrap();
        // Interleave more diagnostic reads: still exactly at check 2.
        assert!(!token.is_cancelled());
        assert_eq!(b.charge(1).unwrap_err(), SynopticError::Cancelled);
        // After the trip the latched flag is visible to the pure read.
        assert!(token.is_cancelled());
    }

    #[test]
    fn observe_counts_and_latches() {
        let token = CancelToken::new();
        token.cancel_after_checks(1);
        assert!(!token.observe());
        assert!(token.observe(), "second observation reaches the trip point");
        assert!(token.observe(), "latched");
        assert!(token.is_cancelled());
    }

    #[test]
    fn charge_batching_defers_constraint_checks_but_meters_every_charge() {
        let b = Budget::unlimited().with_max_cells(10).with_charge_batch(4);
        // Three off-batch checkpoints sail past the exceeded cap…
        for _ in 0..3 {
            b.charge(6).unwrap();
        }
        // …and the fourth (on-batch) one notices, reporting the true total.
        assert_eq!(
            b.charge(6).unwrap_err(),
            SynopticError::CellBudgetExceeded {
                used: 24,
                limit: 10
            }
        );
        assert_eq!(
            b.checks_performed(),
            4,
            "every charge is still a checkpoint"
        );
    }

    #[test]
    fn charge_batching_defers_cancellation_by_at_most_batch_minus_one() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited()
            .with_cancel_token(token)
            .with_charge_batch(3);
        b.charge(1).unwrap();
        b.charge(1).unwrap();
        assert_eq!(b.charge(1).unwrap_err(), SynopticError::Cancelled);
    }

    #[test]
    fn charge_batch_of_zero_or_one_checks_every_checkpoint() {
        for batch in [0, 1] {
            let b = Budget::unlimited()
                .with_max_cells(5)
                .with_charge_batch(batch);
            assert_eq!(
                b.charge(6).unwrap_err(),
                SynopticError::CellBudgetExceeded { used: 6, limit: 5 },
                "batch {batch}"
            );
        }
    }

    #[test]
    fn budget_meters_are_readable_across_threads() {
        let b = std::sync::Arc::new(Budget::unlimited());
        let b2 = std::sync::Arc::clone(&b);
        let t = std::thread::spawn(move || {
            for _ in 0..1000 {
                b2.charge(3).unwrap();
            }
        });
        t.join().unwrap();
        assert_eq!(b.cells_used(), 3000);
        assert_eq!(b.checks_performed(), 1000);
    }

    #[test]
    fn cell_accounting_saturates() {
        let b = Budget::unlimited();
        b.charge(u64::MAX).unwrap();
        b.charge(u64::MAX).unwrap();
        assert_eq!(b.cells_used(), u64::MAX);
    }
}
