//! A lock-light hot-swap cell for last-good values.
//!
//! The serving invariant of the maintained-synopsis layer ("the estimator
//! never disappears") needs a place where a background rebuild worker can
//! *publish* a fresh synopsis while serving threads keep answering from the
//! previous one. [`HotSwap`] is that place: an [`Arc`] slot whose readers
//! take a snapshot (`load`) and whose single writer replaces it atomically
//! from the reader's point of view (`swap`).
//!
//! ## Why not a lock around the estimator itself?
//!
//! A rebuild takes milliseconds-to-seconds; an answer takes nanoseconds.
//! Holding any lock across the rebuild would stall every reader for the
//! build duration. Here the only critical section is a reference-count
//! increment (`Arc::clone`) or a pointer replacement (`mem::replace`) —
//! **no lock is ever held across a build, an I/O call, or a sleep**. The
//! monotone [`HotSwap::generation`] counter additionally lets hot readers
//! cache their snapshot ([`HotSwapReader`]) and touch the slot mutex only
//! when a swap has actually happened, making the steady-state read path a
//! single relaxed atomic load with zero shared-lock traffic.
//!
//! This cell is deliberately minimal safe code (`forbid(unsafe_code)`
//! holds for the whole crate): the classic epoch/hazard-pointer designs
//! buy readers a lock-free slow path too, but at the cost of unsafe
//! reclamation logic that this workspace does not need — the slot mutex is
//! touched once per *swap*, not per answer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A shared slot holding an `Arc<T>` that readers snapshot and a writer
/// hot-swaps. See the [module docs](self) for the locking discipline.
#[derive(Debug)]
pub struct HotSwap<T: ?Sized> {
    slot: Mutex<Arc<T>>,
    /// Bumped on every [`HotSwap::swap`]; lets readers skip the slot mutex
    /// entirely while nothing has changed.
    generation: AtomicU64,
}

impl<T: ?Sized> HotSwap<T> {
    /// A cell initially holding `value` at generation 0.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slot: Mutex::new(value),
            generation: AtomicU64::new(0),
        }
    }

    /// Snapshots the current value. The critical section is one
    /// `Arc::clone`; the returned snapshot stays valid (and keeps
    /// answering) even if a swap happens immediately after.
    pub fn load(&self) -> Arc<T> {
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Publishes `value`, returning the previous one. Readers that already
    /// hold a snapshot are unaffected; new `load`s see the new value.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        let mut guard = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        let old = std::mem::replace(&mut *guard, value);
        // Publish the bump *after* the slot holds the new value (the mutex
        // release orders the store; the counter itself is a hint).
        self.generation.fetch_add(1, Ordering::Release);
        old
    }

    /// How many swaps have been published. Monotone; readers use it to
    /// detect staleness without touching the slot.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A caching reader handle for hot read paths (see [`HotSwapReader`]).
    pub fn reader(self: &Arc<Self>) -> HotSwapReader<T> {
        HotSwapReader {
            cell: Arc::clone(self),
            seen: self.generation(),
            cached: self.load(),
        }
    }
}

/// A per-thread caching reader over a [`HotSwap`].
///
/// `get` is one relaxed-ish atomic load in the steady state: the slot mutex
/// is taken only on the first read after a swap. Each reader thread owns
/// its `HotSwapReader`; the cell itself is shared.
#[derive(Debug)]
pub struct HotSwapReader<T: ?Sized> {
    cell: Arc<HotSwap<T>>,
    seen: u64,
    cached: Arc<T>,
}

impl<T: ?Sized> HotSwapReader<T> {
    /// The current value, refreshing the cached snapshot only when a swap
    /// has been published since the last call.
    pub fn get(&mut self) -> &Arc<T> {
        self.pinned().1
    }

    /// Refreshes like [`get`](Self::get) and returns the snapshot
    /// *together with the generation it was published at* — the pinning
    /// primitive for batched answering. A caller that answers a whole
    /// batch from one `pinned()` snapshot can stamp every answer with the
    /// returned generation: all of them provably came from the same
    /// published value, no matter how many swaps raced the batch.
    pub fn pinned(&mut self) -> (u64, &Arc<T>) {
        let now = self.cell.generation();
        if now != self.seen {
            self.cached = self.cell.load();
            self.seen = now;
        }
        (self.seen, &self.cached)
    }

    /// The generation of the snapshot [`get`](Self::get) currently
    /// serves (without refreshing).
    pub fn generation(&self) -> u64 {
        self.seen
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HotSwap<dyn crate::RangeEstimator>>();
    assert_send_sync::<HotSwapReader<dyn crate::RangeEstimator>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_swap_round_trip() {
        let cell = HotSwap::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.generation(), 0);
        let old = cell.swap(Arc::new(2));
        assert_eq!(*old, 1);
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn snapshots_survive_swaps() {
        let cell = HotSwap::new(Arc::new(vec![1, 2, 3]));
        let snap = cell.load();
        cell.swap(Arc::new(vec![9]));
        assert_eq!(*snap, vec![1, 2, 3], "old snapshot keeps serving");
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn reader_caches_until_generation_moves() {
        let cell = Arc::new(HotSwap::new(Arc::new(10u64)));
        let mut r = cell.reader();
        assert_eq!(**r.get(), 10);
        cell.swap(Arc::new(20));
        assert_eq!(**r.get(), 20);
        // Stable when nothing changes.
        assert_eq!(**r.get(), 20);
    }

    #[test]
    fn pinned_reports_the_snapshot_generation() {
        let cell = Arc::new(HotSwap::new(Arc::new(10u64)));
        let mut r = cell.reader();
        let (generation, v) = r.pinned();
        assert_eq!((generation, **v), (0, 10));
        assert_eq!(r.generation(), 0);
        cell.swap(Arc::new(20));
        cell.swap(Arc::new(30));
        let (generation, v) = r.pinned();
        assert_eq!((generation, **v), (2, 30));
        assert_eq!(r.generation(), 2);
        // Stable while nothing swaps: the pin is the same snapshot.
        assert_eq!(r.pinned().0, 2);
    }

    #[test]
    fn concurrent_readers_never_observe_an_absent_value() {
        let cell = Arc::new(HotSwap::new(Arc::new(0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut r = cell.reader();
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = **r.get();
                    assert!(v >= last, "published values are monotone");
                    last = v;
                }
            }));
        }
        for v in 1..=1000u64 {
            cell.swap(Arc::new(v));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.generation(), 1000);
    }
}
