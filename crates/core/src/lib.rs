//! # synoptic-core
//!
//! Data model, synopsis representations, and exact error evaluators for
//! *range-aggregate summary statistics*, the foundation of the `synoptic`
//! workspace — a reproduction of Gilbert, Kotidis, Muthukrishnan, Strauss,
//! *"Optimal and Approximate Computation of Summary Statistics for Range
//! Aggregates"* (PODS 2001).
//!
//! ## Problem setting
//!
//! A one-dimensional attribute-value distribution is an array `A[0..n)` of
//! integer frequencies. A **range query** asks for `s[a,b] = Σ_{a≤i≤b} A[i]`.
//! A *synopsis* is a small summary (histogram buckets, wavelet coefficients,
//! …) from which an estimate `ŝ[a,b]` is produced. The quality objective used
//! throughout the paper — and throughout this workspace — is the sum-squared
//! error over **all** `n(n+1)/2` ranges:
//!
//! ```text
//! SSE = Σ_{0 ≤ a ≤ b < n} ( s[a,b] − ŝ[a,b] )²
//! ```
//!
//! ## What lives here
//!
//! * [`DataArray`] / [`PrefixSums`] — the input distribution and its exact
//!   `i128` prefix sums.
//! * [`RangeQuery`] — an inclusive `[lo, hi]` range over value indices.
//! * [`RangeEstimator`] — the trait every synopsis implements.
//! * [`Bucketing`] — contiguous bucket boundaries shared by all histograms.
//! * [`window::WindowOracle`] — O(1)-per-window cost statistics (after O(n)
//!   preprocessing) that power every dynamic program in `synoptic-hist`.
//! * [`histogram`] — the answering procedures of the paper: OPT-A (eq. 1),
//!   value histograms, SAP0, SAP1 and the NAIVE baseline.
//! * [`sse`] — exact SSE evaluators: an O(n²·query) brute-force reference, an
//!   O(n) closed form for value histograms, and an O(n + B²) decomposed
//!   evaluator for suffix/prefix (SAP-style) histograms.
//!
//! Construction algorithms live in `synoptic-hist`; wavelet synopses in
//! `synoptic-wavelet`; data generation in `synoptic-data`.
//!
//! ## Indexing conventions
//!
//! The paper is 1-based; this crate is 0-based. `A` has indices `0..n`,
//! prefix sums `P[0..=n]` with `P[0] = 0` and `s[a,b] = P[b+1] − P[a]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bucketing;
pub mod budget;
pub mod error;
pub mod estimator;
pub mod histogram;
pub mod outcome;
pub mod quantile;
pub mod query;
pub mod rng;
pub mod rounding;
pub mod segment;
pub mod sse;
pub mod swap;
pub mod window;

pub use array::{DataArray, PrefixSums};
pub use bucketing::Bucketing;
pub use budget::{Budget, CancelToken};
pub use error::{Result, SynopticError};
pub use estimator::{AnswerSource, RangeEstimator, SourcedEstimate};
pub use histogram::{
    bounded::BoundedHistogram, naive::NaiveEstimator, opta::OptAHistogram, sap0::Sap0Histogram,
    sap1::Sap1Histogram, value::ValueHistogram,
};
pub use outcome::{BuildAttempt, BuildOutcome};
pub use query::RangeQuery;
pub use rng::Rng;
pub use rounding::RoundingMode;
pub use segment::{SegmentLayout, SegmentedEstimator};
pub use swap::{HotSwap, HotSwapReader};
