//! Error types shared across the workspace.

use std::fmt;

/// Convenience alias used by every fallible API in the workspace.
pub type Result<T> = std::result::Result<T, SynopticError>;

/// Errors produced while validating inputs or constructing synopses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynopticError {
    /// The input array was empty where a non-empty array is required.
    EmptyInput,
    /// A query or parameter referenced indices outside `0..n`.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The array length the index was checked against.
        n: usize,
    },
    /// A range query had `lo > hi`.
    InvalidRange {
        /// Lower endpoint of the query.
        lo: usize,
        /// Upper endpoint of the query.
        hi: usize,
    },
    /// A bucket count was zero or exceeded the array length.
    InvalidBucketCount {
        /// Requested number of buckets.
        buckets: usize,
        /// Array length.
        n: usize,
    },
    /// Bucket boundaries were not strictly increasing, did not start at 0, or
    /// exceeded the array length.
    InvalidBoundaries(String),
    /// A storage budget was too small to hold even a single bucket or
    /// coefficient of the requested representation.
    BudgetTooSmall {
        /// Requested budget, in machine words.
        words: usize,
        /// Minimum number of words the representation requires.
        minimum: usize,
    },
    /// A numeric parameter was outside its valid domain (e.g. `ε ≤ 0`).
    InvalidParameter(String),
    /// A linear system arising in re-optimization was singular and could not
    /// be solved even with ridge fallback.
    SingularSystem(String),
    /// Prefix sums overflowed `i128` (astronomically large inputs).
    Overflow,
    /// A persisted synopsis failed integrity or semantic validation on load
    /// (bad magic, checksum mismatch, truncation, non-finite floats,
    /// inconsistent lengths, …). The bytes are never trusted after this.
    CorruptSynopsis {
        /// What was being loaded (file path, column name, or section).
        context: String,
        /// What exactly failed validation.
        detail: String,
    },
    /// A persisted artifact declared a format version this build does not
    /// understand.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Highest version this build supports.
        supported: u16,
    },
    /// An I/O failure in the persistence layer, with location context.
    Io {
        /// File or directory the operation touched.
        path: String,
        /// The underlying OS error rendered as text.
        detail: String,
    },
    /// A build was cancelled via a [`crate::CancelToken`]. This is explicit
    /// caller intent, so anytime builders propagate it instead of falling
    /// down the quality ladder.
    Cancelled,
    /// A build exceeded its wall-clock deadline and was abandoned at a
    /// checkpoint. Anytime builders treat this as a signal to fall back to
    /// a cheaper construction.
    DeadlineExceeded {
        /// Wall-clock milliseconds elapsed when the deadline fired.
        elapsed_ms: u64,
    },
    /// A build charged more DP cells (work units) than its budget allows.
    /// Anytime builders treat this as a signal to fall back to a cheaper
    /// construction.
    CellBudgetExceeded {
        /// Work units charged when the cap fired.
        used: u64,
        /// The configured cap.
        limit: u64,
    },
    /// A builder panicked and the panic was contained at the subsystem
    /// boundary (`catch_unwind`); the previous synopsis keeps serving.
    BuildPanicked {
        /// The panic payload rendered as text, when it was a string.
        detail: String,
    },
    /// The background worker pool serving a maintained column has shut
    /// down, so a rebuild could not be scheduled. Serving and ingest keep
    /// working from the last-good synopsis; only maintenance stops.
    WorkerUnavailable {
        /// The column whose rebuild could not be scheduled.
        column: String,
    },
    /// A write-ahead journal segment was written against a different base
    /// generation than the snapshot it is being replayed onto. Replaying it
    /// would apply deltas to state that never saw them (or saw them twice),
    /// so recovery refuses rather than guessing.
    WalGenerationMismatch {
        /// The base generation recorded in the segment header.
        wal_generation: u64,
        /// The committed generation of the recovered snapshot.
        snapshot_generation: u64,
    },
    /// A write-ahead journal failed integrity validation beyond the
    /// tolerated torn final record: a corrupt header, a mid-stream CRC
    /// mismatch, a broken LSN chain, or an out-of-range replay index.
    /// The journal's deltas cannot be trusted and replay stops.
    CorruptJournal {
        /// Which journal (segment file or column) failed.
        context: String,
        /// What exactly failed validation.
        detail: String,
    },
    /// A replication stream diverged irreparably from the receiver's
    /// state: a shipped segment does not anchor at the follower's applied
    /// mark (and no retry can bridge the gap), the reorder buffer
    /// overflowed, or the stream ended with unbridged segments pending.
    /// The follower refuses to apply and reports why — never a silent
    /// divergence.
    ReplicationDivergence {
        /// Which stream (column or peer) diverged.
        context: String,
        /// What exactly diverged.
        detail: String,
    },
    /// A write (shipped segment or heartbeat) was fenced: the sender's
    /// election term is older than the receiver's, so a newer leader has
    /// been elected since the sender last held the lease. The stale
    /// leader must stop writing, re-seed from the current leader, and
    /// rejoin as a follower. Both terms travel in the error — fencing is
    /// always refused with provenance, never silently dropped.
    StaleLeaderTerm {
        /// The term the fenced sender was still writing under.
        stale_term: u64,
        /// The receiver's current term (the newest leadership it has
        /// granted or observed).
        current_term: u64,
    },
    /// The serving tier refused a request under admission control: a
    /// bound on queue depth, rebuild lag, or a per-connection quota was
    /// exceeded. Mirrors [`SynopticError::ReplicationLagExceeded`]: the
    /// refusal always carries which bound fired, the observed value, and
    /// the configured limit — backpressure with provenance, never a bare
    /// "no".
    ServerOverloaded {
        /// Which bound refused (`"queue depth"`, `"rebuild lag"`, or
        /// `"connection quota"`).
        what: String,
        /// The observed value when the request was refused.
        observed: u64,
        /// The configured bound it exceeded.
        limit: u64,
    },
    /// A follower read was refused because its replica lags the leader
    /// beyond the configured staleness bound. The provenance fields say
    /// exactly how stale the replica was when it refused.
    ReplicationLagExceeded {
        /// The column whose read was refused.
        column: String,
        /// Records the leader has journaled but this replica has not
        /// applied.
        lag: u64,
        /// The configured maximum tolerated lag.
        max_lag: u64,
    },
}

impl fmt::Display for SynopticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyInput => write!(f, "input array must be non-empty"),
            Self::IndexOutOfBounds { index, n } => {
                write!(f, "index {index} out of bounds for array of length {n}")
            }
            Self::InvalidRange { lo, hi } => {
                write!(f, "invalid range query: lo={lo} > hi={hi}")
            }
            Self::InvalidBucketCount { buckets, n } => {
                write!(f, "bucket count {buckets} invalid for array of length {n}")
            }
            Self::InvalidBoundaries(msg) => write!(f, "invalid bucket boundaries: {msg}"),
            Self::BudgetTooSmall { words, minimum } => {
                write!(
                    f,
                    "storage budget of {words} words below the minimum of {minimum}"
                )
            }
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Self::SingularSystem(msg) => write!(f, "singular linear system: {msg}"),
            Self::Overflow => write!(f, "arithmetic overflow in prefix-sum computation"),
            Self::CorruptSynopsis { context, detail } => {
                write!(f, "corrupt synopsis ({context}): {detail}")
            }
            Self::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build supports up to {supported})"
                )
            }
            Self::Io { path, detail } => write!(f, "i/o error at {path}: {detail}"),
            Self::Cancelled => write!(f, "build cancelled"),
            Self::DeadlineExceeded { elapsed_ms } => {
                write!(f, "deadline exceeded after {elapsed_ms} ms")
            }
            Self::CellBudgetExceeded { used, limit } => {
                write!(f, "cell budget exceeded: {used} cells used, limit {limit}")
            }
            Self::BuildPanicked { detail } => write!(f, "builder panicked: {detail}"),
            Self::WorkerUnavailable { column } => {
                write!(f, "rebuild worker pool unavailable for column {column}")
            }
            Self::WalGenerationMismatch {
                wal_generation,
                snapshot_generation,
            } => {
                write!(
                    f,
                    "journal base generation {wal_generation} does not match \
                     recovered snapshot generation {snapshot_generation}"
                )
            }
            Self::CorruptJournal { context, detail } => {
                write!(f, "corrupt journal ({context}): {detail}")
            }
            Self::ReplicationDivergence { context, detail } => {
                write!(f, "replication divergence ({context}): {detail}")
            }
            Self::StaleLeaderTerm {
                stale_term,
                current_term,
            } => {
                write!(
                    f,
                    "write fenced: leader term {stale_term} is stale (current \
                     term is {current_term}); the deposed leader must re-seed \
                     and rejoin as a follower"
                )
            }
            Self::ServerOverloaded {
                what,
                observed,
                limit,
            } => {
                write!(
                    f,
                    "server refused: {what} {observed} exceeds the configured \
                     limit {limit}; back off and retry"
                )
            }
            Self::ReplicationLagExceeded {
                column,
                lag,
                max_lag,
            } => {
                write!(
                    f,
                    "replica of column {column} lags the leader by {lag} records \
                     (max tolerated {max_lag}); read refused"
                )
            }
        }
    }
}

impl std::error::Error for SynopticError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SynopticError, &str)> = vec![
            (SynopticError::EmptyInput, "non-empty"),
            (
                SynopticError::IndexOutOfBounds { index: 9, n: 4 },
                "index 9",
            ),
            (SynopticError::InvalidRange { lo: 3, hi: 1 }, "lo=3"),
            (
                SynopticError::InvalidBucketCount { buckets: 0, n: 10 },
                "bucket count 0",
            ),
            (SynopticError::InvalidBoundaries("x".into()), "boundaries"),
            (
                SynopticError::BudgetTooSmall {
                    words: 1,
                    minimum: 2,
                },
                "minimum of 2",
            ),
            (SynopticError::InvalidParameter("eps".into()), "eps"),
            (SynopticError::SingularSystem("Q".into()), "singular"),
            (SynopticError::Overflow, "overflow"),
            (
                SynopticError::CorruptSynopsis {
                    context: "col_a/gen-3.syn".into(),
                    detail: "payload CRC mismatch".into(),
                },
                "CRC mismatch",
            ),
            (
                SynopticError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (
                SynopticError::Io {
                    path: "/tmp/x".into(),
                    detail: "permission denied".into(),
                },
                "/tmp/x",
            ),
            (SynopticError::Cancelled, "cancelled"),
            (SynopticError::DeadlineExceeded { elapsed_ms: 42 }, "42 ms"),
            (
                SynopticError::CellBudgetExceeded {
                    used: 101,
                    limit: 100,
                },
                "limit 100",
            ),
            (
                SynopticError::BuildPanicked {
                    detail: "index out of range".into(),
                },
                "panicked",
            ),
            (
                SynopticError::WorkerUnavailable {
                    column: "price".into(),
                },
                "price",
            ),
            (
                SynopticError::WalGenerationMismatch {
                    wal_generation: 4,
                    snapshot_generation: 2,
                },
                "generation 4",
            ),
            (
                SynopticError::CorruptJournal {
                    context: "col-3.wal".into(),
                    detail: "record CRC mismatch".into(),
                },
                "col-3.wal",
            ),
            (
                SynopticError::ReplicationDivergence {
                    context: "price".into(),
                    detail: "segment starts at LSN 9 but 4 was expected".into(),
                },
                "LSN 9",
            ),
            (
                SynopticError::StaleLeaderTerm {
                    stale_term: 3,
                    current_term: 5,
                },
                "term 3 is stale",
            ),
            (
                SynopticError::ServerOverloaded {
                    what: "queue depth".into(),
                    observed: 65,
                    limit: 64,
                },
                "queue depth 65",
            ),
            (
                SynopticError::ReplicationLagExceeded {
                    column: "price".into(),
                    lag: 12,
                    max_lag: 8,
                },
                "lags the leader by 12",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<SynopticError>();
    }
}
