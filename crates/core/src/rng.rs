//! A small, dependency-free deterministic PRNG (SplitMix64 seeding a
//! xoshiro256**-style generator).
//!
//! The workspace must build and test fully offline, so `rand` is not
//! available; every stochastic component (dataset generation, sampling
//! estimators, randomized tests, fault-injection schedules) draws from this
//! generator instead. It is **not** cryptographic — it only needs to be
//! fast, well-mixed, and exactly reproducible per seed across platforms.

/// A deterministic 64-bit PRNG.
///
/// Seeded via SplitMix64 (so nearby seeds give unrelated streams), stepped
/// via xoshiro256**. Identical seeds produce identical streams on every
/// platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin flip.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform `u64` in `[0, bound)` via Lemire-style rejection; `bound`
    /// must be positive.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling on the top bits: unbiased and fast enough here.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform `usize` in the half-open range `[lo, hi)`; `lo < hi`.
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.bounded_u64((hi - lo) as u64) as usize
    }

    /// A uniform `i64` in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let draw = if span > u64::MAX as u128 {
            // Span exceeding u64: combine two draws (not hit in practice).
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span
        } else {
            self.bounded_u64(span as u64) as u128
        };
        (lo as i128 + draw as i128) as i64
    }

    /// A uniform `u128` in the inclusive range `[1, hi]`.
    #[inline]
    pub fn u128_in_1(&mut self, hi: u128) -> u128 {
        assert!(hi >= 1, "empty range [1, {hi}]");
        if hi <= u64::MAX as u128 {
            1 + self.bounded_u64(hi as u64) as u128
        } else {
            let wide = (self.next_u64() as u128) << 64 | self.next_u64() as u128;
            1 + wide % hi
        }
    }

    /// A uniform `f64` in `[lo, hi)`; `lo < hi`.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// A fresh generator derived from this one (for splitting streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        let first: Vec<u64> = (0..8).map(|_| Rng::new(42).next_u64()).collect();
        let other: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(first[0], other[0]);
    }

    #[test]
    fn f64_is_in_unit_interval_and_covers_it() {
        let mut r = Rng::new(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn bounded_draws_respect_bounds_and_hit_everything() {
        let mut r = Rng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.usize_in(0, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = r.i64_in(-5, 5);
            assert!((-5..=5).contains(&v));
            let u = r.u128_in_1(17);
            assert!((1..=17).contains(&u));
            let f = r.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        // Degenerate singleton ranges.
        assert_eq!(r.i64_in(4, 4), 4);
        assert_eq!(r.u128_in_1(1), 1);
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = Rng::new(99);
        let heads = (0..10_000).filter(|_| r.bool()).count();
        assert!((4_500..=5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn mean_of_f64_is_half() {
        let mut r = Rng::new(3);
        let k = 50_000;
        let mean = (0..k).map(|_| r.f64()).sum::<f64>() / k as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fork_streams_diverge() {
        let mut r = Rng::new(11);
        let mut a = r.fork();
        let mut b = r.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic]
    fn empty_usize_range_panics() {
        Rng::new(0).usize_in(3, 3);
    }
}
