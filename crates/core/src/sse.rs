//! Exact sum-squared-error evaluators.
//!
//! The paper's quality metric is the SSE over **all** `n(n+1)/2` range
//! queries. Three evaluators are provided, from slowest-and-universal to
//! fastest-and-specialised:
//!
//! 1. [`sse_brute`] — O(n² · query cost), works for any
//!    [`RangeEstimator`]; the reference every other evaluator is tested
//!    against.
//! 2. [`sse_value_histogram`] — O(n) closed form for any estimator of the
//!    telescoping form `ŝ[a,b] = X[b+1] − X[a]` (DESIGN.md §4.4).
//! 3. [`sse_endpoint_decomposed`] — O(n + B) for bucket histograms whose
//!    inter-bucket error splits as `u(a) + v(b)` (OPT-A, SAP0, SAP1, A0).
//!
//! A fourth, [`sse_two_function`], covers estimators of the form
//! `ŝ[a,b] = f(b) − g(a)` (the range-optimal wavelet synopsis).

use crate::array::PrefixSums;
use crate::bucketing::Bucketing;
use crate::estimator::RangeEstimator;
use crate::query::RangeQuery;

/// Brute-force SSE over all ranges: O(n²) queries through the estimator's
/// public interface. Exact for any estimator; use for tests, small `n`, and
/// rounded answering procedures that break the closed forms.
pub fn sse_brute<E: RangeEstimator>(est: &E, ps: &PrefixSums) -> f64 {
    let n = ps.n();
    assert_eq!(est.n(), n, "estimator and data must agree on n");
    let mut sse = 0.0;
    for q in RangeQuery::all(n) {
        let d = ps.answer(q) as f64 - est.estimate(q);
        sse += d * d;
    }
    sse
}

/// SSE over a specific query workload rather than all ranges.
pub fn sse_workload<E: RangeEstimator>(est: &E, ps: &PrefixSums, queries: &[RangeQuery]) -> f64 {
    let mut sse = 0.0;
    for &q in queries {
        let d = ps.answer(q) as f64 - est.estimate(q);
        sse += d * d;
    }
    sse
}

/// Exact O(n) SSE for *telescoping* estimators `ŝ[a,b] = X[b+1] − X[a]`,
/// given the estimate prefix table `X[0..=n]`.
///
/// With `w_i = P[i] − X[i]` the error of query `[a,b]` is `w_{b+1} − w_a`,
/// and summing over all pairs `0 ≤ x < y ≤ n`:
///
/// ```text
/// SSE = (n+1)·Σ w² − (Σ w)²
/// ```
pub fn sse_value_histogram(xprefix: &[f64], ps: &PrefixSums) -> f64 {
    let n = ps.n();
    assert_eq!(xprefix.len(), n + 1, "X table must have n+1 entries");
    let k = (n + 1) as f64;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    for (i, &x) in xprefix.iter().enumerate() {
        let w = ps.p(i) as f64 - x;
        s1 += w;
        s2 += w * w;
    }
    (k * s2 - s1 * s1).max(0.0)
}

/// Exact O(n) SSE for estimators of the form `ŝ[a,b] = f(b) − g(a)`.
///
/// `e[b]` must hold the *response-side* error `p(b) − f(b)` and `d[a]` the
/// *anchor-side* error `q(a) − g(a)`, where the true answer is
/// `s[a,b] = p(b) − q(a)` (e.g. `p(b) = P[b+1]`, `q(a) = P[a]`). The query
/// error is then `e[b] − d[a]` and
///
/// ```text
/// SSE = Σ_{a ≤ b} (e[b] − d[a])²
/// ```
///
/// computed with running moments of `d`.
pub fn sse_two_function(e: &[f64], d: &[f64]) -> f64 {
    assert_eq!(e.len(), d.len());
    let mut d1 = 0.0; // Σ_{a ≤ b} d[a]
    let mut d2 = 0.0; // Σ_{a ≤ b} d[a]²
    let mut sse = 0.0;
    for (b, &eb) in e.iter().enumerate() {
        d1 += d[b];
        d2 += d[b] * d[b];
        let cnt = (b + 1) as f64;
        sse += cnt * eb * eb - 2.0 * eb * d1 + d2;
    }
    sse.max(0.0)
}

/// Exact SSE for bucket histograms whose inter-bucket query error decomposes
/// as `u(a) + v(b)` (per-endpoint suffix/prefix errors), given those
/// per-position error arrays and the total intra-bucket SSE.
///
/// ```text
/// SSE = intra_total + Σ_{buck(a) < buck(b)} (u(a) + v(b))²
/// ```
///
/// The inter sum is computed in O(n + B) with per-bucket aggregates and a
/// left-to-right sweep.
pub fn sse_endpoint_decomposed(
    u: &[f64],
    v: &[f64],
    bucketing: &Bucketing,
    intra_total: f64,
) -> f64 {
    let nb = bucketing.num_buckets();
    assert_eq!(u.len(), bucketing.n());
    assert_eq!(v.len(), bucketing.n());
    let mut u1 = vec![0.0; nb];
    let mut u2 = vec![0.0; nb];
    let mut v1 = vec![0.0; nb];
    let mut v2 = vec![0.0; nb];
    let mut cnt = vec![0.0; nb];
    for b in 0..nb {
        for i in bucketing.left(b)..=bucketing.right(b) {
            u1[b] += u[i];
            u2[b] += u[i] * u[i];
            v1[b] += v[i];
            v2[b] += v[i] * v[i];
            cnt[b] += 1.0;
        }
    }
    // Σ_{p<q} [ U2(p)·cnt(q) + V2(q)·cnt(p) + 2·U1(p)·V1(q) ]
    let mut inter = 0.0;
    let (mut cum_u2, mut cum_cnt, mut cum_u1) = (0.0, 0.0, 0.0);
    for q in 0..nb {
        if q > 0 {
            inter += cum_u2 * cnt[q] + v2[q] * cum_cnt + 2.0 * cum_u1 * v1[q];
        }
        cum_u2 += u2[q];
        cum_cnt += cnt[q];
        cum_u1 += u1[q];
    }
    (intra_total + inter).max(0.0)
}

/// Mean squared error over all ranges (`SSE / #queries`), a convenience for
/// reports.
pub fn mse_from_sse(sse: f64, n: usize) -> f64 {
    sse / RangeQuery::count_all(n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::naive::NaiveEstimator;
    use crate::histogram::opta::OptAHistogram;
    use crate::histogram::sap0::Sap0Histogram;
    use crate::histogram::sap1::Sap1Histogram;
    use crate::histogram::value::ValueHistogram;
    use crate::rounding::RoundingMode;
    use crate::window::WindowOracle;

    fn datasets() -> Vec<Vec<i64>> {
        vec![
            vec![1, 3, 5, 11, 12, 13],
            vec![4, 9, 2, 7, 7, 1, 3, 3, 8, 0],
            vec![0, 0, 5, 0, 0],
            vec![100, 1, 1, 1, 1, 1, 1, 90],
        ]
    }

    #[test]
    fn value_histogram_closed_form_matches_brute() {
        for vals in datasets() {
            let ps = PrefixSums::from_values(&vals);
            let n = vals.len();
            for starts in [vec![0], vec![0, 2], vec![0, 1, 3]] {
                if *starts.last().unwrap() >= n {
                    continue;
                }
                let b = Bucketing::new(n, starts).unwrap();
                let h = ValueHistogram::with_averages(b, &ps, "t").unwrap();
                let brute = sse_brute(&h, &ps);
                let fast = sse_value_histogram(h.xprefix(), &ps);
                assert!(
                    (brute - fast).abs() <= 1e-6 * (1.0 + brute),
                    "vals={vals:?}: {brute} vs {fast}"
                );
            }
        }
    }

    #[test]
    fn naive_matches_single_bucket_value_histogram() {
        for vals in datasets() {
            let ps = PrefixSums::from_values(&vals);
            let nv = NaiveEstimator::new(&ps);
            let b = Bucketing::single(vals.len()).unwrap();
            let h = ValueHistogram::with_averages(b, &ps, "t").unwrap();
            let a = sse_brute(&nv, &ps);
            let c = sse_value_histogram(h.xprefix(), &ps);
            assert!((a - c).abs() <= 1e-6 * (1.0 + a));
        }
    }

    #[test]
    fn endpoint_decomposition_matches_brute_for_sap0() {
        for vals in datasets() {
            let ps = PrefixSums::from_values(&vals);
            let oracle = WindowOracle::new(&ps);
            let n = vals.len();
            let b = Bucketing::new(n, vec![0, 2, n - 1]).unwrap();
            let h = Sap0Histogram::optimal_values(b.clone(), &ps).unwrap();
            // u(a) = σ_a − suff(buck(a)); v(b) = π_b − pref(buck(b)).
            let mut u = vec![0.0; n];
            let mut v = vec![0.0; n];
            let mut intra = 0.0;
            for bi in 0..b.num_buckets() {
                let (l, r) = (b.left(bi), b.right(bi));
                for a in l..=r {
                    u[a] = ps.range_sum(a, r) as f64 - h.suff()[bi];
                    v[a] = ps.range_sum(l, a) as f64 - h.pref()[bi];
                }
                intra += oracle.intra_avg_sse(l, r);
            }
            let fast = sse_endpoint_decomposed(&u, &v, &b, intra);
            let brute = sse_brute(&h, &ps);
            assert!(
                (fast - brute).abs() <= 1e-6 * (1.0 + brute),
                "vals={vals:?}: {fast} vs {brute}"
            );
        }
    }

    #[test]
    fn endpoint_decomposition_matches_brute_for_opta_unrounded() {
        for vals in datasets() {
            let ps = PrefixSums::from_values(&vals);
            let oracle = WindowOracle::new(&ps);
            let n = vals.len();
            let b = Bucketing::new(n, vec![0, 1, 3]).unwrap();
            let h = OptAHistogram::new(b.clone(), &ps, RoundingMode::None).unwrap();
            let mut u = vec![0.0; n];
            let mut v = vec![0.0; n];
            let mut intra = 0.0;
            for bi in 0..b.num_buckets() {
                let (l, r) = (b.left(bi), b.right(bi));
                let m = oracle.avg(l, r);
                for a in l..=r {
                    u[a] = ps.range_sum(a, r) as f64 - (r - a + 1) as f64 * m;
                    v[a] = ps.range_sum(l, a) as f64 - (a - l + 1) as f64 * m;
                }
                intra += oracle.intra_avg_sse(l, r);
            }
            let fast = sse_endpoint_decomposed(&u, &v, &b, intra);
            let brute = sse_brute(&h, &ps);
            assert!(
                (fast - brute).abs() <= 1e-6 * (1.0 + brute),
                "vals={vals:?}: {fast} vs {brute}"
            );
        }
    }

    #[test]
    fn two_function_evaluator_matches_direct_sum() {
        // Synthetic e/d arrays; compare against the O(n²) direct double loop.
        let e = [0.5, -1.0, 2.0, 0.0, 3.5];
        let d = [1.0, 0.0, -2.0, 0.5, 1.5];
        let mut direct = 0.0;
        for (b, &eb) in e.iter().enumerate() {
            for &da in &d[..=b] {
                let x: f64 = eb - da;
                direct += x * x;
            }
        }
        let fast = sse_two_function(&e, &d);
        assert!((fast - direct).abs() < 1e-9, "{fast} vs {direct}");
    }

    #[test]
    fn sap1_brute_no_worse_than_opta_unrounded_same_boundaries() {
        // SAP1 optimizes strictly more free parameters per bucket than the
        // average-only answering, so at fixed boundaries its SSE is ≤.
        for vals in datasets() {
            let ps = PrefixSums::from_values(&vals);
            let n = vals.len();
            let b = Bucketing::new(n, vec![0, 2]).unwrap();
            let h1 = Sap1Histogram::optimal_values(b.clone(), &ps).unwrap();
            let h0 = OptAHistogram::new(b, &ps, RoundingMode::None).unwrap();
            let s1 = sse_brute(&h1, &ps);
            let s0 = sse_brute(&h0, &ps);
            assert!(s1 <= s0 + 1e-6, "vals={vals:?}: SAP1 {s1} vs OPT-A {s0}");
        }
    }

    #[test]
    fn workload_sse_subset_of_all_ranges() {
        let vals = vec![4i64, 9, 2, 7];
        let ps = PrefixSums::from_values(&vals);
        let nv = NaiveEstimator::new(&ps);
        let all: Vec<_> = RangeQuery::all(4).collect();
        let w = sse_workload(&nv, &ps, &all);
        let b = sse_brute(&nv, &ps);
        assert!((w - b).abs() < 1e-9);
        let points: Vec<_> = (0..4).map(RangeQuery::point).collect();
        assert!(sse_workload(&nv, &ps, &points) <= b);
    }

    #[test]
    fn mse_divides_by_query_count() {
        assert_eq!(mse_from_sse(20.0, 4), 2.0); // 10 queries on n=4
    }

    #[test]
    fn perfect_estimator_has_zero_sse() {
        let vals = vec![2i64, 8, 1, 9, 4];
        let ps = PrefixSums::from_values(&vals);
        // n buckets of width 1 ⇒ every answer exact.
        let b = Bucketing::new(5, (0..5).collect()).unwrap();
        let h = ValueHistogram::with_averages(b, &ps, "exact").unwrap();
        assert!(sse_brute(&h, &ps) < 1e-9);
        assert!(sse_value_histogram(h.xprefix(), &ps) < 1e-9);
    }
}
