//! Provenance for synopsis *construction*, mirroring
//! [`crate::AnswerSource`] on the answering side.
//!
//! When a build runs under a [`crate::Budget`] and falls down the anytime
//! quality ladder (OPT-A → OPT-A-ROUNDED → SAP0/A0 → greedy), the synopsis
//! that comes back is still *valid* — it is simply a weaker tier than
//! requested. A [`BuildOutcome`] travels with the synopsis so that serving
//! layers, sweeps, and the CLI can observe which tier actually answered
//! and why the stronger tiers were abandoned. A degraded build **never
//! lies silently**.

use std::fmt;

use crate::error::SynopticError;

/// One abandoned rung of the fallback ladder: which method was attempted
/// and the budget error that stopped it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildAttempt {
    /// Method name of the abandoned attempt (e.g. `"OPT-A"`).
    pub method: String,
    /// The budget error that aborted it, rendered as text (stable across
    /// `Display` of [`SynopticError`]).
    pub error: String,
    /// Wall-clock milliseconds spent in this attempt.
    pub elapsed_ms: u64,
    /// DP cells (work units) this attempt charged before aborting.
    pub cells: u64,
}

/// Provenance of a completed build: which method actually produced the
/// synopsis, how far down the ladder the build fell, and what it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildOutcome {
    /// Method originally requested (e.g. `"OPT-A"`).
    pub requested: String,
    /// Method that actually completed and produced the returned synopsis.
    pub used: String,
    /// How many ladder rungs were abandoned before `used` completed
    /// (0 = the requested method itself completed).
    pub tier: usize,
    /// The abandoned attempts, in ladder order.
    pub attempts: Vec<BuildAttempt>,
    /// Total wall-clock milliseconds across all attempts.
    pub elapsed_ms: u64,
    /// Total DP cells charged across all attempts (including the
    /// successful one).
    pub cells: u64,
}

impl BuildOutcome {
    /// An outcome for a build that completed the requested method directly
    /// (no ladder descent).
    pub fn direct(method: impl Into<String>, elapsed_ms: u64, cells: u64) -> Self {
        let method = method.into();
        Self {
            requested: method.clone(),
            used: method,
            tier: 0,
            attempts: Vec::new(),
            elapsed_ms,
            cells,
        }
    }

    /// `true` unless the requested method itself completed.
    pub fn is_degraded(&self) -> bool {
        self.tier != 0
    }

    /// Classifies a budget error: `true` for errors that should trigger a
    /// descent down the ladder (deadline, cell cap), `false` for explicit
    /// cancellation (user intent: abort, don't substitute) and for
    /// genuine build failures (invalid input does not get better on a
    /// weaker rung of the *same* input… except when it does — see
    /// [`SynopticError::BudgetTooSmall`], which a coarser method can
    /// sometimes satisfy; callers decide that case explicitly).
    pub fn error_triggers_fallback(err: &SynopticError) -> bool {
        matches!(
            err,
            SynopticError::DeadlineExceeded { .. } | SynopticError::CellBudgetExceeded { .. }
        )
    }
}

impl fmt::Display for BuildOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_degraded() {
            write!(
                f,
                "degraded:{} (requested {}, fell {} tier{}, {} ms, {} cells)",
                self.used,
                self.requested,
                self.tier,
                if self.tier == 1 { "" } else { "s" },
                self.elapsed_ms,
                self.cells
            )
        } else {
            write!(
                f,
                "direct:{} ({} ms, {} cells)",
                self.used, self.elapsed_ms, self.cells
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_outcome_is_not_degraded() {
        let o = BuildOutcome::direct("SAP0", 12, 3456);
        assert!(!o.is_degraded());
        assert_eq!(o.requested, "SAP0");
        assert_eq!(o.used, "SAP0");
        assert_eq!(o.to_string(), "direct:SAP0 (12 ms, 3456 cells)");
    }

    #[test]
    fn degraded_outcome_reports_ladder_descent() {
        let o = BuildOutcome {
            requested: "OPT-A".into(),
            used: "SAP0".into(),
            tier: 2,
            attempts: vec![
                BuildAttempt {
                    method: "OPT-A".into(),
                    error: "deadline".into(),
                    elapsed_ms: 5,
                    cells: 100,
                },
                BuildAttempt {
                    method: "OPT-A-ROUNDED".into(),
                    error: "deadline".into(),
                    elapsed_ms: 3,
                    cells: 50,
                },
            ],
            elapsed_ms: 9,
            cells: 180,
        };
        assert!(o.is_degraded());
        let s = o.to_string();
        assert!(s.contains("degraded:SAP0"), "{s}");
        assert!(s.contains("requested OPT-A"), "{s}");
        assert!(s.contains("2 tiers"), "{s}");
    }

    #[test]
    fn fallback_trigger_classification() {
        assert!(BuildOutcome::error_triggers_fallback(
            &SynopticError::DeadlineExceeded { elapsed_ms: 1 }
        ));
        assert!(BuildOutcome::error_triggers_fallback(
            &SynopticError::CellBudgetExceeded { used: 2, limit: 1 }
        ));
        assert!(!BuildOutcome::error_triggers_fallback(
            &SynopticError::Cancelled
        ));
        assert!(!BuildOutcome::error_triggers_fallback(
            &SynopticError::EmptyInput
        ));
    }
}
