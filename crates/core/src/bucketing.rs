//! Contiguous bucket boundaries shared by every histogram representation.

use crate::error::{Result, SynopticError};

/// A partition of the index domain `0..n` into `B` contiguous, non-empty
/// buckets.
///
/// Stored as the sorted vector of bucket *start* indices
/// `starts = [0 = s₀ < s₁ < … < s_{B−1} < n]`; bucket `i` covers the
/// inclusive index range `[starts[i], starts[i+1] − 1]` (the last bucket ends
/// at `n − 1`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bucketing {
    n: usize,
    starts: Vec<usize>,
}

impl Bucketing {
    /// Creates a bucketing from bucket start indices over a domain of size
    /// `n`. Validates `starts[0] == 0`, strict monotonicity and bounds.
    pub fn new(n: usize, starts: Vec<usize>) -> Result<Self> {
        if n == 0 {
            return Err(SynopticError::EmptyInput);
        }
        if starts.first() != Some(&0) {
            return Err(SynopticError::InvalidBoundaries(
                "first bucket must start at index 0".into(),
            ));
        }
        for w in starts.windows(2) {
            if w[0] >= w[1] {
                return Err(SynopticError::InvalidBoundaries(format!(
                    "starts must be strictly increasing, got {} then {}",
                    w[0], w[1]
                )));
            }
        }
        if let Some(&last) = starts.last() {
            if last >= n {
                return Err(SynopticError::InvalidBoundaries(format!(
                    "bucket start {last} out of range for n={n}"
                )));
            }
        }
        Ok(Self { n, starts })
    }

    /// A single bucket covering the entire domain.
    pub fn single(n: usize) -> Result<Self> {
        Self::new(n, vec![0])
    }

    /// A bucketing from the *inclusive right endpoints* of each bucket
    /// (`ends.last()` must be `n − 1`), the form most DPs naturally produce.
    pub fn from_ends(n: usize, ends: &[usize]) -> Result<Self> {
        if ends.last() != Some(&(n.wrapping_sub(1))) {
            return Err(SynopticError::InvalidBoundaries(
                "last bucket must end at n−1".into(),
            ));
        }
        let mut starts = Vec::with_capacity(ends.len());
        starts.push(0usize);
        for &e in &ends[..ends.len() - 1] {
            starts.push(e + 1);
        }
        Self::new(n, starts)
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of buckets `B`.
    pub fn num_buckets(&self) -> usize {
        self.starts.len()
    }

    /// Start index (inclusive) of bucket `b`.
    pub fn left(&self, b: usize) -> usize {
        self.starts[b]
    }

    /// End index (inclusive) of bucket `b`.
    pub fn right(&self, b: usize) -> usize {
        if b + 1 < self.starts.len() {
            self.starts[b + 1] - 1
        } else {
            self.n - 1
        }
    }

    /// Width of bucket `b`.
    pub fn len(&self, b: usize) -> usize {
        self.right(b) - self.left(b) + 1
    }

    /// Buckets are never empty; pairing for [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the bucket containing position `i` (binary search, O(log B)).
    pub fn bucket_of(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        match self.starts.binary_search(&i) {
            Ok(b) => b,
            Err(ins) => ins - 1,
        }
    }

    /// Dense position → bucket map, for O(1) lookups in hot loops.
    pub fn position_map(&self) -> Vec<u32> {
        let mut map = vec![0u32; self.n];
        for b in 0..self.num_buckets() {
            for slot in &mut map[self.left(b)..=self.right(b)] {
                *slot = b as u32;
            }
        }
        map
    }

    /// Iterator over `(left, right)` inclusive index pairs of each bucket.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_buckets()).map(move |b| (self.left(b), self.right(b)))
    }

    /// The bucket start indices.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// An equi-width bucketing with `buckets` buckets (widths differ by at
    /// most one).
    pub fn equi_width(n: usize, buckets: usize) -> Result<Self> {
        if buckets == 0 || buckets > n {
            return Err(SynopticError::InvalidBucketCount { buckets, n });
        }
        let base = n / buckets;
        let extra = n % buckets;
        let mut starts = Vec::with_capacity(buckets);
        let mut pos = 0usize;
        for b in 0..buckets {
            starts.push(pos);
            pos += base + usize::from(b < extra);
        }
        Self::new(n, starts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Bucketing::new(0, vec![0]).is_err());
        assert!(Bucketing::new(5, vec![1, 3]).is_err()); // must start at 0
        assert!(Bucketing::new(5, vec![0, 3, 3]).is_err()); // strict
        assert!(Bucketing::new(5, vec![0, 5]).is_err()); // out of range
        assert!(Bucketing::new(5, vec![0, 2, 4]).is_ok());
        assert!(Bucketing::new(5, vec![]).is_err());
    }

    #[test]
    fn geometry() {
        let b = Bucketing::new(6, vec![0, 2, 4]).unwrap();
        assert_eq!(b.num_buckets(), 3);
        assert_eq!((b.left(0), b.right(0), b.len(0)), (0, 1, 2));
        assert_eq!((b.left(1), b.right(1), b.len(1)), (2, 3, 2));
        assert_eq!((b.left(2), b.right(2), b.len(2)), (4, 5, 2));
        assert!(!b.is_empty());
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn bucket_of_agrees_with_position_map() {
        let b = Bucketing::new(10, vec![0, 1, 5, 9]).unwrap();
        let map = b.position_map();
        for (i, &m) in map.iter().enumerate() {
            assert_eq!(b.bucket_of(i) as u32, m, "at {i}");
        }
        assert_eq!(b.bucket_of(0), 0);
        assert_eq!(b.bucket_of(4), 1);
        assert_eq!(b.bucket_of(5), 2);
        assert_eq!(b.bucket_of(9), 3);
    }

    #[test]
    fn from_ends_roundtrip() {
        let b = Bucketing::from_ends(7, &[2, 4, 6]).unwrap();
        assert_eq!(b.starts(), &[0, 3, 5]);
        assert!(Bucketing::from_ends(7, &[2, 4]).is_err()); // last ≠ n−1
    }

    #[test]
    fn single_bucket() {
        let b = Bucketing::single(4).unwrap();
        assert_eq!(b.num_buckets(), 1);
        assert_eq!((b.left(0), b.right(0)), (0, 3));
    }

    #[test]
    fn equi_width_covers_domain_with_balanced_widths() {
        for n in 1..30usize {
            for buckets in 1..=n {
                let b = Bucketing::equi_width(n, buckets).unwrap();
                assert_eq!(b.num_buckets(), buckets);
                let total: usize = (0..buckets).map(|i| b.len(i)).sum();
                assert_eq!(total, n);
                let min = (0..buckets).map(|i| b.len(i)).min().unwrap();
                let max = (0..buckets).map(|i| b.len(i)).max().unwrap();
                assert!(max - min <= 1);
            }
        }
        assert!(Bucketing::equi_width(3, 0).is_err());
        assert!(Bucketing::equi_width(3, 4).is_err());
    }
}
