//! The attribute-value distribution and its exact prefix sums.

use crate::error::{Result, SynopticError};
use crate::query::RangeQuery;

/// An attribute-value distribution: `A[i]` is the number of records whose
/// attribute equals the `i`-th domain value.
///
/// The paper assumes non-negative integral frequencies; this type accepts any
/// `i64` values (the construction algorithms remain correct), but the
/// pseudo-polynomial bounds of the paper are stated for non-negative data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataArray {
    values: Vec<i64>,
}

impl DataArray {
    /// Wraps a frequency vector. Fails on empty input.
    pub fn new(values: Vec<i64>) -> Result<Self> {
        if values.is_empty() {
            return Err(SynopticError::EmptyInput);
        }
        Ok(Self { values })
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The raw frequencies.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Frequency at index `i`.
    pub fn get(&self, i: usize) -> i64 {
        self.values[i]
    }

    /// Whether every frequency is non-negative (the paper's setting).
    pub fn is_non_negative(&self) -> bool {
        self.values.iter().all(|&v| v >= 0)
    }

    /// Total mass `s[0, n−1]` as `i128`.
    pub fn total(&self) -> i128 {
        self.values.iter().map(|&v| v as i128).sum()
    }

    /// Computes the exact prefix sums of this array.
    pub fn prefix_sums(&self) -> PrefixSums {
        PrefixSums::from_values(&self.values)
    }

    /// Consumes the array, returning the underlying vector.
    pub fn into_values(self) -> Vec<i64> {
        self.values
    }
}

impl TryFrom<Vec<i64>> for DataArray {
    type Error = SynopticError;
    fn try_from(values: Vec<i64>) -> Result<Self> {
        Self::new(values)
    }
}

/// Exact prefix sums `P[0..=n]` with `P[0] = 0` and
/// `P[i] = A[0] + … + A[i−1]`, held as `i128` so that range sums of any
/// realistic dataset are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSums {
    p: Vec<i128>,
}

impl PrefixSums {
    /// Builds prefix sums from raw frequencies.
    pub fn from_values(values: &[i64]) -> Self {
        let mut p = Vec::with_capacity(values.len() + 1);
        p.push(0i128);
        let mut acc = 0i128;
        for &v in values {
            acc += v as i128;
            p.push(acc);
        }
        Self { p }
    }

    /// Domain size `n` (the underlying array length).
    pub fn n(&self) -> usize {
        self.p.len() - 1
    }

    /// `P[i]` for `i ∈ 0..=n`.
    pub fn p(&self, i: usize) -> i128 {
        self.p[i]
    }

    /// The full prefix-sum table `P[0..=n]`.
    pub fn table(&self) -> &[i128] {
        &self.p
    }

    /// Exact range sum `s[a,b] = Σ_{a≤i≤b} A[i]` for a 0-based inclusive
    /// range.
    pub fn range_sum(&self, a: usize, b: usize) -> i128 {
        debug_assert!(a <= b && b + 1 < self.p.len() + 1);
        self.p[b + 1] - self.p[a]
    }

    /// Exact answer to a [`RangeQuery`].
    pub fn answer(&self, q: RangeQuery) -> i128 {
        self.range_sum(q.lo, q.hi)
    }

    /// Total mass `s[0, n−1]`.
    pub fn total(&self) -> i128 {
        *self.p.last().expect("prefix table is never empty")
    }

    /// Average frequency over the inclusive window `[l, r]` as `f64`.
    pub fn window_avg(&self, l: usize, r: usize) -> f64 {
        self.range_sum(l, r) as f64 / (r - l + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(DataArray::new(vec![]), Err(SynopticError::EmptyInput));
    }

    #[test]
    fn basic_accessors() {
        let a = DataArray::new(vec![1, 3, 5, 11]).unwrap();
        assert_eq!(a.n(), 4);
        assert_eq!(a.get(2), 5);
        assert_eq!(a.values(), &[1, 3, 5, 11]);
        assert_eq!(a.total(), 20);
        assert!(a.is_non_negative());
        let b = DataArray::new(vec![1, -2]).unwrap();
        assert!(!b.is_non_negative());
    }

    #[test]
    fn try_from_vec() {
        let a: DataArray = vec![2, 4].try_into().unwrap();
        assert_eq!(a.n(), 2);
        let err: std::result::Result<DataArray, _> = Vec::<i64>::new().try_into();
        assert!(err.is_err());
    }

    #[test]
    fn prefix_sums_match_naive() {
        let vals = vec![1i64, 3, 5, 11, 12, 13];
        let ps = PrefixSums::from_values(&vals);
        assert_eq!(ps.n(), 6);
        assert_eq!(ps.p(0), 0);
        for i in 1..=6 {
            let naive: i128 = vals[..i].iter().map(|&v| v as i128).sum();
            assert_eq!(ps.p(i), naive);
        }
        for a in 0..6 {
            for b in a..6 {
                let naive: i128 = vals[a..=b].iter().map(|&v| v as i128).sum();
                assert_eq!(ps.range_sum(a, b), naive);
                assert_eq!(ps.answer(RangeQuery { lo: a, hi: b }), naive);
            }
        }
        assert_eq!(ps.total(), 45);
    }

    #[test]
    fn window_avg_is_exact_division() {
        let ps = PrefixSums::from_values(&[2, 4, 6]);
        assert_eq!(ps.window_avg(0, 2), 4.0);
        assert_eq!(ps.window_avg(1, 1), 4.0);
        assert_eq!(ps.window_avg(1, 2), 5.0);
    }

    #[test]
    fn negative_values_supported() {
        let ps = PrefixSums::from_values(&[-5, 3, -1]);
        assert_eq!(ps.range_sum(0, 2), -3);
        assert_eq!(ps.range_sum(0, 0), -5);
    }

    #[test]
    fn large_values_do_not_overflow() {
        let vals = vec![i64::MAX; 4];
        let ps = PrefixSums::from_values(&vals);
        assert_eq!(ps.total(), 4 * (i64::MAX as i128));
    }
}
