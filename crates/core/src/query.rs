//! Range queries over the attribute-value domain.

use crate::error::{Result, SynopticError};

/// An inclusive range `[lo, hi]` over 0-based value indices.
///
/// A *range-sum query* asks for `s[lo, hi] = Σ_{lo ≤ i ≤ hi} A[i]`. Point
/// (equality) queries are the special case `lo == hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RangeQuery {
    /// Lower endpoint (inclusive, 0-based).
    pub lo: usize,
    /// Upper endpoint (inclusive, 0-based).
    pub hi: usize,
}

impl RangeQuery {
    /// Creates a query, validating `lo ≤ hi`.
    pub fn new(lo: usize, hi: usize) -> Result<Self> {
        if lo > hi {
            return Err(SynopticError::InvalidRange { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// Creates a point (equality) query at index `i`.
    pub fn point(i: usize) -> Self {
        Self { lo: i, hi: i }
    }

    /// Creates a prefix query `[0, hi]`.
    pub fn prefix(hi: usize) -> Self {
        Self { lo: 0, hi }
    }

    /// Number of indices covered by the query.
    pub fn len(&self) -> usize {
        self.hi - self.lo + 1
    }

    /// A query always covers at least one index; provided for clippy-idiomatic
    /// pairing with [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the query lies within an array of length `n`.
    pub fn in_bounds(&self, n: usize) -> bool {
        self.hi < n
    }

    /// Validates the query against an array of length `n`.
    pub fn check_bounds(&self, n: usize) -> Result<()> {
        if self.hi >= n {
            Err(SynopticError::IndexOutOfBounds { index: self.hi, n })
        } else {
            Ok(())
        }
    }

    /// Iterator over every range query on a domain of size `n`, in
    /// lexicographic `(lo, hi)` order — `n(n+1)/2` queries in total.
    pub fn all(n: usize) -> impl Iterator<Item = RangeQuery> {
        (0..n).flat_map(move |lo| (lo..n).map(move |hi| RangeQuery { lo, hi }))
    }

    /// Total number of distinct range queries on a domain of size `n`.
    pub fn count_all(n: usize) -> u64 {
        let n = n as u64;
        n * (n + 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_order() {
        assert!(RangeQuery::new(2, 2).is_ok());
        assert!(RangeQuery::new(0, 5).is_ok());
        assert_eq!(
            RangeQuery::new(3, 1),
            Err(SynopticError::InvalidRange { lo: 3, hi: 1 })
        );
    }

    #[test]
    fn point_and_prefix_constructors() {
        assert_eq!(RangeQuery::point(4), RangeQuery { lo: 4, hi: 4 });
        assert_eq!(RangeQuery::prefix(7), RangeQuery { lo: 0, hi: 7 });
    }

    #[test]
    fn len_is_inclusive() {
        assert_eq!(RangeQuery::point(3).len(), 1);
        assert_eq!(RangeQuery { lo: 2, hi: 5 }.len(), 4);
        assert!(!RangeQuery::point(0).is_empty());
    }

    #[test]
    fn bounds_checking() {
        let q = RangeQuery { lo: 1, hi: 4 };
        assert!(q.in_bounds(5));
        assert!(!q.in_bounds(4));
        assert!(q.check_bounds(5).is_ok());
        assert_eq!(
            q.check_bounds(3),
            Err(SynopticError::IndexOutOfBounds { index: 4, n: 3 })
        );
    }

    #[test]
    fn all_enumerates_every_range_once() {
        let n = 6;
        let all: Vec<_> = RangeQuery::all(n).collect();
        assert_eq!(all.len() as u64, RangeQuery::count_all(n));
        // Strictly increasing lexicographic order implies no duplicates.
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
        for q in &all {
            assert!(q.lo <= q.hi && q.hi < n);
        }
    }

    #[test]
    fn count_all_matches_formula() {
        assert_eq!(RangeQuery::count_all(0), 0);
        assert_eq!(RangeQuery::count_all(1), 1);
        assert_eq!(RangeQuery::count_all(127), 127 * 128 / 2);
    }
}
