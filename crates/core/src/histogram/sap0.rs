//! The SAP0 histogram (paper §2.2.1): constant suffix/prefix summaries.

use crate::array::PrefixSums;
use crate::bucketing::Bucketing;
use crate::error::Result;
use crate::estimator::RangeEstimator;
use crate::histogram::BucketSums;
use crate::query::RangeQuery;
use crate::window::WindowOracle;

/// The SAP0 representation: each bucket `i` stores a suffix value `suff(i)`
/// and a prefix value `pref(i)`; an inter-bucket query `[a, b]` with
/// `p = buck(a) < q = buck(b)` is answered as
///
/// ```text
/// ŝ[a,b] = suff(p) + s[right(p)+1, left(q)−1] + pref(q)
/// ```
///
/// — note the answer depends only on the *buckets* of the endpoints, not on
/// `a` and `b` themselves. Intra-bucket queries are answered by
/// `(b − a + 1)·avg`, where the bucket average is *recovered* from the stored
/// values via `avg = (suff + pref) / (len + 1)` (so only `3B` words are
/// stored: boundaries, suffixes, prefixes — Theorem 7).
///
/// The optimal summary values are the bucket means of the suffix and prefix
/// sums (Lemma 5.2), which [`Sap0Histogram::optimal_values`] computes; the
/// Decomposition Lemma (5.1) then makes the total SSE bucket-additive, which
/// is what makes the O(n²B) construction in `synoptic-hist` possible.
#[derive(Debug, Clone, PartialEq)]
pub struct Sap0Histogram {
    bucketing: Bucketing,
    suff: Vec<f64>,
    pref: Vec<f64>,
    sums: BucketSums,
    posmap: Vec<u32>,
}

impl Sap0Histogram {
    /// Builds a SAP0 histogram with explicit summary values (for testing
    /// non-optimal values; normal use is
    /// [`optimal_values`](Self::optimal_values)).
    pub fn new(
        bucketing: Bucketing,
        ps: &PrefixSums,
        suff: Vec<f64>,
        pref: Vec<f64>,
    ) -> Result<Self> {
        use crate::error::SynopticError;
        let nb = bucketing.num_buckets();
        if suff.len() != nb || pref.len() != nb {
            return Err(SynopticError::InvalidParameter(format!(
                "expected {nb} suffix and prefix values, got {} and {}",
                suff.len(),
                pref.len()
            )));
        }
        let sums = BucketSums::new(&bucketing, ps);
        let posmap = bucketing.position_map();
        Ok(Self {
            bucketing,
            suff,
            pref,
            sums,
            posmap,
        })
    }

    /// Builds the SAP0 histogram with the provably optimal summary values:
    /// per-bucket averages of suffix sums and prefix sums (Lemma 5.2).
    pub fn optimal_values(bucketing: Bucketing, ps: &PrefixSums) -> Result<Self> {
        let oracle = WindowOracle::new(ps);
        let mut suff = Vec::with_capacity(bucketing.num_buckets());
        let mut pref = Vec::with_capacity(bucketing.num_buckets());
        for (l, r) in bucketing.iter() {
            suff.push(oracle.suffix_mean(l, r));
            pref.push(oracle.prefix_mean(l, r));
        }
        Self::new(bucketing, ps, suff, pref)
    }

    /// Stitches per-segment SAP0 partials (each over its segment-local
    /// domain, in segment order) into one histogram over the concatenated
    /// domain — the prefix-sum stitching merge operator.
    ///
    /// Bucket starts are shifted by the running segment offset; the stored
    /// `suff`/`pref` values are carried over **unchanged** (each is an exact
    /// `i128` moment of its bucket divided once by the bucket width, so the
    /// value is identical whether computed from segment-local or global
    /// prefix sums); the exact per-bucket sums are concatenated and their
    /// cumulative table rebased. The result is bit-identical to
    /// [`Sap0Histogram::optimal_values`] on the merged bucketing over the
    /// full array — the property `synoptic-hist`'s merge-equivalence suite
    /// asserts.
    pub fn stitch(parts: &[Sap0Histogram]) -> Result<Self> {
        use crate::error::SynopticError;
        if parts.is_empty() {
            return Err(SynopticError::EmptyInput);
        }
        let n: usize = parts.iter().map(|p| p.bucketing.n()).sum();
        let mut starts = Vec::new();
        let mut suff = Vec::new();
        let mut pref = Vec::new();
        let mut sums = Vec::new();
        let mut cum = vec![0i128];
        let mut offset = 0usize;
        let mut acc = 0i128;
        for part in parts {
            for &s in part.bucketing.starts() {
                starts.push(offset + s);
            }
            suff.extend_from_slice(&part.suff);
            pref.extend_from_slice(&part.pref);
            for &s in &part.sums.sums {
                sums.push(s);
                acc += s;
                cum.push(acc);
            }
            offset += part.bucketing.n();
        }
        let bucketing = Bucketing::new(n, starts)?;
        let posmap = bucketing.position_map();
        Ok(Self {
            bucketing,
            suff,
            pref,
            sums: BucketSums { sums, cum },
            posmap,
        })
    }

    /// The bucket boundaries.
    pub fn bucketing(&self) -> &Bucketing {
        &self.bucketing
    }

    /// Stored suffix values.
    pub fn suff(&self) -> &[f64] {
        &self.suff
    }

    /// Stored prefix values.
    pub fn pref(&self) -> &[f64] {
        &self.pref
    }

    /// Bucket average recovered from the stored values:
    /// `avg = (suff + pref) / (len + 1)`.
    ///
    /// Proof: `suff + pref = (1/len)·Σ_x A[x]·((x−l+1) + (r−x+1)) =
    /// (len+1)·avg` when the summary values are the optimal means.
    pub fn recovered_avg(&self, b: usize) -> f64 {
        (self.suff[b] + self.pref[b]) / (self.bucketing.len(b) + 1) as f64
    }

    /// Exact bucket average (used internally for the middle piece; equals
    /// [`recovered_avg`](Self::recovered_avg) when values are optimal).
    pub fn avg(&self, b: usize) -> f64 {
        self.sums.sums[b] as f64 / self.bucketing.len(b) as f64
    }
}

impl RangeEstimator for Sap0Histogram {
    fn n(&self) -> usize {
        self.bucketing.n()
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        let p = self.posmap[q.lo] as usize;
        let r = self.posmap[q.hi] as usize;
        if p == r {
            q.len() as f64 * self.avg(p)
        } else {
            self.suff[p] + self.sums.middle(p, r) as f64 + self.pref[r]
        }
    }

    fn storage_words(&self) -> usize {
        3 * self.bucketing.num_buckets()
    }

    fn method_name(&self) -> &str {
        "SAP0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(vals: &[i64], starts: Vec<usize>) -> (PrefixSums, Sap0Histogram) {
        let ps = PrefixSums::from_values(vals);
        let b = Bucketing::new(vals.len(), starts).unwrap();
        let h = Sap0Histogram::optimal_values(b, &ps).unwrap();
        (ps, h)
    }

    #[test]
    fn optimal_values_are_suffix_and_prefix_means() {
        let vals = vec![4i64, 9, 2, 7];
        let (ps, h) = setup(&vals, vec![0, 2]);
        // Bucket 0 = [0,1]: suffix sums s[0,1]=13, s[1,1]=9 ⇒ mean 11;
        // prefix sums s[0,0]=4, s[0,1]=13 ⇒ mean 8.5.
        assert_eq!(h.suff()[0], 11.0);
        assert_eq!(h.pref()[0], 8.5);
        // Bucket 1 = [2,3]: suffix sums 9, 7 ⇒ 8; prefix sums 2, 9 ⇒ 5.5.
        assert_eq!(h.suff()[1], 8.0);
        assert_eq!(h.pref()[1], 5.5);
        let _ = ps;
    }

    #[test]
    fn inter_bucket_answer_ignores_exact_endpoints() {
        let vals = vec![4i64, 9, 2, 7, 1, 8];
        let (_, h) = setup(&vals, vec![0, 2, 4]);
        // Queries [0,4] and [1,5] share no endpoints, but [0,4] and [1,4]
        // share buckets (0 → 2) and must get identical answers.
        let a = h.estimate(RangeQuery { lo: 0, hi: 4 });
        let b = h.estimate(RangeQuery { lo: 1, hi: 4 });
        assert_eq!(a, b);
        let c = h.estimate(RangeQuery { lo: 0, hi: 5 });
        assert_eq!(
            c,
            h.estimate(RangeQuery { lo: 1, hi: 5 }),
            "answers depend only on endpoint buckets"
        );
    }

    #[test]
    fn avg_is_recoverable_from_suff_and_pref() {
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let (_, h) = setup(&vals, vec![0, 3, 7]);
        for b in 0..3 {
            assert!(
                (h.recovered_avg(b) - h.avg(b)).abs() < 1e-9,
                "bucket {b}: {} vs {}",
                h.recovered_avg(b),
                h.avg(b)
            );
        }
    }

    #[test]
    fn per_bucket_suffix_errors_sum_to_zero() {
        // The heart of the Decomposition Lemma: Σ_{a ∈ bucket} (σ_a − suff) = 0.
        let vals = vec![7i64, 2, 9, 4, 4, 6, 1];
        let (ps, h) = setup(&vals, vec![0, 3, 5]);
        let b = h.bucketing().clone();
        for bi in 0..b.num_buckets() {
            let (l, r) = (b.left(bi), b.right(bi));
            let su: f64 = (l..=r)
                .map(|a| ps.range_sum(a, r) as f64 - h.suff()[bi])
                .sum();
            let pv: f64 = (l..=r)
                .map(|x| ps.range_sum(l, x) as f64 - h.pref()[bi])
                .sum();
            assert!(su.abs() < 1e-9, "suffix errors bucket {bi}");
            assert!(pv.abs() < 1e-9, "prefix errors bucket {bi}");
        }
    }

    #[test]
    fn validation_and_storage() {
        let ps = PrefixSums::from_values(&[1, 2, 3]);
        let b = Bucketing::new(3, vec![0, 1]).unwrap();
        assert!(Sap0Histogram::new(b.clone(), &ps, vec![0.0], vec![0.0, 0.0]).is_err());
        let h = Sap0Histogram::optimal_values(b, &ps).unwrap();
        assert_eq!(h.storage_words(), 6);
        assert_eq!(h.method_name(), "SAP0");
        assert_eq!(h.n(), 3);
    }

    #[test]
    fn stitched_partials_are_bit_identical_to_the_monolithic_build() {
        let vals = vec![7i64, 2, 9, 4, 4, 6, 1, 3, 8, 8, 0, 5];
        let ps = PrefixSums::from_values(&vals);
        // Segments [0,4], [5,8], [9,11] with their own local bucketings.
        let segs: [(usize, usize, Vec<usize>); 3] =
            [(0, 4, vec![0, 2]), (5, 8, vec![0, 1, 3]), (9, 11, vec![0])];
        let mut parts = Vec::new();
        let mut merged_starts = Vec::new();
        for (l, r, local_starts) in &segs {
            let local = &vals[*l..=*r];
            let lps = PrefixSums::from_values(local);
            let lb = Bucketing::new(local.len(), local_starts.clone()).unwrap();
            parts.push(Sap0Histogram::optimal_values(lb, &lps).unwrap());
            merged_starts.extend(local_starts.iter().map(|s| l + s));
        }
        let stitched = Sap0Histogram::stitch(&parts).unwrap();
        let mono =
            Sap0Histogram::optimal_values(Bucketing::new(vals.len(), merged_starts).unwrap(), &ps)
                .unwrap();
        assert_eq!(stitched, mono, "stitching must be exact, not approximate");
        for q in RangeQuery::all(vals.len()) {
            assert_eq!(
                stitched.estimate(q).to_bits(),
                mono.estimate(q).to_bits(),
                "{q:?}"
            );
        }
        assert!(Sap0Histogram::stitch(&[]).is_err());
    }

    #[test]
    fn intra_bucket_uses_average_answering() {
        let vals = vec![2i64, 4, 9, 1];
        let (_, h) = setup(&vals, vec![0, 2]);
        assert_eq!(h.estimate(RangeQuery { lo: 0, hi: 1 }), 6.0);
        assert_eq!(h.estimate(RangeQuery::point(0)), 3.0);
        assert_eq!(h.estimate(RangeQuery::point(2)), 5.0);
    }
}
