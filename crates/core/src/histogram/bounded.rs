//! Bounded histograms: deterministic error intervals for every range query.
//!
//! An AQP engine often needs not just an estimate but a *guarantee*. Storing
//! each bucket's minimum and maximum frequency alongside its average (4B
//! words) yields hard bounds on any range sum:
//!
//! * the middle (whole-bucket) piece of eq. (1) is exact as usual;
//! * an end piece covering `t` of a bucket's `L` cells lies in
//!   `[t·min, t·max] ∩ [sum − (L−t)·max, sum − (L−t)·min]` — the second
//!   interval uses the *complement* of the piece against the exact bucket
//!   total, and the intersection is often much tighter than either alone.
//!
//! This is an extension beyond the paper (which studies expected/SSE error),
//! motivated by its AQP scenario: the same bucket structure, upgraded with
//! two extra words, turns point estimates into certified intervals.

use crate::array::PrefixSums;
use crate::bucketing::Bucketing;
use crate::error::Result;
use crate::estimator::RangeEstimator;
use crate::histogram::BucketSums;
use crate::query::RangeQuery;

/// A histogram carrying per-bucket `min`/`max` in addition to the average.
/// Storage: `4B` words.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedHistogram {
    bucketing: Bucketing,
    sums: BucketSums,
    mins: Vec<i64>,
    maxs: Vec<i64>,
    posmap: Vec<u32>,
}

/// A certified interval for a range sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Guaranteed lower bound.
    pub lo: f64,
    /// Guaranteed upper bound.
    pub hi: f64,
}

impl Bounds {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a value lies within the interval (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        self.lo - 1e-9 <= v && v <= self.hi + 1e-9
    }
}

impl BoundedHistogram {
    /// Builds over the given boundaries, scanning the data once for the
    /// per-bucket extrema.
    pub fn build(bucketing: Bucketing, values: &[i64], ps: &PrefixSums) -> Result<Self> {
        use crate::error::SynopticError;
        if values.len() != bucketing.n() {
            return Err(SynopticError::InvalidParameter(format!(
                "expected {} values, got {}",
                bucketing.n(),
                values.len()
            )));
        }
        let sums = BucketSums::new(&bucketing, ps);
        let mut mins = Vec::with_capacity(bucketing.num_buckets());
        let mut maxs = Vec::with_capacity(bucketing.num_buckets());
        for (l, r) in bucketing.iter() {
            let window = &values[l..=r];
            mins.push(*window.iter().min().expect("buckets are non-empty"));
            maxs.push(*window.iter().max().expect("buckets are non-empty"));
        }
        let posmap = bucketing.position_map();
        Ok(Self {
            bucketing,
            sums,
            mins,
            maxs,
            posmap,
        })
    }

    /// The bucket boundaries.
    pub fn bucketing(&self) -> &Bucketing {
        &self.bucketing
    }

    /// `(min, max)` of bucket `b`.
    pub fn extrema(&self, b: usize) -> (i64, i64) {
        (self.mins[b], self.maxs[b])
    }

    /// Exact total of bucket `b`.
    pub fn bucket_sum(&self, b: usize) -> i128 {
        self.sums.sums[b]
    }

    /// Certified interval for a *piece* of bucket `b` covering `t` of its
    /// `len` cells.
    fn piece_bounds(&self, b: usize, t: usize) -> (f64, f64) {
        let len = self.bucketing.len(b);
        debug_assert!(t <= len);
        let (min, max) = (self.mins[b] as f64, self.maxs[b] as f64);
        let sum = self.sums.sums[b] as f64;
        let tf = t as f64;
        let rest = (len - t) as f64;
        let lo = (tf * min).max(sum - rest * max);
        let hi = (tf * max).min(sum - rest * min);
        (lo, hi)
    }

    /// Guaranteed bounds on `s[q.lo, q.hi]`.
    pub fn bounds(&self, q: RangeQuery) -> Bounds {
        let p = self.posmap[q.lo] as usize;
        let r = self.posmap[q.hi] as usize;
        if p == r {
            // Piece of a single bucket; if the query covers the whole
            // bucket the interval degenerates to the exact sum.
            let (lo, hi) = self.piece_bounds(p, q.len());
            Bounds { lo, hi }
        } else {
            let middle = self.sums.middle(p, r) as f64;
            let (slo, shi) = self.piece_bounds(p, self.bucketing.right(p) - q.lo + 1);
            let (plo, phi) = self.piece_bounds(r, q.hi - self.bucketing.left(r) + 1);
            Bounds {
                lo: slo + middle + plo,
                hi: shi + middle + phi,
            }
        }
    }
}

impl RangeEstimator for BoundedHistogram {
    fn n(&self) -> usize {
        self.bucketing.n()
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        // Midpoint of the certified interval: at least as accurate in the
        // worst case as the average-based answer, and never outside bounds.
        let b = self.bounds(q);
        (b.lo + b.hi) / 2.0
    }

    fn storage_words(&self) -> usize {
        4 * self.bucketing.num_buckets()
    }

    fn method_name(&self) -> &str {
        "BOUNDED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(vals: &[i64], starts: Vec<usize>) -> (PrefixSums, BoundedHistogram) {
        let ps = PrefixSums::from_values(vals);
        let b = Bucketing::new(vals.len(), starts).unwrap();
        let h = BoundedHistogram::build(b, vals, &ps).unwrap();
        (ps, h)
    }

    #[test]
    fn bounds_always_contain_the_truth() {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1];
        let (ps, h) = setup(&vals, vec![0, 4, 8]);
        for q in RangeQuery::all(vals.len()) {
            let truth = ps.answer(q) as f64;
            let b = h.bounds(q);
            assert!(b.contains(truth), "{q:?}: {truth} ∉ [{}, {}]", b.lo, b.hi);
            assert!(b.lo <= b.hi + 1e-9);
            // The midpoint estimate sits inside its own interval.
            assert!(b.contains(h.estimate(q)));
        }
    }

    #[test]
    fn whole_bucket_queries_have_zero_width() {
        let vals = vec![5i64, 1, 8, 8, 2, 9];
        let (ps, h) = setup(&vals, vec![0, 3]);
        for (l, r) in [(0usize, 2usize), (3, 5), (0, 5)] {
            let q = RangeQuery { lo: l, hi: r };
            let b = h.bounds(q);
            assert!(b.width() < 1e-9, "{q:?}: width {}", b.width());
            assert!((b.lo - ps.answer(q) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_buckets_give_exact_answers_everywhere() {
        let vals = vec![7i64; 10];
        let (ps, h) = setup(&vals, vec![0, 5]);
        for q in RangeQuery::all(10) {
            let b = h.bounds(q);
            assert!(b.width() < 1e-9);
            assert!((h.estimate(q) - ps.answer(q) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn complement_intersection_tightens_bounds() {
        // Bucket [0..3] = [10, 0, 0, 0]: a 3-cell suffix piece has naive
        // bounds [0, 30] but the complement bound gives [10−10, 10−0] =
        // [0, 10] ⇒ intersection [0, 10].
        let vals = vec![10i64, 0, 0, 0];
        let (_, h) = setup(&vals, vec![0]);
        let (lo, hi) = h.piece_bounds(0, 3);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 10.0, "complement must cap the piece at the bucket sum");
    }

    #[test]
    fn more_buckets_never_widen_intervals_on_average() {
        let vals: Vec<i64> = (0..24).map(|i| ((i * 37 + 5) % 50) as i64).collect();
        let ps = PrefixSums::from_values(&vals);
        let avg_width = |starts: Vec<usize>| -> f64 {
            let b = Bucketing::new(24, starts).unwrap();
            let h = BoundedHistogram::build(b, &vals, &ps).unwrap();
            let mut acc = 0.0;
            let mut cnt = 0.0;
            for q in RangeQuery::all(24) {
                acc += h.bounds(q).width();
                cnt += 1.0;
            }
            acc / cnt
        };
        let coarse = avg_width(vec![0, 12]);
        let fine = avg_width(vec![0, 6, 12, 18]);
        assert!(
            fine <= coarse + 1e-9,
            "finer partition should tighten: {fine} vs {coarse}"
        );
    }

    #[test]
    fn validation_and_accounting() {
        let vals = vec![1i64, 2, 3];
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(3, vec![0, 2]).unwrap();
        assert!(BoundedHistogram::build(b.clone(), &[1, 2], &ps).is_err());
        let h = BoundedHistogram::build(b, &vals, &ps).unwrap();
        assert_eq!(h.storage_words(), 8);
        assert_eq!(h.method_name(), "BOUNDED");
        assert_eq!(h.extrema(0), (1, 2));
        assert_eq!(h.extrema(1), (3, 3));
    }
}
