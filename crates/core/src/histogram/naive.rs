//! The NAIVE baseline: a single global average.

use crate::array::PrefixSums;
use crate::estimator::RangeEstimator;
use crate::query::RangeQuery;

/// The paper's NAIVE summary: answer every query `[a, b]` with
/// `(b − a + 1) · avg(A)`. Included "only to provide a reasonable upper bound
/// for SSE" (paper §4). Storage: one word.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveEstimator {
    n: usize,
    avg: f64,
}

impl NaiveEstimator {
    /// Builds the NAIVE estimator from prefix sums.
    pub fn new(ps: &PrefixSums) -> Self {
        Self {
            n: ps.n(),
            avg: ps.total() as f64 / ps.n() as f64,
        }
    }

    /// The stored global average.
    pub fn avg(&self) -> f64 {
        self.avg
    }
}

impl RangeEstimator for NaiveEstimator {
    fn n(&self) -> usize {
        self.n
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        q.len() as f64 * self.avg
    }

    fn storage_words(&self) -> usize {
        1
    }

    fn method_name(&self) -> &str {
        "NAIVE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_are_length_times_average() {
        let ps = PrefixSums::from_values(&[2, 4, 6, 8]);
        let e = NaiveEstimator::new(&ps);
        assert_eq!(e.avg(), 5.0);
        assert_eq!(e.estimate(RangeQuery { lo: 0, hi: 3 }), 20.0);
        assert_eq!(e.estimate(RangeQuery::point(1)), 5.0);
        assert_eq!(e.estimate(RangeQuery { lo: 1, hi: 2 }), 10.0);
        assert_eq!(e.storage_words(), 1);
        assert_eq!(e.method_name(), "NAIVE");
        assert_eq!(e.n(), 4);
    }

    #[test]
    fn whole_domain_query_is_exact() {
        let ps = PrefixSums::from_values(&[1, 1, 2, 3, 5, 8]);
        let e = NaiveEstimator::new(&ps);
        let q = RangeQuery { lo: 0, hi: 5 };
        assert!((e.estimate(q) - ps.answer(q) as f64).abs() < 1e-12);
    }
}
