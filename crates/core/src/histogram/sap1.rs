//! The SAP1 histogram (paper §2.2.2): linear suffix/prefix summaries.

use crate::array::PrefixSums;
use crate::bucketing::Bucketing;
use crate::error::Result;
use crate::estimator::RangeEstimator;
use crate::histogram::BucketSums;
use crate::query::RangeQuery;
use crate::window::WindowOracle;

/// The SAP1 representation: each bucket `i` stores four values
/// `suff'(i), suff(i), pref'(i), pref(i)`; the suffix piece of an
/// inter-bucket query with left endpoint `a` in bucket `p` is approximated by
///
/// ```text
/// (right(p) − a + 1)·suff'(p) + suff(p)
/// ```
///
/// and the prefix piece symmetrically. The optimal values are the
/// coefficients of the least-squares linear fits to the in-bucket suffix and
/// prefix sums, under which the regression residuals per bucket sum to zero,
/// so the Decomposition Lemma applies verbatim and the O(n²B) DP of
/// `synoptic-hist` is exactly optimal (Theorem 8).
///
/// Storage: `5B` words (boundaries + four values per bucket; the bucket
/// average needed for the middle piece and intra queries is recovered from
/// the stored values — Theorem 8).
#[derive(Debug, Clone, PartialEq)]
pub struct Sap1Histogram {
    bucketing: Bucketing,
    /// Slope of the suffix fit, indexed by bucket.
    suff_slope: Vec<f64>,
    /// Intercept of the suffix fit.
    suff_icpt: Vec<f64>,
    /// Slope of the prefix fit.
    pref_slope: Vec<f64>,
    /// Intercept of the prefix fit.
    pref_icpt: Vec<f64>,
    sums: BucketSums,
    posmap: Vec<u32>,
}

impl Sap1Histogram {
    /// Builds a SAP1 histogram with explicit fit coefficients.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bucketing: Bucketing,
        ps: &PrefixSums,
        suff_slope: Vec<f64>,
        suff_icpt: Vec<f64>,
        pref_slope: Vec<f64>,
        pref_icpt: Vec<f64>,
    ) -> Result<Self> {
        use crate::error::SynopticError;
        let nb = bucketing.num_buckets();
        for (label, v) in [
            ("suff'", &suff_slope),
            ("suff", &suff_icpt),
            ("pref'", &pref_slope),
            ("pref", &pref_icpt),
        ] {
            if v.len() != nb {
                return Err(SynopticError::InvalidParameter(format!(
                    "expected {nb} {label} values, got {}",
                    v.len()
                )));
            }
        }
        let sums = BucketSums::new(&bucketing, ps);
        let posmap = bucketing.position_map();
        Ok(Self {
            bucketing,
            suff_slope,
            suff_icpt,
            pref_slope,
            pref_icpt,
            sums,
            posmap,
        })
    }

    /// Builds the SAP1 histogram with the provably optimal values: the
    /// least-squares fits of `s[a, right]` against `right − a + 1` and of
    /// `s[left, b]` against `b − left + 1` per bucket.
    pub fn optimal_values(bucketing: Bucketing, ps: &PrefixSums) -> Result<Self> {
        let oracle = WindowOracle::new(ps);
        let nb = bucketing.num_buckets();
        let mut ss = Vec::with_capacity(nb);
        let mut si = Vec::with_capacity(nb);
        let mut pslope = Vec::with_capacity(nb);
        let mut pi = Vec::with_capacity(nb);
        for (l, r) in bucketing.iter() {
            let (_, a, b) = oracle.suffix_fit(l, r);
            ss.push(a);
            si.push(b);
            let (_, a, b) = oracle.prefix_fit(l, r);
            pslope.push(a);
            pi.push(b);
        }
        Self::new(bucketing, ps, ss, si, pslope, pi)
    }

    /// The bucket boundaries.
    pub fn bucketing(&self) -> &Bucketing {
        &self.bucketing
    }

    /// `(slope, intercept)` of the suffix fit of bucket `b`.
    pub fn suffix_coeffs(&self, b: usize) -> (f64, f64) {
        (self.suff_slope[b], self.suff_icpt[b])
    }

    /// `(slope, intercept)` of the prefix fit of bucket `b`.
    pub fn prefix_coeffs(&self, b: usize) -> (f64, f64) {
        (self.pref_slope[b], self.pref_icpt[b])
    }

    /// Exact bucket average (for the middle piece / intra queries).
    pub fn avg(&self, b: usize) -> f64 {
        self.sums.sums[b] as f64 / self.bucketing.len(b) as f64
    }

    /// Bucket average recovered from the stored fits. A least-squares line
    /// passes through the mean point, so the SAP0-style suffix/prefix means
    /// are `slope·(len+1)/2 + intercept`, and as in SAP0 their sum equals
    /// `(len+1)·avg`:
    ///
    /// ```text
    /// avg = (suff' + pref')/2 + (suff + pref)/(len + 1)
    /// ```
    pub fn recovered_avg(&self, b: usize) -> f64 {
        let len = self.bucketing.len(b) as f64;
        (self.suff_slope[b] + self.pref_slope[b]) / 2.0
            + (self.suff_icpt[b] + self.pref_icpt[b]) / (len + 1.0)
    }
}

impl RangeEstimator for Sap1Histogram {
    fn n(&self) -> usize {
        self.bucketing.n()
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        let p = self.posmap[q.lo] as usize;
        let r = self.posmap[q.hi] as usize;
        if p == r {
            q.len() as f64 * self.avg(p)
        } else {
            let ts = (self.bucketing.right(p) - q.lo + 1) as f64;
            let tp = (q.hi - self.bucketing.left(r) + 1) as f64;
            (ts * self.suff_slope[p] + self.suff_icpt[p])
                + self.sums.middle(p, r) as f64
                + (tp * self.pref_slope[r] + self.pref_icpt[r])
        }
    }

    fn storage_words(&self) -> usize {
        5 * self.bucketing.num_buckets()
    }

    fn method_name(&self) -> &str {
        "SAP1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(vals: &[i64], starts: Vec<usize>) -> (PrefixSums, Sap1Histogram) {
        let ps = PrefixSums::from_values(vals);
        let b = Bucketing::new(vals.len(), starts).unwrap();
        let h = Sap1Histogram::optimal_values(b, &ps).unwrap();
        (ps, h)
    }

    #[test]
    fn linear_data_is_fit_exactly() {
        // With constant data the suffix sums are exactly linear in t, so the
        // fits are exact and inter-bucket answers have zero end-piece error.
        let vals = vec![5i64; 8];
        let (ps, h) = setup(&vals, vec![0, 4]);
        for q in RangeQuery::all(8) {
            assert!(
                (h.estimate(q) - ps.answer(q) as f64).abs() < 1e-9,
                "query {q:?}"
            );
        }
    }

    #[test]
    fn per_bucket_residuals_sum_to_zero() {
        // Least-squares residuals with an intercept sum to zero — the
        // property that lets the Decomposition Lemma carry over to SAP1.
        let vals = vec![7i64, 2, 9, 4, 4, 6, 1, 8];
        let (ps, h) = setup(&vals, vec![0, 3, 6]);
        let b = h.bucketing().clone();
        for bi in 0..b.num_buckets() {
            let (l, r) = (b.left(bi), b.right(bi));
            let (a, c) = h.suffix_coeffs(bi);
            let res: f64 = (l..=r)
                .map(|x| ps.range_sum(x, r) as f64 - (a * (r - x + 1) as f64 + c))
                .sum();
            assert!(res.abs() < 1e-8, "suffix residuals bucket {bi}: {res}");
            let (a, c) = h.prefix_coeffs(bi);
            let res: f64 = (l..=r)
                .map(|x| ps.range_sum(l, x) as f64 - (a * (x - l + 1) as f64 + c))
                .sum();
            assert!(res.abs() < 1e-8, "prefix residuals bucket {bi}: {res}");
        }
    }

    #[test]
    fn sap1_end_pieces_never_worse_than_sap0_fit() {
        // The linear fit's RSS is ≤ the constant fit's RSS by definition of
        // least squares.
        use crate::window::WindowOracle;
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
        let ps = PrefixSums::from_values(&vals);
        let o = WindowOracle::new(&ps);
        for l in 0..8 {
            for r in l..8 {
                let (rss, _, _) = o.suffix_fit(l, r);
                assert!(rss <= o.suffix_var(l, r) + 1e-9, "window {l},{r}");
                let (rss, _, _) = o.prefix_fit(l, r);
                assert!(rss <= o.prefix_var(l, r) + 1e-9, "window {l},{r}");
            }
        }
    }

    #[test]
    fn avg_is_recoverable_from_suffix_fit() {
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let (_, h) = setup(&vals, vec![0, 3, 7]);
        for b in 0..3 {
            assert!(
                (h.recovered_avg(b) - h.avg(b)).abs() < 1e-9,
                "bucket {b}: {} vs {}",
                h.recovered_avg(b),
                h.avg(b)
            );
        }
    }

    #[test]
    fn validation_and_storage() {
        let ps = PrefixSums::from_values(&[1, 2, 3, 4]);
        let b = Bucketing::new(4, vec![0, 2]).unwrap();
        assert!(Sap1Histogram::new(
            b.clone(),
            &ps,
            vec![0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0]
        )
        .is_err());
        let h = Sap1Histogram::optimal_values(b, &ps).unwrap();
        assert_eq!(h.storage_words(), 10);
        assert_eq!(h.method_name(), "SAP1");
    }
}
