//! Histogram representations and their answering procedures.
//!
//! Each representation pairs a [`crate::Bucketing`] with per-bucket summary
//! statistics and a fixed query-answering procedure:
//!
//! | Type | Stored per bucket | Words | Paper section |
//! |------|-------------------|-------|---------------|
//! | [`opta::OptAHistogram`] | average (answering eq. 1, optional rounding) | `2B` | §2.1 |
//! | [`value::ValueHistogram`] | arbitrary value `x(i)` (answers `Σ x(buck(i))`) | `2B` | §4 (A0, POINT-OPT, NAIVE, reopt) |
//! | [`sap0::Sap0Histogram`] | `suff`, `pref` (avg recovered) | `3B` | §2.2.1 |
//! | [`sap1::Sap1Histogram`] | `suff'`, `suff`, `pref'`, `pref` | `5B` | §2.2.2 |
//! | [`naive::NaiveEstimator`] | single global average | `1` | §4 |
//! | [`bounded::BoundedHistogram`] | average + min + max (certified intervals) | `4B` | extension |
//!
//! Construction (choosing the boundaries and values optimally) lives in the
//! `synoptic-hist` crate; these types only *represent* and *answer*.

pub mod bounded;
pub mod naive;
pub mod opta;
pub mod sap0;
pub mod sap1;
pub mod value;

use crate::array::PrefixSums;
use crate::bucketing::Bucketing;

/// Exact per-bucket sums plus their cumulative table, the shared machinery
/// behind every answering procedure's "middle piece is exact" property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BucketSums {
    /// `sums[b]` = exact total of bucket `b`.
    pub sums: Vec<i128>,
    /// `cum[b]` = total of buckets `0..b` (so `cum[0] = 0`).
    pub cum: Vec<i128>,
}

impl BucketSums {
    pub fn new(bucketing: &Bucketing, ps: &PrefixSums) -> Self {
        let nb = bucketing.num_buckets();
        let mut sums = Vec::with_capacity(nb);
        let mut cum = Vec::with_capacity(nb + 1);
        cum.push(0i128);
        let mut acc = 0i128;
        for (l, r) in bucketing.iter() {
            let s = ps.range_sum(l, r);
            sums.push(s);
            acc += s;
            cum.push(acc);
        }
        Self { sums, cum }
    }

    /// Exact sum of buckets `p+1 ..= q−1` (the "middle piece" of an
    /// inter-bucket query spanning buckets `p < q`).
    #[inline]
    pub fn middle(&self, p: usize, q: usize) -> i128 {
        self.cum[q] - self.cum[p + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_sums_and_middle() {
        let vals = vec![1i64, 2, 3, 4, 5, 6];
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(6, vec![0, 2, 4]).unwrap();
        let bs = BucketSums::new(&b, &ps);
        assert_eq!(bs.sums, vec![3, 7, 11]);
        assert_eq!(bs.cum, vec![0, 3, 10, 21]);
        assert_eq!(bs.middle(0, 2), 7); // only bucket 1 between 0 and 2
        assert_eq!(bs.middle(0, 1), 0); // adjacent buckets, empty middle
        assert_eq!(bs.middle(1, 2), 0);
    }
}
