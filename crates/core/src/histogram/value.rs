//! Generic per-bucket-value histograms.
//!
//! A *value histogram* stores one real value `x(b)` per bucket and answers
//! `ŝ[a,b] = Σ_{i∈[a,b]} x(buck(i))` — equivalently, eq. (1) of the paper
//! with `avg(i)` replaced by `x(i)` and no rounding. This single
//! representation covers:
//!
//! * **OPT-A without rounding** — `x(b) = avg(b)`;
//! * **A0** (paper §4) — same values, boundaries from the cross-term-blind DP;
//! * **POINT-OPT** — `x(b)` = (weighted) bucket mean, boundaries from the
//!   V-optimal DP;
//! * **A-reopt** (paper §5) — `x` from the quadratic re-optimization;
//! * arbitrary heuristics (equi-width/depth, max-diff).
//!
//! Because the estimate telescopes through the per-position value prefix
//! table `X`, queries are O(1) and the *exact* all-ranges SSE has the O(n)
//! closed form implemented in [`crate::sse::sse_value_histogram`].

use crate::array::PrefixSums;
use crate::bucketing::Bucketing;
use crate::error::Result;
use crate::estimator::RangeEstimator;
use crate::query::RangeQuery;

/// A histogram storing one value per bucket, answering queries as the sum of
/// per-position values. Storage: `2B` words (`B − 1` interior boundaries plus
/// `B` values, rounded up to the paper's `2B` accounting).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueHistogram {
    bucketing: Bucketing,
    values: Vec<f64>,
    /// `x[i] = Σ_{j<i} value(buck(j))` for `i ∈ 0..=n`.
    xprefix: Vec<f64>,
    name: String,
}

impl ValueHistogram {
    /// Builds a value histogram from boundaries and per-bucket values.
    pub fn new(bucketing: Bucketing, values: Vec<f64>, name: impl Into<String>) -> Result<Self> {
        use crate::error::SynopticError;
        if values.len() != bucketing.num_buckets() {
            return Err(SynopticError::InvalidParameter(format!(
                "expected {} bucket values, got {}",
                bucketing.num_buckets(),
                values.len()
            )));
        }
        let n = bucketing.n();
        let mut xprefix = Vec::with_capacity(n + 1);
        xprefix.push(0.0);
        let mut acc = 0.0;
        for (b, &v) in values.iter().enumerate() {
            // `b` tracks the bucket index alongside its value.
            for _ in bucketing.left(b)..=bucketing.right(b) {
                acc += v;
                xprefix.push(acc);
            }
        }
        Ok(Self {
            bucketing,
            values,
            xprefix,
            name: name.into(),
        })
    }

    /// The classical histogram: per-bucket **averages** of the data.
    pub fn with_averages(
        bucketing: Bucketing,
        ps: &PrefixSums,
        name: impl Into<String>,
    ) -> Result<Self> {
        let values = bucketing
            .iter()
            .map(|(l, r)| ps.range_sum(l, r) as f64 / (r - l + 1) as f64)
            .collect();
        Self::new(bucketing, values, name)
    }

    /// The bucket boundaries.
    pub fn bucketing(&self) -> &Bucketing {
        &self.bucketing
    }

    /// The stored per-bucket values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The per-position value prefix table `X[0..=n]` (exposed for the O(n)
    /// SSE closed form).
    pub fn xprefix(&self) -> &[f64] {
        &self.xprefix
    }

    /// Renames the histogram (labels in reports).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl RangeEstimator for ValueHistogram {
    fn n(&self) -> usize {
        self.bucketing.n()
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        self.xprefix[q.hi + 1] - self.xprefix[q.lo]
    }

    fn storage_words(&self) -> usize {
        2 * self.bucketing.num_buckets()
    }

    fn method_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(vals: &[i64]) -> PrefixSums {
        PrefixSums::from_values(vals)
    }

    #[test]
    fn rejects_wrong_value_count() {
        let b = Bucketing::new(4, vec![0, 2]).unwrap();
        assert!(ValueHistogram::new(b, vec![1.0], "x").is_err());
    }

    #[test]
    fn estimate_is_sum_of_per_position_values() {
        let b = Bucketing::new(6, vec![0, 2, 4]).unwrap();
        let h = ValueHistogram::new(b, vec![1.0, 10.0, 100.0], "t").unwrap();
        assert_eq!(h.estimate(RangeQuery { lo: 0, hi: 5 }), 222.0);
        assert_eq!(h.estimate(RangeQuery { lo: 1, hi: 2 }), 11.0);
        assert_eq!(h.estimate(RangeQuery::point(4)), 100.0);
        assert_eq!(h.estimate(RangeQuery { lo: 3, hi: 4 }), 110.0);
    }

    #[test]
    fn averages_reproduce_paper_example() {
        // Paper §2.1.1: A = (1,3,5,11,…), buckets (1,3) and (5,11) have
        // averages 2 and 8.
        let p = ps(&[1, 3, 5, 11]);
        let b = Bucketing::new(4, vec![0, 2]).unwrap();
        let h = ValueHistogram::with_averages(b, &p, "OPT-A").unwrap();
        assert_eq!(h.values(), &[2.0, 8.0]);
        // Inter-bucket query [1, 3]: 3 ≈ 2, 5+11 ≈ 16 exactly ⇒ estimate 18.
        assert_eq!(h.estimate(RangeQuery { lo: 1, hi: 3 }), 18.0);
    }

    #[test]
    fn whole_bucket_queries_are_exact_for_averages() {
        let p = ps(&[4, 9, 2, 7, 7, 1, 3, 3]);
        let b = Bucketing::new(8, vec![0, 3, 5]).unwrap();
        let h = ValueHistogram::with_averages(b.clone(), &p, "OPT-A").unwrap();
        for bi in 0..b.num_buckets() {
            let q = RangeQuery {
                lo: b.left(bi),
                hi: b.right(bi),
            };
            assert!(
                (h.estimate(q) - p.answer(q) as f64).abs() < 1e-9,
                "bucket {bi}"
            );
        }
        // And so is any union of whole buckets.
        let q = RangeQuery { lo: 0, hi: 4 };
        assert!((h.estimate(q) - p.answer(q) as f64).abs() < 1e-9);
    }

    #[test]
    fn storage_and_name() {
        let b = Bucketing::new(4, vec![0, 2]).unwrap();
        let h = ValueHistogram::new(b, vec![0.0, 0.0], "A0").unwrap();
        assert_eq!(h.storage_words(), 4);
        assert_eq!(h.method_name(), "A0");
        let h = h.with_name("REOPT");
        assert_eq!(h.method_name(), "REOPT");
    }
}
