//! The classical OPT-A histogram: bucket averages with the eq. (1) answering
//! procedure, optionally rounding to integers.

use crate::array::PrefixSums;
use crate::bucketing::Bucketing;
use crate::error::Result;
use crate::estimator::RangeEstimator;
use crate::histogram::BucketSums;
use crate::query::RangeQuery;
use crate::rounding::{round_scaled, RoundingMode};

/// The paper's OPT-A representation (§2.1): each bucket stores its average;
/// a query `[a, b]` spanning buckets `p = buck(a) < q = buck(b)` is answered
/// as
///
/// ```text
/// ŝ[a,b] = [(right(p) − a + 1)·avg(p)] + s[right(p)+1, left(q)−1]
///        + [(b − left(q) + 1)·avg(q)]
/// ```
///
/// — the middle piece is *exact* because bucket totals are recoverable from
/// the stored averages. With [`RoundingMode::NearestInt`] the two end pieces
/// are rounded separately (DESIGN.md §4.2), making every estimate and error
/// term integral; with [`RoundingMode::None`] this representation coincides
/// with [`super::value::ValueHistogram::with_averages`].
///
/// Storage: `2B` words (boundaries + averages).
#[derive(Debug, Clone, PartialEq)]
pub struct OptAHistogram {
    bucketing: Bucketing,
    sums: BucketSums,
    posmap: Vec<u32>,
    mode: RoundingMode,
    name: String,
}

impl OptAHistogram {
    /// Builds an OPT-A histogram over the given boundaries.
    pub fn new(bucketing: Bucketing, ps: &PrefixSums, mode: RoundingMode) -> Result<Self> {
        let sums = BucketSums::new(&bucketing, ps);
        let posmap = bucketing.position_map();
        Ok(Self {
            bucketing,
            sums,
            posmap,
            mode,
            name: "OPT-A".to_string(),
        })
    }

    /// The bucket boundaries.
    pub fn bucketing(&self) -> &Bucketing {
        &self.bucketing
    }

    /// The rounding convention in force.
    pub fn mode(&self) -> RoundingMode {
        self.mode
    }

    /// Average of bucket `b`.
    pub fn avg(&self, b: usize) -> f64 {
        self.sums.sums[b] as f64 / self.bucketing.len(b) as f64
    }

    /// Exact total of bucket `b` (recovered from the stored average).
    pub fn bucket_sum(&self, b: usize) -> i128 {
        self.sums.sums[b]
    }

    /// Renames the histogram (labels in reports).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The *suffix piece* `[(right(p) − a + 1)·avg(p)]` for endpoint `a` in
    /// bucket `p`, under this histogram's rounding mode.
    #[inline]
    pub fn suffix_piece(&self, p: usize, a: usize) -> f64 {
        let t = (self.bucketing.right(p) - a + 1) as i128;
        self.piece(p, t)
    }

    /// The *prefix piece* `[(b − left(q) + 1)·avg(q)]` for endpoint `b` in
    /// bucket `q`.
    #[inline]
    pub fn prefix_piece(&self, q: usize, b: usize) -> f64 {
        let t = (b - self.bucketing.left(q) + 1) as i128;
        self.piece(q, t)
    }

    #[inline]
    fn piece(&self, bucket: usize, t: i128) -> f64 {
        let s = self.sums.sums[bucket];
        let len = self.bucketing.len(bucket) as i128;
        match self.mode {
            RoundingMode::None => (t * s) as f64 / len as f64,
            RoundingMode::NearestInt => round_scaled(t, s, len) as f64,
        }
    }
}

impl RangeEstimator for OptAHistogram {
    fn n(&self) -> usize {
        self.bucketing.n()
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        let p = self.posmap[q.lo] as usize;
        let r = self.posmap[q.hi] as usize;
        if p == r {
            // Intra-bucket: [(b − a + 1)·avg].
            self.piece(p, q.len() as i128)
        } else {
            let middle = self.sums.middle(p, r) as f64;
            self.suffix_piece(p, q.lo) + middle + self.prefix_piece(r, q.hi)
        }
    }

    fn storage_words(&self) -> usize {
        2 * self.bucketing.num_buckets()
    }

    fn method_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::value::ValueHistogram;

    fn setup(vals: &[i64], starts: Vec<usize>, mode: RoundingMode) -> (PrefixSums, OptAHistogram) {
        let ps = PrefixSums::from_values(vals);
        let b = Bucketing::new(vals.len(), starts).unwrap();
        let h = OptAHistogram::new(b, &ps, mode).unwrap();
        (ps, h)
    }

    #[test]
    fn unrounded_matches_value_histogram_with_averages() {
        let vals = vec![4i64, 9, 2, 7, 7, 1, 3, 3, 8, 0];
        let (ps, h) = setup(&vals, vec![0, 3, 7], RoundingMode::None);
        let b = Bucketing::new(vals.len(), vec![0, 3, 7]).unwrap();
        let v = ValueHistogram::with_averages(b, &ps, "ref").unwrap();
        for q in RangeQuery::all(vals.len()) {
            assert!(
                (h.estimate(q) - v.estimate(q)).abs() < 1e-9,
                "query {q:?}: {} vs {}",
                h.estimate(q),
                v.estimate(q)
            );
        }
    }

    #[test]
    fn rounded_estimates_are_integral() {
        let vals = vec![1i64, 3, 5, 11, 12, 13, 2];
        let (_, h) = setup(&vals, vec![0, 2, 5], RoundingMode::NearestInt);
        for q in RangeQuery::all(vals.len()) {
            let e = h.estimate(q);
            assert_eq!(e, e.round(), "estimate for {q:?} must be integral");
        }
    }

    #[test]
    fn rounded_is_close_to_unrounded() {
        let vals = vec![1i64, 3, 5, 11, 12, 13, 2];
        let (_, hu) = setup(&vals, vec![0, 2, 5], RoundingMode::None);
        let (_, hr) = setup(&vals, vec![0, 2, 5], RoundingMode::NearestInt);
        for q in RangeQuery::all(vals.len()) {
            // Two separately rounded end pieces differ by at most 1 in total.
            assert!(
                (hu.estimate(q) - hr.estimate(q)).abs() <= 1.0 + 1e-9,
                "query {q:?}"
            );
        }
    }

    #[test]
    fn middle_piece_is_exact() {
        // Query spanning all three buckets fully: only end pieces (whole
        // buckets) contribute, and whole-bucket pieces are exact.
        let vals = vec![5i64, 1, 7, 2, 9, 4];
        let (ps, h) = setup(&vals, vec![0, 2, 4], RoundingMode::NearestInt);
        let q = RangeQuery { lo: 0, hi: 5 };
        assert_eq!(h.estimate(q), ps.answer(q) as f64);
        // Suffix piece of a whole bucket equals the exact bucket total.
        assert_eq!(h.suffix_piece(1, 2), ps.range_sum(2, 3) as f64);
        assert_eq!(h.prefix_piece(1, 3), ps.range_sum(2, 3) as f64);
    }

    #[test]
    fn paper_worked_example_errors() {
        // Paper §2.1.1: A = (1,3,5,11), buckets (1,3),(5,11), avgs 2 and 8.
        // δ_{1,2} (0-based query [0,1]) = 4 − 4 = 0; δ_{1,1} = 1 − 2 = −1.
        let vals = vec![1i64, 3, 5, 11];
        let (ps, h) = setup(&vals, vec![0, 2], RoundingMode::NearestInt);
        let d =
            |lo, hi| ps.answer(RangeQuery { lo, hi }) as f64 - h.estimate(RangeQuery { lo, hi });
        assert_eq!(d(0, 0), -1.0);
        assert_eq!(d(0, 1), 0.0);
        assert_eq!(d(1, 1), 1.0);
        assert_eq!(d(2, 2), -3.0);
        assert_eq!(d(3, 3), 3.0);
        assert_eq!(d(2, 3), 0.0);
        // Inter-bucket [1,2]: suffix (3−2=1) + prefix (5−8=−3) ⇒ δ = … check:
        // true s[1,2] = 8; est = round(1·2) + round(1·8) = 10 ⇒ δ = −2.
        assert_eq!(d(1, 2), -2.0);
        // The paper's worked example reports E(4,2,4,10) = 36, but direct
        // enumeration of all 10 ranges gives Σδ² = 34 (the paper's printed
        // term list contains an arithmetic slip; its Λ = 4 and Λ₂ = 10 match
        // our computation exactly — see the companion test below).
        let sse: f64 = RangeQuery::all(4).map(|q| d(q.lo, q.hi).powi(2)).sum();
        assert_eq!(sse, 34.0);
        // Λ = Σ_t δ_{t, B_t^>} (suffix errors) and Λ₂ = Σ_t δ²_{t, B_t^>}.
        let b = h.bucketing();
        let (mut lam, mut lam2) = (0.0, 0.0);
        for t in 0..4 {
            let e = d(t, b.right(b.bucket_of(t)));
            lam += e;
            lam2 += e * e;
        }
        assert_eq!(lam, 4.0);
        assert_eq!(lam2, 10.0);
    }

    #[test]
    fn accessors() {
        let vals = vec![1i64, 3, 5, 11];
        let (_, h) = setup(&vals, vec![0, 2], RoundingMode::NearestInt);
        assert_eq!(h.avg(0), 2.0);
        assert_eq!(h.avg(1), 8.0);
        assert_eq!(h.bucket_sum(1), 16);
        assert_eq!(h.storage_words(), 4);
        assert_eq!(h.mode(), RoundingMode::NearestInt);
        assert_eq!(h.method_name(), "OPT-A");
        assert_eq!(h.with_name("OPT-A-ROUNDED").method_name(), "OPT-A-ROUNDED");
    }
}
