//! Quantile estimation from any range-sum synopsis.
//!
//! A synopsis that answers range sums also answers the inverse question —
//! *"which value is the φ-quantile?"* — by searching for the smallest index
//! whose estimated prefix mass reaches `φ·total`. Since some synopses
//! (wavelets, re-optimized histograms) can produce locally non-monotone
//! prefix estimates, the search runs over the **monotone envelope** (running
//! maximum) of the estimated prefixes, which preserves correctness for
//! genuinely non-negative data and degrades gracefully otherwise.

use crate::estimator::RangeEstimator;
use crate::query::RangeQuery;
use crate::{Result, SynopticError};

/// Estimates the φ-quantile index: the smallest `i` whose estimated prefix
/// mass `ŝ[0, i]` reaches `φ · ŝ[0, n−1]`.
///
/// Runs in O(n · query) (a linear sweep; prefix estimates are O(1)–O(B) per
/// query for every synopsis in this workspace).
pub fn quantile_index<E: RangeEstimator>(est: &E, phi: f64) -> Result<usize> {
    if !(0.0..=1.0).contains(&phi) {
        return Err(SynopticError::InvalidParameter(format!(
            "quantile fraction must be in [0, 1], got {phi}"
        )));
    }
    let n = est.n();
    let total = est.estimate(RangeQuery { lo: 0, hi: n - 1 }).max(0.0);
    let target = phi * total;
    let mut running = f64::NEG_INFINITY;
    for i in 0..n {
        let p = est.estimate(RangeQuery { lo: 0, hi: i });
        running = running.max(p); // monotone envelope
        if running >= target - 1e-9 {
            return Ok(i);
        }
    }
    Ok(n - 1)
}

/// Estimates several quantiles at once (single sweep).
pub fn quantile_indices<E: RangeEstimator>(est: &E, phis: &[f64]) -> Result<Vec<usize>> {
    for &phi in phis {
        if !(0.0..=1.0).contains(&phi) {
            return Err(SynopticError::InvalidParameter(format!(
                "quantile fraction must be in [0, 1], got {phi}"
            )));
        }
    }
    let n = est.n();
    let total = est.estimate(RangeQuery { lo: 0, hi: n - 1 }).max(0.0);
    // Sort targets, sweep once, then un-sort.
    let mut order: Vec<usize> = (0..phis.len()).collect();
    order.sort_by(|&a, &b| phis[a].total_cmp(&phis[b]));
    let mut out = vec![n - 1; phis.len()];
    let mut running = f64::NEG_INFINITY;
    let mut next = 0usize;
    for i in 0..n {
        let p = est.estimate(RangeQuery { lo: 0, hi: i });
        running = running.max(p);
        while next < order.len() && running >= phis[order[next]] * total - 1e-9 {
            out[order[next]] = i;
            next += 1;
        }
        if next == order.len() {
            break;
        }
    }
    Ok(out)
}

/// Exact quantile index from prefix sums (the ground truth the estimators
/// are compared against).
pub fn exact_quantile_index(ps: &crate::PrefixSums, phi: f64) -> Result<usize> {
    if !(0.0..=1.0).contains(&phi) {
        return Err(SynopticError::InvalidParameter(format!(
            "quantile fraction must be in [0, 1], got {phi}"
        )));
    }
    let n = ps.n();
    let total = ps.total();
    if total <= 0 {
        return Ok(0);
    }
    let target = phi * total as f64;
    for i in 0..n {
        if ps.p(i + 1) as f64 >= target - 1e-9 {
            return Ok(i);
        }
    }
    Ok(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::value::ValueHistogram;
    use crate::{Bucketing, PrefixSums};

    fn exact_hist(vals: &[i64]) -> (PrefixSums, ValueHistogram) {
        let ps = PrefixSums::from_values(vals);
        let b = Bucketing::new(vals.len(), (0..vals.len()).collect()).unwrap();
        let h = ValueHistogram::with_averages(b, &ps, "exact").unwrap();
        (ps, h)
    }

    #[test]
    fn exact_synopsis_recovers_exact_quantiles() {
        let vals = vec![10i64, 0, 0, 10, 0, 10, 50, 20];
        let (ps, h) = exact_hist(&vals);
        for phi in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let want = exact_quantile_index(&ps, phi).unwrap();
            let got = quantile_index(&h, phi).unwrap();
            assert_eq!(got, want, "phi={phi}");
        }
    }

    #[test]
    fn batch_matches_single() {
        let vals = vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let (_, h) = exact_hist(&vals);
        let phis = [0.9, 0.1, 0.5, 0.25];
        let batch = quantile_indices(&h, &phis).unwrap();
        for (i, &phi) in phis.iter().enumerate() {
            assert_eq!(batch[i], quantile_index(&h, phi).unwrap(), "phi={phi}");
        }
    }

    #[test]
    fn coarse_histogram_quantiles_are_near_the_truth() {
        // Heavy head: the median sits at index 0; even a 2-bucket histogram
        // should place it in the first bucket.
        let vals = vec![1000i64, 10, 10, 10, 10, 10, 10, 10];
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(8, vec![0, 4]).unwrap();
        let h = ValueHistogram::with_averages(b, &ps, "h").unwrap();
        let exact = exact_quantile_index(&ps, 0.5).unwrap();
        let est = quantile_index(&h, 0.5).unwrap();
        assert_eq!(exact, 0);
        assert!(est <= 2, "coarse estimate {est} strays too far");
    }

    #[test]
    fn degenerate_inputs() {
        let vals = vec![0i64, 0, 0];
        let ps = PrefixSums::from_values(&vals);
        assert_eq!(exact_quantile_index(&ps, 0.5).unwrap(), 0);
        let (_, h) = exact_hist(&vals);
        // Zero total ⇒ the first index reaches the (zero) target.
        assert_eq!(quantile_index(&h, 0.5).unwrap(), 0);
        assert!(quantile_index(&h, -0.1).is_err());
        assert!(quantile_index(&h, 1.5).is_err());
        assert!(exact_quantile_index(&ps, 2.0).is_err());
        assert!(quantile_indices(&h, &[0.5, 7.0]).is_err());
    }

    #[test]
    fn quantiles_are_monotone_in_phi() {
        let vals = vec![5i64, 9, 1, 7, 3, 8, 2, 6, 4, 4, 9, 1];
        let ps = PrefixSums::from_values(&vals);
        let b = Bucketing::new(12, vec![0, 4, 8]).unwrap();
        let h = ValueHistogram::with_averages(b, &ps, "h").unwrap();
        let mut prev = 0usize;
        for phi in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let i = quantile_index(&h, phi).unwrap();
            assert!(i >= prev, "phi={phi}: {i} < {prev}");
            prev = i;
        }
    }
}
