//! Partial, mergeable synopses: fixed segmentation of the index domain and
//! an estimator that answers cross-segment ranges by composing per-segment
//! partials.
//!
//! A column's domain `0..n` is split into `S` fixed, contiguous, equi-width
//! segments ([`SegmentLayout`]). Each segment carries its **own** synopsis
//! over the segment-local index space `0..len(s)` — a *partial*. A range
//! query `[a, b]` that crosses segment boundaries is answered by clipping it
//! against each overlapped segment, re-indexing the clip into segment-local
//! coordinates, and summing the partials' estimates
//! ([`SegmentedEstimator`]). Range sums are additive over a disjoint cover,
//! so composition introduces no error beyond what each partial already
//! carries.
//!
//! This is the substrate for incremental maintenance (rebuild only the
//! segments an update dirtied — see `synoptic-stream`) and for the explicit
//! merge operators that collapse partials back into one monolithic synopsis
//! (prefix-sum stitching in `synoptic-hist`, coefficient union +
//! re-truncation in `synoptic-wavelet`).

use std::sync::Arc;

use crate::bucketing::Bucketing;
use crate::error::{Result, SynopticError};
use crate::estimator::RangeEstimator;
use crate::query::RangeQuery;

/// A fixed partition of `0..n` into `S` contiguous equi-width segments
/// (widths differ by at most one; earlier segments get the extra element).
///
/// The layout is immutable for the lifetime of a segmented column: updates
/// map to segments through it, and partials are rebuilt against the same
/// bounds they were first built with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentLayout {
    bounds: Bucketing,
}

impl SegmentLayout {
    /// An equi-width layout of `segments` segments over a domain of size
    /// `n`. Fails when `segments` is zero or exceeds `n`.
    pub fn equi_width(n: usize, segments: usize) -> Result<Self> {
        Ok(Self {
            bounds: Bucketing::equi_width(n, segments)?,
        })
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.bounds.n()
    }

    /// Number of segments `S`.
    pub fn segments(&self) -> usize {
        self.bounds.num_buckets()
    }

    /// Inclusive `(left, right)` global-index bounds of segment `s`.
    pub fn bounds(&self, s: usize) -> (usize, usize) {
        (self.bounds.left(s), self.bounds.right(s))
    }

    /// Width of segment `s`.
    pub fn len(&self, s: usize) -> usize {
        self.bounds.len(s)
    }

    /// Segments are never empty; pairing for [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Segment containing global index `i` (O(log S)).
    pub fn segment_of(&self, i: usize) -> usize {
        self.bounds.bucket_of(i)
    }

    /// Iterator over each segment's inclusive global `(left, right)` bounds.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bounds.iter()
    }

    /// The segments `[a, b]` overlaps, as
    /// `(segment, local_lo, local_hi)` clips in segment-local coordinates.
    pub fn clips(&self, q: RangeQuery) -> Vec<(usize, usize, usize)> {
        let first = self.segment_of(q.lo);
        let last = self.segment_of(q.hi);
        (first..=last)
            .map(|s| {
                let (l, r) = self.bounds(s);
                (s, q.lo.max(l) - l, q.hi.min(r) - l)
            })
            .collect()
    }
}

/// A synopsis composed of per-segment partials: answers a range by summing
/// each overlapped segment's estimate of its clip.
///
/// Partials are shared `Arc`s so an incremental rebuild can reuse the clean
/// segments' synopses unchanged and allocate only the dirty ones.
#[derive(Clone)]
pub struct SegmentedEstimator {
    layout: SegmentLayout,
    parts: Vec<Arc<dyn RangeEstimator>>,
}

impl SegmentedEstimator {
    /// Composes partials over `layout`. Each partial must cover exactly its
    /// segment's local domain (`parts[s].n() == layout.len(s)`).
    pub fn new(layout: SegmentLayout, parts: Vec<Arc<dyn RangeEstimator>>) -> Result<Self> {
        if parts.len() != layout.segments() {
            return Err(SynopticError::InvalidParameter(format!(
                "expected {} partials, got {}",
                layout.segments(),
                parts.len()
            )));
        }
        for (s, part) in parts.iter().enumerate() {
            if part.n() != layout.len(s) {
                return Err(SynopticError::InvalidParameter(format!(
                    "partial {s} covers {} positions, segment holds {}",
                    part.n(),
                    layout.len(s)
                )));
            }
        }
        Ok(Self { layout, parts })
    }

    /// The segment layout.
    pub fn layout(&self) -> &SegmentLayout {
        &self.layout
    }

    /// The per-segment partials, in segment order.
    pub fn parts(&self) -> &[Arc<dyn RangeEstimator>] {
        &self.parts
    }
}

impl RangeEstimator for SegmentedEstimator {
    fn n(&self) -> usize {
        self.layout.n()
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        self.layout
            .clips(q)
            .into_iter()
            .map(|(s, lo, hi)| self.parts[s].estimate(RangeQuery { lo, hi }))
            .sum()
    }

    fn storage_words(&self) -> usize {
        self.parts.iter().map(|p| p.storage_words()).sum()
    }

    fn method_name(&self) -> &str {
        "SEGMENTED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PrefixSums;
    use crate::histogram::sap0::Sap0Histogram;

    fn exact_part(values: &[i64]) -> Arc<dyn RangeEstimator> {
        // One bucket per position: SAP0 over singleton buckets is exact.
        let n = values.len();
        let ps = PrefixSums::from_values(values);
        let b = Bucketing::new(n, (0..n).collect()).unwrap();
        Arc::new(Sap0Histogram::optimal_values(b, &ps).unwrap())
    }

    #[test]
    fn layout_geometry_and_segment_of() {
        let l = SegmentLayout::equi_width(10, 4).unwrap();
        assert_eq!(l.n(), 10);
        assert_eq!(l.segments(), 4);
        let total: usize = (0..4).map(|s| l.len(s)).sum();
        assert_eq!(total, 10);
        assert!(!l.is_empty());
        for s in 0..4 {
            let (lo, hi) = l.bounds(s);
            for i in lo..=hi {
                assert_eq!(l.segment_of(i), s);
            }
        }
        assert!(SegmentLayout::equi_width(3, 0).is_err());
        assert!(SegmentLayout::equi_width(3, 4).is_err());
    }

    #[test]
    fn clips_cover_exactly_the_query() {
        let l = SegmentLayout::equi_width(12, 3).unwrap();
        let clips = l.clips(RangeQuery { lo: 2, hi: 9 });
        assert_eq!(clips, vec![(0, 2, 3), (1, 0, 3), (2, 0, 1)]);
        let clips = l.clips(RangeQuery { lo: 5, hi: 6 });
        assert_eq!(clips, vec![(1, 1, 2)]);
    }

    #[test]
    fn composition_of_exact_partials_is_exact() {
        let vals: Vec<i64> = (0..17).map(|i| (i * i * 7 + 3 * i) % 23 - 5).collect();
        let ps = PrefixSums::from_values(&vals);
        for segments in [1usize, 2, 3, 5, 17] {
            let layout = SegmentLayout::equi_width(vals.len(), segments).unwrap();
            let parts: Vec<Arc<dyn RangeEstimator>> = layout
                .iter()
                .map(|(l, r)| exact_part(&vals[l..=r]))
                .collect();
            let est = SegmentedEstimator::new(layout, parts).unwrap();
            assert_eq!(est.n(), vals.len());
            for q in RangeQuery::all(vals.len()) {
                let exact = ps.range_sum(q.lo, q.hi) as f64;
                assert!(
                    (est.estimate(q) - exact).abs() < 1e-9,
                    "S={segments} q={q:?}"
                );
            }
        }
    }

    #[test]
    fn mismatched_partials_are_rejected() {
        let layout = SegmentLayout::equi_width(8, 2).unwrap();
        let short = exact_part(&[1, 2, 3]);
        assert!(SegmentedEstimator::new(layout.clone(), vec![short.clone()]).is_err());
        assert!(SegmentedEstimator::new(layout, vec![short.clone(), short]).is_err());
    }

    #[test]
    fn storage_is_the_sum_of_parts() {
        let layout = SegmentLayout::equi_width(6, 2).unwrap();
        let parts: Vec<Arc<dyn RangeEstimator>> = layout
            .iter()
            .map(|(l, r)| exact_part(&[1i64, 2, 3][..=(r - l)]))
            .collect();
        let est = SegmentedEstimator::new(layout, parts).unwrap();
        assert_eq!(est.storage_words(), 2 * 9);
        assert_eq!(est.method_name(), "SEGMENTED");
    }
}
