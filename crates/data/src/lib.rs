//! # synoptic-data
//!
//! Dataset and query-workload generators for the `synoptic` workspace.
//!
//! The paper's experiments (§4) use "a dataset containing 127 integer keys
//! created after doing random rounding (up or down with probability 1/2) of
//! floats that are Zipf distributed with tail exponent α = 1.8". The
//! [`zipf`] module regenerates that dataset from the recipe with a fixed
//! seed; [`generators`] adds the synthetic families used by the extended
//! sweeps (uniform, normal mixtures, steps); [`workload`] produces query
//! workloads (all ranges, uniform random ranges, points, prefixes).
//!
//! All generators are deterministic given a seed (the in-repo
//! [`synoptic_core::rng::Rng`]), so every figure in EXPERIMENTS.md is
//! exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod sample;
pub mod workload;
pub mod zipf;

pub use generators::{normal_mixture, steps, uniform};
pub use sample::SampleEstimator;
pub use workload::{all_ranges, dyadic_ranges, point_queries, prefix_queries, random_ranges};
pub use zipf::{paper_dataset, zipf_frequencies, RoundingStyle, ZipfConfig};
