//! Synthetic dataset families beyond the paper's Zipf recipe, used by the
//! extended sweeps (EXPERIMENTS.md, ablation A4).

use synoptic_core::rng::Rng;
use synoptic_core::DataArray;

/// Uniform integer frequencies in `[lo, hi]`.
pub fn uniform(n: usize, lo: i64, hi: i64, seed: u64) -> DataArray {
    assert!(n > 0 && lo <= hi);
    let mut rng = Rng::new(seed);
    let values = (0..n).map(|_| rng.i64_in(lo, hi)).collect();
    DataArray::new(values).expect("n > 0")
}

/// A mixture of `modes` Gaussian bumps over the domain, a common shape for
/// real attribute-value distributions (e.g. multimodal ages or prices).
/// Values are non-negative integers with peak height ≈ `peak`.
pub fn normal_mixture(n: usize, modes: usize, peak: f64, seed: u64) -> DataArray {
    assert!(n > 0 && modes > 0 && peak >= 0.0);
    let mut rng = Rng::new(seed);
    let centers: Vec<f64> = (0..modes).map(|_| rng.f64_in(0.0, n as f64)).collect();
    let widths: Vec<f64> = (0..modes)
        .map(|_| rng.f64_in(n as f64 / 40.0, n as f64 / 8.0).max(0.5))
        .collect();
    let values = (0..n)
        .map(|i| {
            let x = i as f64;
            let v: f64 = centers
                .iter()
                .zip(&widths)
                .map(|(&c, &w)| peak * (-((x - c) / w).powi(2) / 2.0).exp())
                .sum();
            v.round() as i64
        })
        .collect();
    DataArray::new(values).expect("n > 0")
}

/// A piecewise-constant "steps" distribution with `segments` plateaus of
/// random heights in `[0, peak]` — the best case for histograms (a B-bucket
/// histogram with B ≥ segments is exact), useful as a sanity anchor.
pub fn steps(n: usize, segments: usize, peak: i64, seed: u64) -> DataArray {
    assert!(n > 0 && segments > 0 && segments <= n && peak >= 0);
    let mut rng = Rng::new(seed);
    // Choose segment boundaries.
    let mut cuts: Vec<usize> = (1..n).collect();
    let mut chosen = Vec::with_capacity(segments - 1);
    for _ in 0..segments - 1 {
        let idx = rng.usize_in(0, cuts.len());
        chosen.push(cuts.swap_remove(idx));
    }
    chosen.sort_unstable();
    chosen.push(n);
    let mut values = Vec::with_capacity(n);
    let mut start = 0usize;
    for &end in &chosen {
        let h = rng.i64_in(0, peak);
        for _ in start..end {
            values.push(h);
        }
        start = end;
    }
    DataArray::new(values).expect("n > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let d = uniform(100, 5, 9, 3);
        assert_eq!(d.n(), 100);
        assert!(d.values().iter().all(|&v| (5..=9).contains(&v)));
        assert_eq!(d, uniform(100, 5, 9, 3));
        assert_ne!(d, uniform(100, 5, 9, 4));
    }

    #[test]
    fn normal_mixture_is_nonnegative_and_bounded() {
        let d = normal_mixture(200, 3, 100.0, 11);
        assert_eq!(d.n(), 200);
        assert!(d.is_non_negative());
        let max = *d.values().iter().max().unwrap();
        assert!(max <= 3 * 100 + 1, "max {max} exceeds modes·peak");
        assert!(max > 10, "mixture should have visible bumps, max {max}");
    }

    #[test]
    fn steps_has_requested_plateau_count() {
        let d = steps(50, 5, 100, 7);
        assert_eq!(d.n(), 50);
        let v = d.values();
        let plateaus = 1 + v.windows(2).filter(|w| w[0] != w[1]).count();
        // Adjacent segments may draw the same height, so ≤ segments.
        assert!(plateaus <= 5, "got {plateaus}");
        assert!(d.is_non_negative());
    }

    #[test]
    fn steps_single_segment_is_constant() {
        let d = steps(10, 1, 42, 0);
        let first = d.get(0);
        assert!(d.values().iter().all(|&v| v == first));
    }

    #[test]
    #[should_panic]
    fn steps_rejects_more_segments_than_keys() {
        let _ = steps(3, 4, 10, 0);
    }
}
