//! Row-sampling estimator — the classical alternative to histograms and
//! wavelets for selectivity estimation, included as an extended baseline.
//!
//! A uniform with-replacement sample of `m` *records* (not domain positions)
//! is drawn from the table; `s[a,b]` is estimated as
//! `N · |{sampled records with value ∈ [a,b]}| / m`. Unbiased, with standard
//! binomial error `N·√(p(1−p)/m)` per query — typically far worse per stored
//! word than the optimized histograms on skewed data, which is exactly why
//! the paper's line of work exists.

use synoptic_core::rng::Rng;
use synoptic_core::{DataArray, PrefixSums, RangeEstimator, RangeQuery, Result, SynopticError};

/// A uniform row sample as a range-sum estimator.
#[derive(Debug, Clone)]
pub struct SampleEstimator {
    n: usize,
    total: f64,
    /// Sorted sampled domain positions (one per sampled record).
    sample: Vec<u32>,
}

impl SampleEstimator {
    /// Draws `m` records uniformly with replacement (proportional to the
    /// frequencies) from the distribution. Requires non-negative data with
    /// positive total mass.
    pub fn build(data: &DataArray, ps: &PrefixSums, m: usize, seed: u64) -> Result<Self> {
        if m == 0 {
            return Err(SynopticError::InvalidParameter(
                "sample size must be positive".into(),
            ));
        }
        if !data.is_non_negative() || ps.total() <= 0 {
            return Err(SynopticError::InvalidParameter(
                "sampling requires non-negative data with positive total".into(),
            ));
        }
        let total = ps.total();
        let mut rng = Rng::new(seed);
        let mut sample: Vec<u32> = (0..m)
            .map(|_| {
                // Draw a record rank in [1, total] and map to its position
                // via binary search on the prefix table.
                let r = rng.u128_in_1(total as u128) as i128;
                let pos = ps.table().partition_point(|&p| p < r) - 1;
                pos as u32
            })
            .collect();
        sample.sort_unstable();
        Ok(Self {
            n: data.n(),
            total: total as f64,
            sample,
        })
    }

    /// Number of sampled records.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// Number of sampled records with position in `[lo, hi]` (O(log m)).
    fn hits(&self, lo: usize, hi: usize) -> usize {
        let a = self.sample.partition_point(|&p| (p as usize) < lo);
        let b = self.sample.partition_point(|&p| (p as usize) <= hi);
        b - a
    }

    /// A ~95% binomial half-width for the estimate of query `q`:
    /// `1.96·N·√(p̂(1−p̂)/m)`.
    pub fn error_halfwidth(&self, q: RangeQuery) -> f64 {
        let m = self.sample.len() as f64;
        let p = self.hits(q.lo, q.hi) as f64 / m;
        1.96 * self.total * (p * (1.0 - p) / m).sqrt()
    }
}

impl RangeEstimator for SampleEstimator {
    fn n(&self) -> usize {
        self.n
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        self.total * self.hits(q.lo, q.hi) as f64 / self.sample.len() as f64
    }

    fn storage_words(&self) -> usize {
        // One word per sampled value (positions fit a word each).
        self.sample.len()
    }

    fn method_name(&self) -> &str {
        "SAMPLE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(vals: &[i64], m: usize) -> (PrefixSums, SampleEstimator) {
        let d = DataArray::new(vals.to_vec()).unwrap();
        let ps = d.prefix_sums();
        let s = SampleEstimator::build(&d, &ps, m, 7).unwrap();
        (ps, s)
    }

    #[test]
    fn whole_domain_estimate_is_exact() {
        let (ps, s) = setup(&[5, 0, 9, 2, 2, 7], 50);
        let q = RangeQuery { lo: 0, hi: 5 };
        assert_eq!(s.estimate(q), ps.total() as f64);
        assert_eq!(s.sample_size(), 50);
        assert_eq!(s.storage_words(), 50);
    }

    #[test]
    fn estimates_converge_with_sample_size() {
        let vals = vec![100i64, 0, 0, 0, 0, 0, 0, 100];
        let d = DataArray::new(vals).unwrap();
        let ps = d.prefix_sums();
        let q = RangeQuery { lo: 0, hi: 0 }; // true answer 100 of 200
        let small = SampleEstimator::build(&d, &ps, 10, 3).unwrap();
        let big = SampleEstimator::build(&d, &ps, 10_000, 3).unwrap();
        let err_small = (small.estimate(q) - 100.0).abs();
        let err_big = (big.estimate(q) - 100.0).abs();
        assert!(err_big <= err_small.max(10.0), "{err_big} vs {err_small}");
        assert!(err_big < 10.0, "10k samples should nail a 50/50 split");
    }

    #[test]
    fn zero_mass_regions_estimate_zero_ish() {
        let (_, s) = setup(&[1000, 0, 0, 0, 0, 0, 0, 0], 100);
        assert_eq!(s.estimate(RangeQuery { lo: 1, hi: 7 }), 0.0);
        assert_eq!(s.estimate(RangeQuery { lo: 0, hi: 0 }), 1000.0);
    }

    #[test]
    fn sampling_is_proportional_to_mass() {
        // 90% of mass at position 2: ~90% of samples must land there.
        let (_, s) = setup(&[50, 50, 900], 2000);
        let hits2 = s.estimate(RangeQuery::point(2)) / 1000.0; // fraction
        assert!((hits2 - 0.9).abs() < 0.05, "fraction {hits2}");
    }

    #[test]
    fn error_halfwidth_is_sane() {
        let (ps, s) = setup(&[10, 20, 30, 40], 400);
        let q = RangeQuery { lo: 0, hi: 1 };
        let hw = s.error_halfwidth(q);
        assert!(hw > 0.0 && hw < ps.total() as f64);
        // The realized error should usually be below ~2 half-widths.
        let err = (s.estimate(q) - ps.answer(q) as f64).abs();
        assert!(err <= 2.0 * hw + 1e-9, "err {err} vs hw {hw}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let d = DataArray::new(vec![1, 2]).unwrap();
        let ps = d.prefix_sums();
        assert!(SampleEstimator::build(&d, &ps, 0, 1).is_err());
        let neg = DataArray::new(vec![-1, 2]).unwrap();
        assert!(SampleEstimator::build(&neg, &neg.prefix_sums(), 5, 1).is_err());
        let zero = DataArray::new(vec![0, 0]).unwrap();
        assert!(SampleEstimator::build(&zero, &zero.prefix_sums(), 5, 1).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = DataArray::new(vec![3, 1, 4, 1, 5]).unwrap();
        let ps = d.prefix_sums();
        let a = SampleEstimator::build(&d, &ps, 64, 9).unwrap();
        let b = SampleEstimator::build(&d, &ps, 64, 9).unwrap();
        let c = SampleEstimator::build(&d, &ps, 64, 10).unwrap();
        assert_eq!(a.sample, b.sample);
        assert_ne!(a.sample, c.sample);
    }
}
