//! The paper's Zipf dataset, regenerated from its recipe.
//!
//! Paper §4: *"We used a dataset containing 127 integer keys created after
//! doing random rounding, (up or down with probability 1/2) of floats that
//! are Zipf distribution with tail exponent α = 1.8."*
//!
//! Two details are under-specified in the paper and are exposed as options:
//!
//! * **Rounding style** — "up or down with probability 1/2" reads as a fair
//!   coin regardless of the fractional part ([`RoundingStyle::FairCoin`]);
//!   the statistically unbiased alternative (round up with probability equal
//!   to the fractional part) is also provided
//!   ([`RoundingStyle::Unbiased`]). The default follows the paper's wording.
//! * **Rank-to-key assignment** — whether the `i`-th key receives the `i`-th
//!   largest Zipf frequency (sorted, the default — it reproduces the paper's
//!   claimed ratios closely) or a random rank (permuted, reported in
//!   EXPERIMENTS.md as a sensitivity variant).

use synoptic_core::rng::Rng;
use synoptic_core::DataArray;

/// How fractional Zipf frequencies are converted to integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundingStyle {
    /// Round up or down with probability ½ each, as the paper states.
    #[default]
    FairCoin,
    /// Round up with probability equal to the fractional part (unbiased).
    Unbiased,
    /// Deterministic rounding to nearest (for reproducibility experiments).
    Nearest,
}

/// Configuration of the Zipf dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfConfig {
    /// Number of keys `n` (paper: 127).
    pub n: usize,
    /// Tail exponent `α` (paper: 1.8).
    pub alpha: f64,
    /// Approximate total mass (number of records); frequencies are scaled so
    /// the float masses sum to this before rounding. Paper unspecified;
    /// default 10 000.
    pub total_mass: f64,
    /// Rounding style (paper: fair coin).
    pub rounding: RoundingStyle,
    /// Whether to randomly permute the rank-to-key assignment.
    pub permute: bool,
    /// RNG seed for rounding and permutation.
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        Self {
            n: 127,
            alpha: 1.8,
            total_mass: 10_000.0,
            rounding: RoundingStyle::FairCoin,
            // The paper's recipe mentions no permutation, and the rank-sorted
            // frequency vector reproduces its claimed ratios much more
            // closely (see EXPERIMENTS.md); the permuted variant is reported
            // as a sensitivity check.
            permute: false,
            seed: 2001, // the paper's year; any fixed value works
        }
    }
}

/// Raw (float) Zipf frequencies for `n` ranks with exponent `alpha`, scaled
/// to sum to `total_mass`: `f_k ∝ 1 / k^α`, `k = 1..n`.
pub fn zipf_frequencies(n: usize, alpha: f64, total_mass: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one key");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    assert!(total_mass >= 0.0, "total mass must be non-negative");
    let raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-alpha)).collect();
    let z: f64 = raw.iter().sum();
    raw.iter().map(|f| f * total_mass / z).collect()
}

/// Generates a dataset per the paper's recipe.
pub fn paper_dataset(cfg: &ZipfConfig) -> DataArray {
    let mut rng = Rng::new(cfg.seed);
    let mut freqs = zipf_frequencies(cfg.n, cfg.alpha, cfg.total_mass);
    if cfg.permute {
        rng.shuffle(&mut freqs);
    }
    let values: Vec<i64> = freqs
        .iter()
        .map(|&f| round_value(f, cfg.rounding, &mut rng))
        .collect();
    DataArray::new(values).expect("n > 0 guaranteed by zipf_frequencies")
}

fn round_value(f: f64, style: RoundingStyle, rng: &mut Rng) -> i64 {
    debug_assert!(f >= 0.0);
    let floor = f.floor();
    let frac = f - floor;
    let up = match style {
        RoundingStyle::FairCoin => {
            if frac == 0.0 {
                false
            } else {
                rng.bool()
            }
        }
        RoundingStyle::Unbiased => rng.f64() < frac,
        RoundingStyle::Nearest => frac >= 0.5,
    };
    floor as i64 + i64::from(up)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_frequencies_are_normalized_and_decreasing() {
        let f = zipf_frequencies(127, 1.8, 10_000.0);
        assert_eq!(f.len(), 127);
        let total: f64 = f.iter().sum();
        assert!((total - 10_000.0).abs() < 1e-6);
        for w in f.windows(2) {
            assert!(w[0] > w[1], "Zipf frequencies must strictly decrease");
        }
        // Zipf shape: f_1/f_2 = 2^1.8.
        assert!((f[0] / f[1] - 2f64.powf(1.8)).abs() < 1e-9);
    }

    #[test]
    fn paper_dataset_is_deterministic_per_seed() {
        let cfg = ZipfConfig::default();
        let a = paper_dataset(&cfg);
        let b = paper_dataset(&cfg);
        assert_eq!(a, b);
        let c = paper_dataset(&ZipfConfig {
            seed: 7,
            ..cfg.clone()
        });
        assert_ne!(a, c, "different seeds must give different datasets");
    }

    #[test]
    fn paper_dataset_has_correct_shape() {
        let d = paper_dataset(&ZipfConfig::default());
        assert_eq!(d.n(), 127);
        assert!(d.is_non_negative());
        // Rounding moves the total by at most n/… — allow a loose band.
        let total = d.total() as f64;
        assert!(
            (total - 10_000.0).abs() < 200.0,
            "total mass {total} drifted too far from 10000"
        );
    }

    #[test]
    fn sorted_variant_is_monotone_after_rounding_up_to_one() {
        let d = paper_dataset(&ZipfConfig {
            permute: false,
            rounding: RoundingStyle::Nearest,
            ..ZipfConfig::default()
        });
        // With deterministic rounding the sorted dataset is non-increasing.
        let v = d.values();
        for w in v.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn fair_coin_rounding_never_moves_more_than_one() {
        let cfg = ZipfConfig::default();
        let floats = zipf_frequencies(cfg.n, cfg.alpha, cfg.total_mass);
        let d = paper_dataset(&ZipfConfig {
            permute: false,
            ..cfg
        });
        for (f, &v) in floats.iter().zip(d.values()) {
            assert!(
                (v as f64 - f).abs() <= 1.0,
                "rounded value {v} too far from float {f}"
            );
        }
    }

    #[test]
    fn unbiased_rounding_is_unbiased_in_expectation() {
        // Round 0.25 many times: mean should approach 0.25.
        let mut rng = Rng::new(42);
        let k = 20_000;
        let sum: i64 = (0..k)
            .map(|_| round_value(0.25, RoundingStyle::Unbiased, &mut rng))
            .sum();
        let mean = sum as f64 / k as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
        // Fair-coin rounding of 0.25 has mean 0.5 instead.
        let sum: i64 = (0..k)
            .map(|_| round_value(0.25, RoundingStyle::FairCoin, &mut rng))
            .sum();
        let mean = sum as f64 / k as f64;
        assert!((mean - 0.5).abs() < 0.02, "fair-coin mean {mean}");
    }

    #[test]
    fn integral_floats_never_round_up() {
        let mut rng = Rng::new(1);
        for style in [RoundingStyle::FairCoin, RoundingStyle::Unbiased] {
            for _ in 0..100 {
                assert_eq!(round_value(3.0, style, &mut rng), 3);
            }
        }
    }
}
