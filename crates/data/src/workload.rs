//! Query-workload generators.
//!
//! The paper's objective sums over *all* `n(n+1)/2` ranges; the harness also
//! evaluates restricted workloads (random ranges, points, prefixes) for the
//! extended experiments.

use synoptic_core::rng::Rng;
use synoptic_core::RangeQuery;

/// Every range query on a domain of size `n` (materialized; prefer
/// [`RangeQuery::all`] for streaming).
pub fn all_ranges(n: usize) -> Vec<RangeQuery> {
    RangeQuery::all(n).collect()
}

/// `count` uniformly random range queries: endpoints drawn uniformly from
/// the `n(n+1)/2` possible ranges.
pub fn random_ranges(n: usize, count: usize, seed: u64) -> Vec<RangeQuery> {
    assert!(n > 0);
    let mut rng = Rng::new(seed);
    (0..count)
        .map(|_| {
            // Uniform over unordered pairs {x ≤ y}: sample two endpoints and
            // order them, rejecting nothing (each unordered pair with x < y
            // has probability 2/n², pairs with x = y probability 1/n² — the
            // standard "uniform random range" used in selectivity papers).
            let a = rng.usize_in(0, n);
            let b = rng.usize_in(0, n);
            RangeQuery {
                lo: a.min(b),
                hi: a.max(b),
            }
        })
        .collect()
}

/// All `n` point (equality) queries.
pub fn point_queries(n: usize) -> Vec<RangeQuery> {
    (0..n).map(RangeQuery::point).collect()
}

/// All `n` prefix queries `[0, i]`.
pub fn prefix_queries(n: usize) -> Vec<RangeQuery> {
    (0..n).map(RangeQuery::prefix).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ranges_counts() {
        assert_eq!(all_ranges(5).len(), 15);
        assert_eq!(all_ranges(1), vec![RangeQuery { lo: 0, hi: 0 }]);
    }

    #[test]
    fn random_ranges_are_valid_and_deterministic() {
        let qs = random_ranges(10, 100, 5);
        assert_eq!(qs.len(), 100);
        for q in &qs {
            assert!(q.lo <= q.hi && q.hi < 10);
        }
        assert_eq!(qs, random_ranges(10, 100, 5));
        assert_ne!(qs, random_ranges(10, 100, 6));
    }

    #[test]
    fn random_ranges_cover_the_domain() {
        let qs = random_ranges(4, 2000, 9);
        // Every one of the 10 ranges should appear with ~200 expected hits.
        for want in RangeQuery::all(4) {
            assert!(qs.contains(&want), "range {want:?} never sampled");
        }
    }

    #[test]
    fn point_and_prefix_workloads() {
        let pts = point_queries(3);
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|q| q.lo == q.hi));
        let pre = prefix_queries(3);
        assert_eq!(pre.len(), 3);
        assert!(pre.iter().all(|q| q.lo == 0));
        assert_eq!(pre[2].hi, 2);
    }
}

/// All *dyadic* (hierarchically aligned) ranges on a domain of size `n`:
/// every block `[k·2^j, (k+1)·2^j − 1]` that fits. These are the
/// "hierarchically-limited range queries" for which prior work (ref. 9 of the
/// paper) had optimal constructions.
pub fn dyadic_ranges(n: usize) -> Vec<synoptic_core::RangeQuery> {
    let mut out = Vec::new();
    let mut width = 1usize;
    while width <= n {
        let mut lo = 0;
        while lo + width <= n {
            out.push(synoptic_core::RangeQuery {
                lo,
                hi: lo + width - 1,
            });
            lo += width;
        }
        width *= 2;
    }
    out
}

#[cfg(test)]
mod dyadic_tests {
    use super::dyadic_ranges;

    #[test]
    fn dyadic_count_is_sum_of_level_blocks() {
        // n = 8: 8 + 4 + 2 + 1 = 15 dyadic ranges.
        assert_eq!(dyadic_ranges(8).len(), 15);
        // Non-power-of-two domains only keep fully contained blocks.
        assert_eq!(dyadic_ranges(5).len(), 5 + 2 + 1);
    }

    #[test]
    fn dyadic_ranges_are_aligned() {
        for q in dyadic_ranges(16) {
            let w = q.hi - q.lo + 1;
            assert!(w.is_power_of_two());
            assert_eq!(q.lo % w, 0);
        }
    }
}
