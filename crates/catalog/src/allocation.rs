//! Cross-column storage-budget allocation.
//!
//! Given per-column error curves `sse_c(w)` (error at `w` words) and a
//! global budget `W`, choose per-column budgets `w_c` with `Σ w_c ≤ W`
//! minimizing `Σ weight_c · sse_c(w_c)`. Curves are evaluated on a caller-
//! supplied grid (constructions are expensive; the grid keeps the number of
//! builds small); allocation over the grid is solved **exactly** by a
//! knapsack-style DP, with a greedy marginal-gain allocator provided for
//! comparison and for very large catalogs.

use synoptic_core::{Result, SynopticError};

/// One column's error curve over the budget grid.
#[derive(Debug, Clone)]
pub struct ColumnCurve {
    /// Column label.
    pub name: String,
    /// Relative importance of this column's error.
    pub weight: f64,
    /// `(words, sse)` points, strictly increasing in words. A virtual
    /// `(0, sse_at_zero)` anchor (e.g. NAIVE-quality or worse) should be
    /// included by the caller if "spend nothing" is permissible.
    pub points: Vec<(usize, f64)>,
}

impl ColumnCurve {
    fn validate(&self) -> Result<()> {
        if self.points.is_empty() {
            return Err(SynopticError::InvalidParameter(format!(
                "column {} has an empty curve",
                self.name
            )));
        }
        for w in self.points.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(SynopticError::InvalidParameter(format!(
                    "column {}: grid not strictly increasing",
                    self.name
                )));
            }
        }
        if self.weight < 0.0 {
            return Err(SynopticError::InvalidParameter(format!(
                "column {}: negative weight",
                self.name
            )));
        }
        Ok(())
    }
}

/// The chosen allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationResult {
    /// `(column name, words, sse at that choice)`, in input order.
    pub choices: Vec<(String, usize, f64)>,
    /// Total words spent.
    pub total_words: usize,
    /// Total weighted SSE achieved.
    pub total_weighted_sse: f64,
}

/// Exact allocation by DP over `budget` words. `O(C · budget · grid)` time,
/// `O(C · budget)` memory.
pub fn allocate_budget(curves: &[ColumnCurve], budget: usize) -> Result<AllocationResult> {
    if curves.is_empty() {
        return Err(SynopticError::InvalidParameter("no columns".into()));
    }
    for c in curves {
        c.validate()?;
    }
    let cn = curves.len();
    // dp[c][w]: best weighted SSE using columns 0..c within w words; every
    // column must pick exactly one grid point (include a 0-word anchor in
    // the curve to allow skipping a column).
    const INF: f64 = f64::INFINITY;
    let mut dp = vec![vec![INF; budget + 1]; cn + 1];
    let mut pick: Vec<Vec<usize>> = vec![vec![usize::MAX; budget + 1]; cn];
    for slot in dp[0].iter_mut() {
        *slot = 0.0;
    }
    for (c, curve) in curves.iter().enumerate() {
        for w in 0..=budget {
            for (gi, &(words, sse)) in curve.points.iter().enumerate() {
                if words > w {
                    break; // grid sorted: later points cost even more
                }
                let prev = dp[c][w - words];
                if !prev.is_finite() {
                    continue;
                }
                let cand = prev + curve.weight * sse;
                if cand < dp[c + 1][w] {
                    dp[c + 1][w] = cand;
                    pick[c][w] = gi;
                }
            }
            // Monotone envelope: allowing unused words.
            if w > 0 && dp[c + 1][w - 1] < dp[c + 1][w] {
                dp[c + 1][w] = dp[c + 1][w - 1];
                pick[c][w] = pick[c][w - 1];
            }
        }
    }
    if !dp[cn][budget].is_finite() {
        return Err(SynopticError::BudgetTooSmall {
            words: budget,
            minimum: curves.iter().map(|c| c.points[0].0).sum(),
        });
    }
    // Reconstruct.
    let mut choices = vec![(String::new(), 0usize, 0.0); cn];
    let mut w = budget;
    // Walk the monotone envelope back to the exact cell used.
    for c in (0..cn).rev() {
        while w > 0 && pick[c][w] == pick[c][w - 1] && dp[c + 1][w] == dp[c + 1][w - 1] {
            w -= 1;
        }
        let gi = pick[c][w];
        debug_assert_ne!(gi, usize::MAX);
        let (words, sse) = curves[c].points[gi];
        choices[c] = (curves[c].name.clone(), words, sse);
        w -= words;
    }
    let total_words = choices.iter().map(|&(_, w, _)| w).sum();
    let total_weighted_sse = choices
        .iter()
        .zip(curves)
        .map(|(&(_, _, s), c)| c.weight * s)
        .sum();
    Ok(AllocationResult {
        choices,
        total_words,
        total_weighted_sse,
    })
}

/// Greedy marginal-gain allocation: start every column at its first grid
/// point, then repeatedly upgrade the column with the best weighted
/// SSE-reduction per extra word. Near-optimal for convex curves; exact DP
/// above is the reference.
pub fn allocate_budget_greedy(curves: &[ColumnCurve], budget: usize) -> Result<AllocationResult> {
    if curves.is_empty() {
        return Err(SynopticError::InvalidParameter("no columns".into()));
    }
    for c in curves {
        c.validate()?;
    }
    let mut idx: Vec<usize> = vec![0; curves.len()];
    let mut spent: usize = curves.iter().map(|c| c.points[0].0).sum();
    if spent > budget {
        return Err(SynopticError::BudgetTooSmall {
            words: budget,
            minimum: spent,
        });
    }
    loop {
        // Best upgrade across columns.
        let mut best: Option<(usize, f64)> = None; // (column, gain per word)
        for (c, curve) in curves.iter().enumerate() {
            if idx[c] + 1 >= curve.points.len() {
                continue;
            }
            let (w0, s0) = curve.points[idx[c]];
            let (w1, s1) = curve.points[idx[c] + 1];
            let extra = w1 - w0;
            if spent + extra > budget {
                continue;
            }
            let gain = curve.weight * (s0 - s1) / extra as f64;
            if gain > 0.0 && best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((c, gain));
            }
        }
        match best {
            Some((c, _)) => {
                spent += curves[c].points[idx[c] + 1].0 - curves[c].points[idx[c]].0;
                idx[c] += 1;
            }
            None => break,
        }
    }
    let choices: Vec<(String, usize, f64)> = curves
        .iter()
        .zip(&idx)
        .map(|(c, &i)| (c.name.clone(), c.points[i].0, c.points[i].1))
        .collect();
    let total_weighted_sse = curves
        .iter()
        .zip(&idx)
        .map(|(c, &i)| c.weight * c.points[i].1)
        .sum();
    Ok(AllocationResult {
        choices,
        total_words: spent,
        total_weighted_sse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(name: &str, weight: f64, pts: &[(usize, f64)]) -> ColumnCurve {
        ColumnCurve {
            name: name.into(),
            weight,
            points: pts.to_vec(),
        }
    }

    #[test]
    fn single_column_takes_the_best_affordable_point() {
        let c = curve("a", 1.0, &[(2, 100.0), (4, 25.0), (8, 4.0)]);
        let r = allocate_budget(std::slice::from_ref(&c), 5).unwrap();
        assert_eq!(r.choices[0], ("a".into(), 4, 25.0));
        let r = allocate_budget(std::slice::from_ref(&c), 100).unwrap();
        assert_eq!(r.choices[0].1, 8);
        assert!(allocate_budget(&[c], 1).is_err());
    }

    #[test]
    fn dp_prefers_the_column_with_more_to_gain() {
        // Column a: huge error, improves fast; column b: already fine.
        let a = curve("a", 1.0, &[(2, 1000.0), (6, 10.0)]);
        let b = curve("b", 1.0, &[(2, 5.0), (6, 4.0)]);
        let r = allocate_budget(&[a, b], 8).unwrap();
        assert_eq!(r.choices[0].1, 6, "a should get the upgrade: {r:?}");
        assert_eq!(r.choices[1].1, 2);
        assert_eq!(r.total_weighted_sse, 15.0);
    }

    #[test]
    fn weights_steer_the_allocation() {
        let a = curve("a", 0.01, &[(2, 1000.0), (6, 10.0)]);
        let b = curve("b", 100.0, &[(2, 5.0), (6, 4.0)]);
        let r = allocate_budget(&[a, b], 8).unwrap();
        // Weighted: upgrading b saves 100.0; upgrading a saves 9.9.
        assert_eq!(r.choices[1].1, 6, "{r:?}");
    }

    #[test]
    fn dp_beats_or_matches_greedy_and_both_respect_budget() {
        // Non-convex curve where greedy can stumble.
        let a = curve("a", 1.0, &[(1, 100.0), (2, 99.0), (10, 0.0)]);
        let b = curve("b", 1.0, &[(1, 50.0), (5, 10.0)]);
        for budget in [2usize, 6, 11, 12, 15] {
            let dp = allocate_budget(&[a.clone(), b.clone()], budget).unwrap();
            let gr = allocate_budget_greedy(&[a.clone(), b.clone()], budget).unwrap();
            assert!(dp.total_words <= budget);
            assert!(gr.total_words <= budget);
            assert!(
                dp.total_weighted_sse <= gr.total_weighted_sse + 1e-9,
                "budget {budget}: dp {} vs greedy {}",
                dp.total_weighted_sse,
                gr.total_weighted_sse
            );
        }
    }

    #[test]
    fn exhaustive_check_on_small_instances() {
        let a = curve("a", 2.0, &[(1, 30.0), (3, 12.0), (5, 2.0)]);
        let b = curve("b", 1.0, &[(2, 40.0), (4, 9.0)]);
        let cset = [a.clone(), b.clone()];
        for budget in 3..=9usize {
            let dp = allocate_budget(&cset, budget).unwrap();
            // Brute force over grid choices.
            let mut best = f64::INFINITY;
            for &(wa, sa) in &a.points {
                for &(wb, sb) in &b.points {
                    if wa + wb <= budget {
                        best = best.min(2.0 * sa + sb);
                    }
                }
            }
            assert!(
                (dp.total_weighted_sse - best).abs() < 1e-9,
                "budget {budget}: dp {} vs brute {best}",
                dp.total_weighted_sse
            );
        }
    }

    #[test]
    fn validation_errors() {
        assert!(allocate_budget(&[], 10).is_err());
        let empty = curve("x", 1.0, &[]);
        assert!(allocate_budget(&[empty], 10).is_err());
        let non_monotone = curve("x", 1.0, &[(4, 1.0), (2, 2.0)]);
        assert!(allocate_budget(&[non_monotone], 10).is_err());
        let neg = curve("x", -1.0, &[(2, 1.0)]);
        assert!(allocate_budget(&[neg], 10).is_err());
    }
}
