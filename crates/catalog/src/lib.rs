//! # synoptic-catalog
//!
//! The systems layer a database engine would wrap around the paper's
//! algorithms: a **statistics catalog** holding one synopsis per column,
//! persisted to disk at exactly the storage costs the paper's theorems
//! claim, plus a **budget allocator** that splits a global word budget
//! across columns to minimize total (weighted) error.
//!
//! * [`persist`] — serializable synopsis representations. Persistence is a
//!   direct exercise of the storage theorems: SAP0 stores boundaries +
//!   `suff`/`pref` only (3B words, Theorem 7) and *recovers* the bucket
//!   averages on load via `avg = (suff + pref)/(len + 1)`; SAP1 stores its
//!   four fit values (5B words, Theorem 8) and recovers averages from the
//!   fitted means; wavelets store `(index, value)` pairs.
//! * [`allocation`] — exact grid-DP and greedy allocation of a total word
//!   budget across columns under per-column SSE curves.
//! * [`catalog`] — the named-column registry with JSON save/load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod catalog;
pub mod persist;

pub use allocation::{allocate_budget, AllocationResult, ColumnCurve};
pub use catalog::{Catalog, ColumnEntry};
pub use persist::PersistentSynopsis;
