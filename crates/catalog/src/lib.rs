//! # synoptic-catalog
//!
//! The systems layer a database engine would wrap around the paper's
//! algorithms: a **statistics catalog** holding one synopsis per column,
//! persisted durably at exactly the storage costs the paper's theorems
//! claim, plus a **budget allocator** that splits a global word budget
//! across columns to minimize total (weighted) error.
//!
//! * [`persist`] — in-memory synopsis representations. Persistence is a
//!   direct exercise of the storage theorems: SAP0 stores boundaries +
//!   `suff`/`pref` only (3B words, Theorem 7) and *recovers* the bucket
//!   averages on load via `avg = (suff + pref)/(len + 1)`; SAP1 stores its
//!   four fit values (5B words, Theorem 8) and recovers averages from the
//!   fitted means; wavelets store `(index, value)` pairs.
//! * [`checksum`] / [`format`] — an in-repo CRC-32 and the self-describing
//!   checksummed binary file format (magic, version, per-section length
//!   prefixes, header + payload CRCs). See `docs/PERSISTENCE.md` for the
//!   normative specification.
//! * [`storage`] — the [`storage::Storage`] trait with a production
//!   filesystem backend (write-temp → fsync → atomic-rename) and a
//!   deterministic fault-injection backend for crash/corruption testing.
//! * [`store`] — [`store::DurableCatalog`]: generational manifests, an
//!   atomically-swapped `CURRENT` pointer, quarantine of corrupt files, and
//!   graceful-degradation answering whose provenance is surfaced through
//!   [`synoptic_core::AnswerSource`].
//! * [`wal`] — the per-column write-ahead update journal: checksummed
//!   segment files of `(index, delta)` records appended before the
//!   in-memory state changes, rotated by size, truncated at checkpoints,
//!   and replayed by startup recovery on top of the last committed
//!   generation (the manifest's WAL marks say where to resume).
//! * [`allocation`] — exact grid-DP and greedy allocation of a total word
//!   budget across columns under per-column SSE curves.
//! * [`catalog`] — the in-memory named-column registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod catalog;
pub mod checksum;
pub mod format;
pub mod persist;
pub mod storage;
pub mod store;
pub mod wal;

pub use allocation::{allocate_budget, AllocationResult, ColumnCurve};
pub use catalog::{Catalog, ColumnEntry, ELECTION_TERM_KEY, ELECTION_VOTE_KEY};
pub use format::{synopsis_from_bytes, synopsis_to_bytes, Manifest, ManifestColumn};
pub use persist::{LoadedSynopsis, PersistentSynopsis};
pub use storage::{Fault, FaultyStorage, FsStorage, Storage};
pub use store::{DurableCatalog, FsckReport, PruneReport, RepairReport};
pub use wal::{
    decode_segment, list_sealed_segments, restamp_segment_generation, scan_column_journal,
    CheckpointReport, ColumnWal, DecodedSegment, FsyncCadence, JournalScan, SegmentFile,
    SegmentMeta, WalConfig, WalRecord,
};
