//! The per-column write-ahead update journal.
//!
//! Point updates applied to a maintained synopsis live only in memory until
//! the next background rebuild persists a new catalog generation. The WAL
//! closes that window: every acknowledged `(index, delta)` is appended to a
//! checksummed segment file *before* the in-memory state changes, so a crash
//! loses at most the one record that was mid-append when power failed.
//!
//! ## Segment format
//!
//! One column owns a sequence of segment files `<sanitized>-<seq>.wal`:
//!
//! ```text
//! header:  magic "SYNWAL01" (8) | version u16 | name_len u16
//!          | base_generation u64 | first_lsn u64 | name bytes | crc32 u32
//! record:  len u32 (= 24) | lsn u64 | index u64 | delta i64 | crc32 u32
//! ```
//!
//! All integers are little-endian. The header CRC covers every header byte
//! before it; a record CRC covers the length prefix and payload. Records
//! carry consecutive LSNs starting at the header's `first_lsn`, and
//! consecutive segments chain (`next.first_lsn = prev.last_lsn + 1`), so a
//! vanished middle segment is detectable. `base_generation` is the catalog
//! generation that was committed when the segment was opened.
//!
//! ## Durability and truncation
//!
//! Appends go through [`Storage::append`] with an fsync cadence chosen by
//! [`FsyncCadence`]. Segments rotate once they exceed
//! [`WalConfig::segment_bytes`]. After a catalog generation commits with a
//! WAL mark (see [`crate::Catalog::set_wal_mark`]), [`ColumnWal::checkpoint`]
//! deletes every segment whose records are all covered by the mark — the
//! only place the journal ever deletes, and only data a committed snapshot
//! already holds. A failed delete is harmless: replay skips records at or
//! below the mark.
//!
//! ## Reading back
//!
//! [`scan_column_journal`] validates the whole chain. A torn *tail* —
//! fewer trailing bytes than one record, or an unreadable header on the
//! final segment (the crash hit the segment's very first append) — is
//! tolerated and truncated, because those bytes were never acknowledged as
//! durable. Everything else (mid-stream CRC mismatch, broken LSN chain,
//! torn tail on a non-final segment) is a hard
//! [`SynopticError::CorruptJournal`]: the journal cannot be trusted and
//! recovery must say so rather than guess.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use synoptic_core::{Result, SynopticError};

use crate::checksum::crc32;
use crate::storage::Storage;
use crate::store::sanitize_column;

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: [u8; 8] = *b"SYNWAL01";
/// Highest segment format version this build reads and the one it writes.
pub const WAL_VERSION: u16 = 1;
/// Extension of WAL segment files.
pub const WAL_EXT: &str = "wal";
/// Encoded size of one record: length prefix (4) + payload (24) + CRC (4).
pub const WAL_RECORD_LEN: usize = 32;

/// Fixed-size prefix of the header, before the column name bytes.
const HEADER_FIXED_LEN: usize = 28;
/// Declared payload length of every record.
const RECORD_PAYLOAD_LEN: u32 = 24;

/// How often appended records are fsynced to the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncCadence {
    /// Every record is synced before the append returns (maximum
    /// durability: a crash loses at most the record being appended).
    #[default]
    EveryRecord,
    /// Sync once every `N` records; up to `N - 1` acknowledged records may
    /// be lost to a crash.
    EveryN(u64),
    /// Sync only when a segment is sealed at rotation; a crash may lose
    /// everything appended to the active segment since it opened.
    OnRotate,
}

/// Tuning knobs for one column's journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one reaches this many bytes.
    pub segment_bytes: usize,
    /// Fsync cadence for appends.
    pub fsync: FsyncCadence,
    /// Upper bound on checkpoint-covered segments retained *solely* for
    /// lagging replication followers (see
    /// [`ColumnWal::set_retention_hold`]). When a checkpoint would hold
    /// back more covered segments than this, the most-lagging followers
    /// are evicted — reported in the [`CheckpointReport`], never silently.
    /// `None` retains without bound.
    pub retain_cap_segments: Option<usize>,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 64 * 1024,
            fsync: FsyncCadence::EveryRecord,
            retain_cap_segments: None,
        }
    }
}

/// One decoded journal record: apply `delta` at `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number, consecutive from 1 per column.
    pub lsn: u64,
    /// Domain index the update targets.
    pub index: u64,
    /// Signed frequency delta.
    pub delta: i64,
}

/// Metadata of one readable segment found by [`scan_column_journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name relative to the journal directory.
    pub file: String,
    /// Sequence number parsed from the file name.
    pub seq: u64,
    /// Catalog generation committed when the segment was opened.
    pub base_generation: u64,
    /// LSN of the segment's first record.
    pub first_lsn: u64,
    /// LSN of the segment's last record (`first_lsn - 1` when empty).
    pub last_lsn: u64,
    /// Whether a torn final record was truncated off this segment.
    pub torn_tail: bool,
}

/// Everything [`scan_column_journal`] recovered for one column.
#[derive(Debug, Clone, Default)]
pub struct JournalScan {
    /// All valid records across all segments, in LSN order.
    pub records: Vec<WalRecord>,
    /// Readable segments, ascending by sequence number.
    pub segments: Vec<SegmentMeta>,
    /// Segments skipped wholesale because their header never became
    /// readable (the crash hit the segment's very first append). Skipping
    /// is only allowed when the segment provably held no acknowledged
    /// records: it is the final segment, or the LSN chain runs unbroken
    /// from the segment before it to the segment after it.
    pub skipped: Vec<String>,
    /// Highest valid LSN seen (`0` when the journal is empty).
    pub max_lsn: u64,
}

/// One segment file found by [`list_sealed_segments`]: a header-validated
/// on-disk segment, the unit replication ships.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentFile {
    /// File name relative to the journal directory.
    pub file: String,
    /// Sequence number parsed from the file name.
    pub seq: u64,
    /// Column the header declares ownership by.
    pub column: String,
    /// Catalog generation committed when the segment was opened.
    pub base_generation: u64,
    /// LSN of the segment's first record.
    pub first_lsn: u64,
}

/// One fully decoded segment, as [`decode_segment`] returns it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSegment {
    /// Total encoded header length in bytes. `header_len +
    /// records.len() * WAL_RECORD_LEN` is the validated prefix of the
    /// segment bytes — what a shipper sends when the tail is torn.
    pub header_len: usize,
    /// Column the header declares ownership by.
    pub column: String,
    /// Catalog generation committed when the segment was opened.
    pub base_generation: u64,
    /// LSN of the segment's first record.
    pub first_lsn: u64,
    /// LSN of the segment's last record (`first_lsn - 1` when empty).
    pub last_lsn: u64,
    /// All valid records, consecutive from `first_lsn`.
    pub records: Vec<WalRecord>,
    /// Whether trailing bytes short of one whole record were truncated
    /// off. A sealed, fully shipped segment is never torn; receivers treat
    /// a torn decode as an incomplete transfer, not corruption.
    pub torn_tail: bool,
}

/// What one [`ColumnWal::checkpoint_report`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Segment files removed.
    pub removed: usize,
    /// Covered segments kept back only because a registered follower has
    /// not acknowledged them yet.
    pub retained_for_followers: usize,
    /// Followers whose retention hold was evicted by
    /// [`WalConfig::retain_cap_segments`], with the LSN each had
    /// acknowledged when evicted. An evicted follower must bootstrap from
    /// a snapshot; it can no longer catch up from this journal alone.
    pub evicted: Vec<(String, u64)>,
}

/// The file name of segment `seq` of `column`'s journal.
pub fn wal_file_name(column: &str, seq: u64) -> String {
    format!("{}-{seq}.{WAL_EXT}", sanitize_column(column))
}

/// Parses the sequence number out of a segment file name, given the
/// column's `"<sanitized>-"` prefix. Sanitized names never contain `-`, so
/// the parse is unambiguous.
fn parse_wal_seq(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(&format!(".{WAL_EXT}"))?
        .parse::<u64>()
        .ok()
}

fn corrupt(file: &str, detail: impl Into<String>) -> SynopticError {
    SynopticError::CorruptJournal {
        context: file.to_string(),
        detail: detail.into(),
    }
}

fn encode_header(column: &str, base_generation: u64, first_lsn: u64) -> Vec<u8> {
    let name = column.as_bytes();
    let mut out = Vec::with_capacity(HEADER_FIXED_LEN + name.len() + 4);
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(&base_generation.to_le_bytes());
    out.extend_from_slice(&first_lsn.to_le_bytes());
    out.extend_from_slice(name);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn encode_record(lsn: u64, index: u64, delta: i64) -> [u8; WAL_RECORD_LEN] {
    let mut out = [0u8; WAL_RECORD_LEN];
    out[0..4].copy_from_slice(&RECORD_PAYLOAD_LEN.to_le_bytes());
    out[4..12].copy_from_slice(&lsn.to_le_bytes());
    out[12..20].copy_from_slice(&index.to_le_bytes());
    out[20..28].copy_from_slice(&delta.to_le_bytes());
    let crc = crc32(&out[0..28]);
    out[28..32].copy_from_slice(&crc.to_le_bytes());
    out
}

struct ParsedHeader {
    column: String,
    base_generation: u64,
    first_lsn: u64,
    /// Total header length including name and CRC.
    len: usize,
}

fn u16_at(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(bytes[at..at + 2].try_into().expect("bounds checked"))
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

/// Validates a segment header. Integrity failures are
/// [`SynopticError::CorruptJournal`]; a CRC-valid header from a newer
/// format is [`SynopticError::UnsupportedVersion`] — never skippable,
/// because its contents are intact, just not ours to interpret.
fn parse_header(bytes: &[u8], file: &str) -> Result<ParsedHeader> {
    if bytes.len() < HEADER_FIXED_LEN + 4 {
        return Err(corrupt(
            file,
            format!("{} bytes is shorter than a segment header", bytes.len()),
        ));
    }
    if bytes[0..8] != WAL_MAGIC {
        return Err(corrupt(file, "bad magic"));
    }
    let name_len = u16_at(bytes, 10) as usize;
    let header_len = HEADER_FIXED_LEN + name_len + 4;
    if bytes.len() < header_len {
        return Err(corrupt(
            file,
            "shorter than its declared header (torn at creation)",
        ));
    }
    let crc_stored = u32_at(bytes, HEADER_FIXED_LEN + name_len);
    let crc_actual = crc32(&bytes[..HEADER_FIXED_LEN + name_len]);
    if crc_stored != crc_actual {
        return Err(corrupt(file, "header CRC mismatch"));
    }
    // The CRC validated, so the version field is trustworthy.
    let version = u16_at(bytes, 8);
    if version > WAL_VERSION {
        return Err(SynopticError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let first_lsn = u64_at(bytes, 20);
    if first_lsn == 0 {
        return Err(corrupt(file, "first LSN is 0 (LSNs start at 1)"));
    }
    let column = std::str::from_utf8(&bytes[HEADER_FIXED_LEN..HEADER_FIXED_LEN + name_len])
        .map_err(|_| corrupt(file, "column name is not UTF-8"))?
        .to_string();
    Ok(ParsedHeader {
        column,
        base_generation: u64_at(bytes, 12),
        first_lsn,
        len: header_len,
    })
}

/// Decodes the record stream following a segment header. `Err` means
/// untrustworthy mid-stream bytes; `Ok(.., Some(detail))` means a torn
/// tail was truncated off.
fn parse_records(
    bytes: &[u8],
    first_lsn: u64,
    file: &str,
) -> Result<(Vec<WalRecord>, Option<String>)> {
    let mut records = Vec::with_capacity(bytes.len() / WAL_RECORD_LEN);
    let mut at = 0usize;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < WAL_RECORD_LEN {
            // A torn append leaves a strict prefix of one record; anything
            // shorter than a whole record can only be that.
            return Ok((
                records,
                Some(format!("{remaining} trailing bytes, less than one record")),
            ));
        }
        let len = u32_at(bytes, at);
        if len != RECORD_PAYLOAD_LEN {
            return Err(corrupt(
                file,
                format!("record at byte {at} declares payload length {len}"),
            ));
        }
        let crc_stored = u32_at(bytes, at + 28);
        let crc_actual = crc32(&bytes[at..at + 28]);
        if crc_stored != crc_actual {
            return Err(corrupt(file, format!("record CRC mismatch at byte {at}")));
        }
        let lsn = u64_at(bytes, at + 4);
        let expect = first_lsn + records.len() as u64;
        if lsn != expect {
            return Err(corrupt(
                file,
                format!("LSN {lsn} where {expect} was expected"),
            ));
        }
        records.push(WalRecord {
            lsn,
            index: u64_at(bytes, at + 12),
            delta: u64_at(bytes, at + 20) as i64,
        });
        at += WAL_RECORD_LEN;
    }
    Ok((records, None))
}

/// Reads and validates `column`'s whole journal under `dir`.
///
/// Tolerates exactly the damage an interrupted append can cause at the
/// journal's tail (see the module docs); everything else errors. Returns
/// all valid records in LSN order plus per-segment metadata, so recovery
/// can check each contributing segment's `base_generation` against the
/// snapshot it replays onto.
pub fn scan_column_journal<S: Storage>(
    storage: &S,
    dir: &Path,
    column: &str,
) -> Result<JournalScan> {
    let mut scan = JournalScan::default();
    if !storage.exists(dir) {
        return Ok(scan);
    }
    let prefix = format!("{}-", sanitize_column(column));
    let mut files: Vec<(u64, String)> = storage
        .list(dir)?
        .into_iter()
        .filter_map(|name| parse_wal_seq(&name, &prefix).map(|seq| (seq, name)))
        .collect();
    files.sort_unstable();

    // Unreadable-header segments seen since the last readable one. They are
    // forgiven only if the next readable segment proves (by LSN continuity)
    // that they never held an acknowledged record.
    let mut wrecks: Vec<(String, SynopticError)> = Vec::new();

    for (i, (seq, name)) in files.iter().enumerate() {
        let is_final = i + 1 == files.len();
        let bytes = storage.read(&dir.join(name))?;
        let header = match parse_header(&bytes, name) {
            Ok(h) => h,
            Err(e @ SynopticError::UnsupportedVersion { .. }) => return Err(e),
            Err(e) => {
                if is_final {
                    // The crash hit this segment's very first append: no
                    // record in it was ever acknowledged as durable.
                    scan.skipped.push(name.clone());
                    break;
                }
                if scan.segments.is_empty() {
                    // No earlier readable segment to anchor a continuity
                    // proof: the wreck may hold real records. Refuse.
                    return Err(e);
                }
                wrecks.push((name.clone(), e));
                continue;
            }
        };
        if header.column != column {
            return Err(corrupt(
                name,
                format!(
                    "segment belongs to column '{}' (sanitized file-name collision)",
                    header.column
                ),
            ));
        }
        if let Some(prev) = scan.segments.last() {
            if header.first_lsn != prev.last_lsn + 1 {
                // A broken chain: either this segment is damaged, or one of
                // the unreadable segments between it and `prev` held real
                // records. Surface the wreck's own error when there is one.
                if let Some((_, e)) = wrecks.drain(..).next() {
                    return Err(e);
                }
                return Err(corrupt(
                    name,
                    format!(
                        "LSN chain broken: segment starts at {} but {} was expected",
                        header.first_lsn,
                        prev.last_lsn + 1
                    ),
                ));
            }
        }
        // Continuity held across any intervening wrecks: they provably
        // carried nothing durable.
        scan.skipped.extend(wrecks.drain(..).map(|(n, _)| n));
        let (records, torn) = parse_records(&bytes[header.len..], header.first_lsn, name)?;
        if let Some(detail) = &torn {
            if !is_final {
                return Err(corrupt(
                    name,
                    format!("torn tail on a non-final segment: {detail}"),
                ));
            }
        }
        let last_lsn = header.first_lsn + records.len() as u64 - 1;
        scan.max_lsn = scan.max_lsn.max(last_lsn);
        scan.segments.push(SegmentMeta {
            file: name.clone(),
            seq: *seq,
            base_generation: header.base_generation,
            first_lsn: header.first_lsn,
            last_lsn,
            torn_tail: torn.is_some(),
        });
        scan.records.extend(records);
    }
    // Wrecks with no later readable segment to vouch for them (the journal
    // ended in the middle of them) stay unproven: refuse.
    if let Some((_, e)) = wrecks.into_iter().next() {
        return Err(e);
    }
    Ok(scan)
}

/// Enumerates every segment file with a readable, CRC-valid header under
/// `dir`, ordered by `(column, first_lsn)` — the one directory walk both
/// replication shipping and fsck/recovery share. Segments whose header
/// never became readable are skipped here: the header goes out in the same
/// append as the first record, so an unreadable header means nothing in
/// that segment was ever acknowledged as durable (and there is nothing to
/// ship). A CRC-valid header from a newer format version still errors —
/// its contents are intact, just not ours to interpret.
pub fn list_sealed_segments<S: Storage>(storage: &S, dir: &Path) -> Result<Vec<SegmentFile>> {
    let mut segments: Vec<SegmentFile> = Vec::new();
    if !storage.exists(dir) {
        return Ok(segments);
    }
    let suffix = format!(".{WAL_EXT}");
    for name in storage.list(dir)? {
        if !name.ends_with(&suffix) {
            continue;
        }
        let bytes = storage.read(&dir.join(&name))?;
        match parse_header(&bytes, &name) {
            Ok(h) => {
                let prefix = format!("{}-", sanitize_column(&h.column));
                let Some(seq) = parse_wal_seq(&name, &prefix) else {
                    // A readable header inside a file whose name does not
                    // match its own column: a sanitized-name collision.
                    // The per-column scan reports it precisely; the
                    // enumeration just leaves it out.
                    continue;
                };
                segments.push(SegmentFile {
                    file: name,
                    seq,
                    column: h.column,
                    base_generation: h.base_generation,
                    first_lsn: h.first_lsn,
                });
            }
            Err(e @ SynopticError::UnsupportedVersion { .. }) => return Err(e),
            Err(_) => {}
        }
    }
    segments.sort_by(|a, b| (&a.column, a.first_lsn, a.seq).cmp(&(&b.column, b.first_lsn, b.seq)));
    Ok(segments)
}

/// Distinct column names owning at least one segment with a readable
/// header under `dir`, sorted. Recovery uses this to find journals whose
/// column is *absent* from the committed catalog (e.g. a column whose
/// first durable persist never committed) — silently skipping them would
/// drop acknowledged records. Built on [`list_sealed_segments`], the same
/// enumeration the replication shipper walks.
pub fn list_journal_columns<S: Storage>(storage: &S, dir: &Path) -> Result<Vec<String>> {
    let mut columns: Vec<String> = Vec::new();
    for seg in list_sealed_segments(storage, dir)? {
        if columns.last() != Some(&seg.column) {
            columns.push(seg.column);
        }
    }
    Ok(columns)
}

/// Decodes one whole segment file as shipped over a replication transport:
/// header plus record stream, CRC- and LSN-chain-validated exactly like
/// [`scan_column_journal`] validates it on disk. Trailing bytes short of a
/// whole record are truncated off and flagged (`torn_tail`) rather than
/// refused — over a transport that means an incomplete transfer the sender
/// will retry, and on disk it means a torn final append.
pub fn decode_segment(bytes: &[u8], file: &str) -> Result<DecodedSegment> {
    let header = parse_header(bytes, file)?;
    let (records, torn) = parse_records(&bytes[header.len..], header.first_lsn, file)?;
    let last_lsn = header.first_lsn + records.len() as u64 - 1;
    Ok(DecodedSegment {
        header_len: header.len,
        column: header.column,
        base_generation: header.base_generation,
        first_lsn: header.first_lsn,
        last_lsn,
        records,
        torn_tail: torn.is_some(),
    })
}

/// Rewrites the `base_generation` a segment's header declares, in place,
/// and recomputes the header CRC. A follower applies this before
/// persisting a shipped segment locally: the leader stamped its own
/// committed generation, but relative to the *follower's* catalog the
/// segment extends the follower's committed snapshot — recovery's
/// generation check must see the local generation or promotion would
/// refuse a perfectly consistent journal. Sound because `base_generation`
/// is an annotation relative to the local snapshot, not part of the record
/// stream, and the anchor-at-mark check still guarantees completeness.
pub fn restamp_segment_generation(bytes: &mut [u8], file: &str, generation: u64) -> Result<()> {
    let header = parse_header(bytes, file)?;
    bytes[12..20].copy_from_slice(&generation.to_le_bytes());
    let crc_at = header.len - 4;
    let crc = crc32(&bytes[..crc_at]);
    bytes[crc_at..header.len].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

struct ActiveSegment {
    path: PathBuf,
    bytes: usize,
}

struct SealedSegment {
    path: PathBuf,
    last_lsn: u64,
}

struct WalState {
    next_lsn: u64,
    next_seq: u64,
    /// Base generation stamped into the next segment opened.
    generation: u64,
    active: Option<ActiveSegment>,
    sealed: Vec<SealedSegment>,
    /// Records appended since the last fsync (for [`FsyncCadence::EveryN`]).
    since_sync: u64,
}

/// Called after a segment seals durably, with its path and last LSN.
///
/// Invoked while the journal's internal lock is held: the hook must only
/// enqueue (notify a shipper) — calling back into the same `ColumnWal`
/// deadlocks.
pub type SealHook = Box<dyn Fn(&Path, u64) + Send + Sync>;

/// The append side of one column's journal.
///
/// Thread-safe behind an internal mutex: the ingest path appends while a
/// background worker checkpoints. Opening never appends to pre-existing
/// segments (their tails may be torn); it seals them as found and starts a
/// fresh segment on the first append.
pub struct ColumnWal<S: Storage> {
    storage: S,
    dir: PathBuf,
    column: String,
    config: WalConfig,
    state: Mutex<WalState>,
    /// Per-follower acknowledged LSNs holding back checkpoint truncation.
    holds: Mutex<BTreeMap<String, u64>>,
    seal_hook: Mutex<Option<SealHook>>,
}

impl<S: Storage> ColumnWal<S> {
    /// Opens `column`'s journal under `dir`, creating the directory when
    /// absent. `committed_generation` is the catalog generation the
    /// in-memory state was loaded from; it is stamped into new segment
    /// headers until the first [`Self::checkpoint`]. The existing journal
    /// must scan cleanly — run recovery first when in doubt.
    pub fn open(
        storage: S,
        dir: impl Into<PathBuf>,
        column: &str,
        committed_generation: u64,
        config: WalConfig,
    ) -> Result<Self> {
        let dir = dir.into();
        if column.is_empty() || column.len() > u16::MAX as usize {
            return Err(SynopticError::InvalidParameter(format!(
                "column name length {} outside 1..=65535",
                column.len()
            )));
        }
        storage.create_dir_all(&dir)?;
        let scan = scan_column_journal(&storage, &dir, column)?;
        let prefix = format!("{}-", sanitize_column(column));
        // Never reuse a sequence number, including one whose header never
        // became readable — appending to that file would bury live records
        // behind garbage.
        let next_seq = storage
            .list(&dir)?
            .iter()
            .filter_map(|n| parse_wal_seq(n, &prefix))
            .max()
            .map_or(1, |s| s + 1);
        let mut sealed: Vec<SealedSegment> = scan
            .segments
            .iter()
            .map(|s| SealedSegment {
                path: dir.join(&s.file),
                last_lsn: s.last_lsn,
            })
            .collect();
        for name in &scan.skipped {
            // Unreadable and already written off by the scan: eligible for
            // deletion at the first checkpoint.
            sealed.push(SealedSegment {
                path: dir.join(name),
                last_lsn: 0,
            });
        }
        Ok(Self {
            storage,
            dir,
            column: column.to_string(),
            config,
            state: Mutex::new(WalState {
                next_lsn: scan.max_lsn + 1,
                next_seq,
                generation: committed_generation,
                active: None,
                sealed,
                since_sync: 0,
            }),
            holds: Mutex::new(BTreeMap::new()),
            seal_hook: Mutex::new(None),
        })
    }

    /// The column this journal belongs to.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Seals the active segment: fsyncs it whenever any record in it is
    /// still unsynced (`EveryN` between sync points as well as `OnRotate`),
    /// then moves it to the sealed list — a sealed segment must be fully
    /// durable before the next segment starts receiving synced records, or
    /// a crash would tear a *non-final* segment, which recovery rightly
    /// treats as hard corruption. On fsync failure the segment stays active
    /// so a later append retries the seal.
    fn seal_active(&self, st: &mut WalState) -> Result<()> {
        let Some(a) = st.active.take() else {
            return Ok(());
        };
        if st.since_sync > 0 {
            if let Err(e) = self.storage.append(&a.path, &[], true) {
                st.active = Some(a);
                return Err(e);
            }
            st.since_sync = 0;
        }
        let last_lsn = st.next_lsn - 1;
        if let Some(hook) = self
            .seal_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            hook(&a.path, last_lsn);
        }
        st.sealed.push(SealedSegment {
            path: a.path,
            last_lsn,
        });
        Ok(())
    }

    /// Seals the active segment now, without waiting for rotation: after
    /// this returns `Ok`, every acknowledged record is in a durable sealed
    /// segment — the unit replication ships. A no-op when nothing is
    /// active. The next append opens a fresh segment.
    pub fn seal(&self) -> Result<()> {
        let mut st = self.lock();
        self.seal_active(&mut st)
    }

    /// Installs (or clears) the hook called whenever a segment seals
    /// durably — the leader-side replication shipper's wake-up. See
    /// [`SealHook`] for the reentrancy contract.
    pub fn set_seal_hook(&self, hook: Option<SealHook>) {
        *self
            .seal_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = hook;
    }

    /// Registers (or advances) follower `name`'s acknowledged LSN.
    /// Checkpoints retain every segment holding records above the smallest
    /// registered hold, so a lagging follower can still catch up from this
    /// journal — bounded by [`WalConfig::retain_cap_segments`].
    pub fn set_retention_hold(&self, name: &str, acked_lsn: u64) {
        self.holds
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), acked_lsn);
    }

    /// Drops follower `name`'s retention hold (it deregistered or was
    /// promoted). Returns whether a hold existed.
    pub fn remove_retention_hold(&self, name: &str) -> bool {
        self.holds
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name)
            .is_some()
    }

    /// Currently registered `(follower, acked_lsn)` holds, sorted by name.
    pub fn retention_holds(&self) -> Vec<(String, u64)> {
        self.holds
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(n, l)| (n.clone(), *l))
            .collect()
    }

    /// Journals one update and returns its LSN. The record is on its way
    /// to disk (synced, per the cadence) before this returns; only then may
    /// the caller mutate the in-memory state it protects.
    pub fn append(&self, index: u64, delta: i64) -> Result<u64> {
        let mut st = self.lock();
        let over_budget = st
            .active
            .as_ref()
            .is_some_and(|a| a.bytes >= self.config.segment_bytes);
        if over_budget {
            self.seal_active(&mut st)?;
        }
        let lsn = st.next_lsn;
        let record = encode_record(lsn, index, delta);
        let sync = match self.config.fsync {
            FsyncCadence::EveryRecord => true,
            FsyncCadence::EveryN(n) => st.since_sync + 1 >= n.max(1),
            FsyncCadence::OnRotate => false,
        };
        match &mut st.active {
            Some(a) => {
                self.storage.append(&a.path, &record, sync)?;
                a.bytes += WAL_RECORD_LEN;
            }
            None => {
                // First record of a new segment: header and record go out
                // in one append, so a tear at any byte is a torn creation
                // or a torn tail — never a half-header with a live record
                // stranded behind it.
                let seq = st.next_seq;
                let file = wal_file_name(&self.column, seq);
                let path = self.dir.join(&file);
                let mut buf = encode_header(&self.column, st.generation, lsn);
                let bytes = buf.len() + WAL_RECORD_LEN;
                buf.extend_from_slice(&record);
                self.storage.append(&path, &buf, sync)?;
                st.next_seq = seq + 1;
                st.active = Some(ActiveSegment { path, bytes });
            }
        }
        st.next_lsn = lsn + 1;
        st.since_sync = if sync { 0 } else { st.since_sync + 1 };
        Ok(lsn)
    }

    /// The LSN of the last acknowledged record (`0` when nothing was ever
    /// journaled). A snapshot built from the current in-memory state covers
    /// exactly the records up to this mark — capture it under the same lock
    /// that freezes the state.
    pub fn pending_mark(&self) -> u64 {
        self.lock().next_lsn - 1
    }

    /// Checkpoint: a catalog generation `generation` committed, covering
    /// every record with LSN ≤ `snapshot_lsn`. Deletes segments whose
    /// records are all covered and stamps `generation` into future segment
    /// headers. Returns the number of files removed. A failed delete keeps
    /// the segment queued for the next checkpoint — stale segments are
    /// harmless, replay skips records at or below the committed mark.
    ///
    /// Shorthand for [`Self::checkpoint_report`] when follower retention
    /// detail is not needed.
    pub fn checkpoint(&self, snapshot_lsn: u64, generation: u64) -> Result<usize> {
        self.checkpoint_report(snapshot_lsn, generation)
            .map(|r| r.removed)
    }

    /// [`Self::checkpoint`], reporting replication retention decisions.
    ///
    /// Truncation honours follower holds ([`Self::set_retention_hold`]):
    /// a segment is deleted only when its records are covered by the
    /// snapshot *and* acknowledged by every registered follower. Covered
    /// segments kept back for followers count as `retained_for_followers`.
    /// When [`WalConfig::retain_cap_segments`] caps the backlog, the cap is
    /// measured against **every** sealed segment this checkpoint must
    /// retain — segments pinned by follower holds *and* segments sealed
    /// past the snapshot under sustained ingest (no eviction can free
    /// those, but they occupy the same disk budget). While the total
    /// exceeds the cap, the most-lagging followers whose holds actually pin
    /// covered segments are evicted (their holds dropped, names and acked
    /// LSNs reported in `evicted`); followers at or past the snapshot are
    /// never evicted, because dropping them frees nothing. An evicted
    /// follower must re-bootstrap from a snapshot.
    pub fn checkpoint_report(
        &self,
        snapshot_lsn: u64,
        generation: u64,
    ) -> Result<CheckpointReport> {
        let mut holds = self.holds.lock().unwrap_or_else(PoisonError::into_inner);
        let mut st = self.lock();
        st.generation = generation;
        let mut report = CheckpointReport::default();
        let floor_of = |holds: &BTreeMap<String, u64>| -> u64 {
            holds
                .values()
                .copied()
                .min()
                .map_or(snapshot_lsn, |h| h.min(snapshot_lsn))
        };
        if let Some(cap) = self.config.retain_cap_segments {
            loop {
                let floor = floor_of(&holds);
                // Everything this checkpoint cannot delete counts toward
                // the cap — including segments sealed past the snapshot,
                // which previously escaped the count and let a slow
                // follower's backlog grow without bound under sustained
                // ingest.
                let held = st.sealed.iter().filter(|s| s.last_lsn > floor).count();
                if held <= cap {
                    break;
                }
                // Evict the most-lagging follower whose hold actually pins
                // covered segments (hold below the snapshot) — evicting a
                // follower at or past the snapshot frees nothing. Ties
                // broken by name, the BTreeMap's iteration order —
                // deterministic.
                let Some((name, lsn)) = holds
                    .iter()
                    .filter(|(_, l)| **l < snapshot_lsn)
                    .min_by_key(|(_, l)| **l)
                    .map(|(n, l)| (n.clone(), *l))
                else {
                    break;
                };
                holds.remove(&name);
                report.evicted.push((name, lsn));
            }
        }
        let floor = floor_of(&holds);
        drop(holds);
        let mut failure = None;
        let sealed = std::mem::take(&mut st.sealed);
        let mut keep = Vec::new();
        for s in sealed {
            if failure.is_none() && s.last_lsn <= floor {
                match self.storage.remove(&s.path) {
                    Ok(()) => report.removed += 1,
                    Err(e) => {
                        failure = Some(e);
                        keep.push(s);
                    }
                }
            } else {
                if s.last_lsn > floor && s.last_lsn <= snapshot_lsn {
                    report.retained_for_followers += 1;
                }
                keep.push(s);
            }
        }
        st.sealed = keep;
        // The active segment too, when everything it holds is covered and
        // acknowledged; the next append then opens a fresh segment at the
        // new generation.
        if failure.is_none() && st.active.is_some() && st.next_lsn - 1 <= floor {
            let path = st.active.as_ref().expect("checked is_some").path.clone();
            match self.storage.remove(&path) {
                Ok(()) => {
                    st.active = None;
                    report.removed += 1;
                }
                Err(e) => failure = Some(e),
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// File names of the segments currently on disk for this column
    /// (sealed then active), for diagnostics and tests.
    pub fn segment_count(&self) -> usize {
        let st = self.lock();
        st.sealed.len() + usize::from(st.active.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{Fault, FaultyStorage, FsStorage};
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("synoptic_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_scan_round_trip() {
        let d = tmp_dir("roundtrip");
        let wal = ColumnWal::open(FsStorage::new(), &d, "price", 3, WalConfig::default()).unwrap();
        assert_eq!(wal.pending_mark(), 0);
        for (i, delta) in [2i64, -1, 5].into_iter().enumerate() {
            let lsn = wal.append(i as u64, delta).unwrap();
            assert_eq!(lsn, i as u64 + 1);
        }
        assert_eq!(wal.pending_mark(), 3);
        let scan = scan_column_journal(&FsStorage::new(), &d, "price").unwrap();
        assert_eq!(scan.max_lsn, 3);
        assert_eq!(scan.segments.len(), 1);
        assert_eq!(scan.segments[0].base_generation, 3);
        assert_eq!(scan.segments[0].first_lsn, 1);
        assert_eq!(scan.segments[0].last_lsn, 3);
        assert!(!scan.segments[0].torn_tail);
        assert_eq!(
            scan.records,
            vec![
                WalRecord {
                    lsn: 1,
                    index: 0,
                    delta: 2
                },
                WalRecord {
                    lsn: 2,
                    index: 1,
                    delta: -1
                },
                WalRecord {
                    lsn: 3,
                    index: 2,
                    delta: 5
                },
            ]
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn rotation_splits_segments_and_the_chain_validates() {
        let d = tmp_dir("rotate");
        let cfg = WalConfig {
            segment_bytes: 1, // over budget after every record
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(FsStorage::new(), &d, "c", 1, cfg).unwrap();
        for i in 0..5u64 {
            wal.append(i, 1).unwrap();
        }
        assert_eq!(wal.segment_count(), 5);
        let scan = scan_column_journal(&FsStorage::new(), &d, "c").unwrap();
        assert_eq!(scan.segments.len(), 5);
        assert_eq!(scan.records.len(), 5);
        for (i, s) in scan.segments.iter().enumerate() {
            assert_eq!(s.first_lsn, i as u64 + 1);
            assert_eq!(s.last_lsn, i as u64 + 1);
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn empty_or_missing_journal_scans_clean() {
        let d = tmp_dir("empty");
        let scan = scan_column_journal(&FsStorage::new(), &d, "none").unwrap();
        assert!(scan.records.is_empty() && scan.segments.is_empty());
        assert_eq!(scan.max_lsn, 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_final_record_is_truncated_and_flagged() {
        let d = tmp_dir("torntail");
        let s = FsStorage::new();
        let wal = ColumnWal::open(s.clone(), &d, "t", 1, WalConfig::default()).unwrap();
        wal.append(1, 10).unwrap();
        wal.append(2, 20).unwrap();
        // Power fails mid-append: a strict prefix of record 3 lands.
        let partial = &encode_record(3, 3, 30)[..11];
        s.append(&d.join(wal_file_name("t", 1)), partial, false)
            .unwrap();
        let scan = scan_column_journal(&s, &d, "t").unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.max_lsn, 2);
        assert!(scan.segments[0].torn_tail);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_on_a_non_final_segment_is_corrupt() {
        let d = tmp_dir("tornmid");
        let s = FsStorage::new();
        let cfg = WalConfig {
            segment_bytes: 1,
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(s.clone(), &d, "t", 1, cfg).unwrap();
        wal.append(1, 1).unwrap();
        wal.append(2, 2).unwrap();
        s.append(&d.join(wal_file_name("t", 1)), b"stray", false)
            .unwrap();
        let err = scan_column_journal(&s, &d, "t").unwrap_err();
        assert!(
            matches!(err, SynopticError::CorruptJournal { .. }),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn bit_flip_mid_stream_is_corrupt_not_truncated() {
        let d = tmp_dir("bitflip");
        let s = FsStorage::new();
        let wal = ColumnWal::open(s.clone(), &d, "b", 1, WalConfig::default()).unwrap();
        wal.append(1, 1).unwrap();
        wal.append(2, 2).unwrap();
        let p = d.join(wal_file_name("b", 1));
        let mut bytes = std::fs::read(&p).unwrap();
        let flip = bytes.len() - WAL_RECORD_LEN - 10; // inside record 1
        bytes[flip] ^= 0x20;
        std::fs::write(&p, bytes).unwrap();
        let err = scan_column_journal(&s, &d, "b").unwrap_err();
        assert!(
            matches!(err, SynopticError::CorruptJournal { ref detail, .. } if detail.contains("CRC")),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn unreadable_final_segment_header_is_skipped_and_never_reused() {
        let d = tmp_dir("tornhead");
        let s = FsStorage::new();
        let cfg = WalConfig {
            segment_bytes: 1,
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(s.clone(), &d, "h", 1, cfg).unwrap();
        wal.append(1, 1).unwrap();
        // Crash hits the very first append of segment 2: only a few header
        // bytes land.
        s.append(&d.join(wal_file_name("h", 2)), &WAL_MAGIC[..5], false)
            .unwrap();
        let scan = scan_column_journal(&s, &d, "h").unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.skipped, vec!["h-2.wal".to_string()]);
        // Reopening seals the wreck and appends into a fresh sequence. The
        // wreck is now mid-chain, but LSN continuity (1 then 2) proves it
        // never held an acknowledged record, so the scan still succeeds.
        let wal = ColumnWal::open(s.clone(), &d, "h", 1, cfg).unwrap();
        assert_eq!(wal.append(9, 9).unwrap(), 2);
        let scan = scan_column_journal(&s, &d, "h").unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.skipped, vec!["h-2.wal".to_string()]);
        // The first checkpoint reclaims the wreck along with covered
        // segments.
        wal.checkpoint(2, 2).unwrap();
        assert!(!s.exists(&d.join("h-2.wal")));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn checkpoint_deletes_covered_segments_and_restamps_generation() {
        let d = tmp_dir("checkpoint");
        let s = FsStorage::new();
        let cfg = WalConfig {
            segment_bytes: 1,
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(s.clone(), &d, "k", 1, cfg).unwrap();
        for i in 1..=4u64 {
            wal.append(i, i as i64).unwrap();
        }
        // Snapshot covering LSNs 1..=3 committed as generation 2: the three
        // sealed segments go, the active one (LSN 4) stays.
        let removed = wal.checkpoint(3, 2).unwrap();
        assert_eq!(removed, 3);
        let scan = scan_column_journal(&s, &d, "k").unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].lsn, 4);
        // Covering everything removes the active segment too; the next
        // append opens a segment stamped with the new generation.
        let removed = wal.checkpoint(4, 3).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(wal.segment_count(), 0);
        wal.append(0, 1).unwrap();
        let scan = scan_column_journal(&s, &d, "k").unwrap();
        assert_eq!(scan.segments.len(), 1);
        assert_eq!(scan.segments[0].base_generation, 3);
        assert_eq!(scan.records[0].lsn, 5, "LSNs never restart");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn failed_checkpoint_delete_keeps_segment_for_retry() {
        let d = tmp_dir("ckptfail");
        let storage = Arc::new(FaultyStorage::new(FsStorage::new(), vec![]));
        let cfg = WalConfig {
            segment_bytes: 1,
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(Arc::clone(&storage), &d, "r", 1, cfg).unwrap();
        wal.append(1, 1).unwrap();
        wal.append(2, 2).unwrap();
        storage.push_fault(Fault::CrashBeforeRename);
        assert!(wal.checkpoint(2, 2).is_err());
        // The stale segment survived and is still readable.
        let scan = scan_column_journal(&FsStorage::new(), &d, "r").unwrap();
        assert_eq!(scan.records.len(), 2);
        // The retry (no fault scheduled) reclaims both segments.
        assert_eq!(wal.checkpoint(2, 2).unwrap(), 2);
        assert_eq!(wal.segment_count(), 0);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn reopen_continues_lsns_without_touching_old_tails() {
        let d = tmp_dir("reopen");
        let s = FsStorage::new();
        {
            let wal = ColumnWal::open(s.clone(), &d, "c", 1, WalConfig::default()).unwrap();
            wal.append(5, 50).unwrap();
            wal.append(6, 60).unwrap();
        }
        let wal = ColumnWal::open(s.clone(), &d, "c", 1, WalConfig::default()).unwrap();
        assert_eq!(wal.pending_mark(), 2);
        assert_eq!(wal.append(7, 70).unwrap(), 3);
        let scan = scan_column_journal(&s, &d, "c").unwrap();
        assert_eq!(scan.segments.len(), 2, "old segment sealed, new one opened");
        assert_eq!(scan.max_lsn, 3);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn every_n_and_on_rotate_cadences_journal_identically() {
        for fsync in [FsyncCadence::EveryN(2), FsyncCadence::OnRotate] {
            let d = tmp_dir("cadence");
            let cfg = WalConfig {
                segment_bytes: 100,
                fsync,
                ..WalConfig::default()
            };
            let wal = ColumnWal::open(FsStorage::new(), &d, "f", 1, cfg).unwrap();
            for i in 0..7u64 {
                wal.append(i, 1).unwrap();
            }
            let scan = scan_column_journal(&FsStorage::new(), &d, "f").unwrap();
            assert_eq!(scan.records.len(), 7, "{fsync:?}");
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    /// Records every `append` the WAL issues so tests can assert *when*
    /// syncs happen, not just that data survives.
    #[derive(Clone)]
    struct SyncSpy {
        inner: FsStorage,
        appends: Arc<Mutex<Vec<(String, usize, bool)>>>,
    }

    impl SyncSpy {
        fn new() -> Self {
            Self {
                inner: FsStorage::new(),
                appends: Arc::new(Mutex::new(Vec::new())),
            }
        }
    }

    impl Storage for SyncSpy {
        fn read(&self, path: &Path) -> Result<Vec<u8>> {
            self.inner.read(path)
        }
        fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
            self.inner.write_atomic(path, bytes)
        }
        fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> Result<()> {
            self.appends.lock().unwrap().push((
                path.file_name().unwrap().to_string_lossy().into_owned(),
                bytes.len(),
                sync,
            ));
            self.inner.append(path, bytes, sync)
        }
        fn remove(&self, path: &Path) -> Result<()> {
            self.inner.remove(path)
        }
        fn rename(&self, from: &Path, to: &Path) -> Result<()> {
            self.inner.rename(from, to)
        }
        fn list(&self, dir: &Path) -> Result<Vec<String>> {
            self.inner.list(dir)
        }
        fn create_dir_all(&self, dir: &Path) -> Result<()> {
            self.inner.create_dir_all(dir)
        }
        fn exists(&self, path: &Path) -> bool {
            self.inner.exists(path)
        }
    }

    #[test]
    fn seal_fsyncs_unsynced_records_under_every_n() {
        let d = tmp_dir("sealsync");
        let spy = SyncSpy::new();
        let cfg = WalConfig {
            // Two records fit before rotation; EveryN(100) never syncs on
            // its own, so both are unsynced when the segment seals.
            segment_bytes: 2 * WAL_RECORD_LEN,
            fsync: FsyncCadence::EveryN(100),
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(spy.clone(), &d, "s", 1, cfg).unwrap();
        for i in 0..3u64 {
            wal.append(i, 1).unwrap();
        }
        let appends = spy.appends.lock().unwrap().clone();
        // Segment 1 receives two unsynced appends, then a zero-byte synced
        // flush at seal time, and only then does segment 2 open: the sealed
        // segment is durable before any later record can be.
        let seg1 = wal_file_name("s", 1);
        let seg2 = wal_file_name("s", 2);
        let seal_at = appends
            .iter()
            .position(|(f, len, sync)| f == &seg1 && *len == 0 && *sync)
            .expect("seal must fsync the sealed segment under EveryN");
        let open2 = appends
            .iter()
            .position(|(f, _, _)| f == &seg2)
            .expect("rotation opens segment 2");
        assert!(seal_at < open2, "{appends:?}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn list_journal_columns_names_every_readable_journal() {
        let d = tmp_dir("listcols");
        let s = FsStorage::new();
        assert!(list_journal_columns(&s, &d).unwrap().is_empty());
        for col in ["beta", "alpha"] {
            let wal = ColumnWal::open(s.clone(), &d, col, 1, WalConfig::default()).unwrap();
            wal.append(0, 1).unwrap();
        }
        // A wreck whose header never landed names nothing: it was never
        // acknowledged.
        s.append(&d.join(wal_file_name("ghost", 1)), &WAL_MAGIC[..4], false)
            .unwrap();
        assert_eq!(list_journal_columns(&s, &d).unwrap(), vec!["alpha", "beta"]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn future_format_version_is_refused_even_on_the_final_segment() {
        let d = tmp_dir("version");
        let s = FsStorage::new();
        std::fs::create_dir_all(&d).unwrap();
        // A CRC-valid header claiming version 2.
        let mut h = encode_header("v", 1, 1);
        h[8] = 2;
        let crc = crc32(&h[..h.len() - 4]);
        let at = h.len() - 4;
        h[at..].copy_from_slice(&crc.to_le_bytes());
        s.append(&d.join(wal_file_name("v", 1)), &h, false).unwrap();
        let err = scan_column_journal(&s, &d, "v").unwrap_err();
        assert!(
            matches!(
                err,
                SynopticError::UnsupportedVersion {
                    found: 2,
                    supported: 1
                }
            ),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn list_sealed_segments_orders_by_column_then_first_lsn() {
        let d = tmp_dir("listsegs");
        let s = FsStorage::new();
        let cfg = WalConfig {
            segment_bytes: 1,
            ..WalConfig::default()
        };
        for col in ["b", "a"] {
            let wal = ColumnWal::open(s.clone(), &d, col, 1, cfg).unwrap();
            for i in 0..3u64 {
                wal.append(i, 1).unwrap();
            }
        }
        // A wreck whose header never landed is not a shippable segment.
        s.append(&d.join(wal_file_name("a", 9)), &WAL_MAGIC[..5], false)
            .unwrap();
        let segs = list_sealed_segments(&s, &d).unwrap();
        assert_eq!(segs.len(), 6);
        let keys: Vec<(&str, u64)> = segs
            .iter()
            .map(|g| (g.column.as_str(), g.first_lsn))
            .collect();
        assert_eq!(
            keys,
            vec![("a", 1), ("a", 2), ("a", 3), ("b", 1), ("b", 2), ("b", 3)]
        );
        // The column walk is the same enumeration.
        assert_eq!(list_journal_columns(&s, &d).unwrap(), vec!["a", "b"]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn decode_segment_round_trips_and_flags_torn_tails() {
        let d = tmp_dir("decode");
        let s = FsStorage::new();
        let wal = ColumnWal::open(s.clone(), &d, "price", 7, WalConfig::default()).unwrap();
        wal.append(3, -2).unwrap();
        wal.append(4, 9).unwrap();
        let bytes = s.read(&d.join(wal_file_name("price", 1))).unwrap();
        let seg = decode_segment(&bytes, "price-1.wal").unwrap();
        assert_eq!(seg.column, "price");
        assert_eq!(seg.base_generation, 7);
        assert_eq!((seg.first_lsn, seg.last_lsn), (1, 2));
        assert_eq!(seg.records.len(), 2);
        assert!(!seg.torn_tail);
        // A transfer cut mid-record decodes to the same prefix, flagged.
        let cut = &bytes[..bytes.len() - 5];
        let torn = decode_segment(cut, "price-1.wal").unwrap();
        assert_eq!(torn.records.len(), 1);
        assert!(torn.torn_tail);
        // A flipped record byte is corruption, not truncation.
        let mut flipped = bytes.clone();
        let at = flipped.len() - WAL_RECORD_LEN - 3;
        flipped[at] ^= 0x40;
        assert!(matches!(
            decode_segment(&flipped, "price-1.wal"),
            Err(SynopticError::CorruptJournal { .. })
        ));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn restamp_segment_generation_rewrites_header_in_place() {
        let d = tmp_dir("restamp");
        let s = FsStorage::new();
        let wal = ColumnWal::open(s.clone(), &d, "g", 12, WalConfig::default()).unwrap();
        wal.append(0, 1).unwrap();
        let mut bytes = s.read(&d.join(wal_file_name("g", 1))).unwrap();
        restamp_segment_generation(&mut bytes, "g-1.wal", 3).unwrap();
        let seg = decode_segment(&bytes, "g-1.wal").unwrap();
        assert_eq!(seg.base_generation, 3);
        assert_eq!(seg.records.len(), 1, "records untouched");
        // Corrupt headers refuse the restamp rather than writing blind.
        let mut junk = vec![0u8; 40];
        assert!(restamp_segment_generation(&mut junk, "x", 1).is_err());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn explicit_seal_fires_hook_and_rotates() {
        let d = tmp_dir("sealhook");
        let s = FsStorage::new();
        let sealed: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&sealed);
        let cfg = WalConfig {
            fsync: FsyncCadence::OnRotate,
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(s.clone(), &d, "s", 1, cfg).unwrap();
        wal.set_seal_hook(Some(Box::new(move |path, last_lsn| {
            log.lock().unwrap().push((
                path.file_name().unwrap().to_string_lossy().into_owned(),
                last_lsn,
            ));
        })));
        wal.seal().unwrap(); // nothing active: no-op, no hook
        wal.append(0, 1).unwrap();
        wal.append(1, 1).unwrap();
        wal.seal().unwrap();
        assert_eq!(*sealed.lock().unwrap(), vec![(wal_file_name("s", 1), 2)]);
        // The next append opens a fresh segment chained at LSN 3.
        wal.append(2, 1).unwrap();
        let scan = scan_column_journal(&s, &d, "s").unwrap();
        assert_eq!(scan.segments.len(), 2);
        assert_eq!(scan.segments[1].first_lsn, 3);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn retention_holds_keep_covered_segments_until_acked() {
        let d = tmp_dir("retain");
        let s = FsStorage::new();
        let cfg = WalConfig {
            segment_bytes: 1,
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(s.clone(), &d, "r", 1, cfg).unwrap();
        for i in 1..=4u64 {
            wal.append(i, 1).unwrap();
        }
        wal.set_retention_hold("f1", 1);
        // Snapshot covers 1..=3, but f1 only acked 1: segments 2 and 3
        // stay for the follower.
        let rep = wal.checkpoint_report(3, 2).unwrap();
        assert_eq!(rep.removed, 1);
        assert_eq!(rep.retained_for_followers, 2);
        assert!(rep.evicted.is_empty());
        let scan = scan_column_journal(&s, &d, "r").unwrap();
        assert_eq!(scan.records.first().unwrap().lsn, 2);
        // The follower catches up: the hold advances and the retained
        // segments go.
        wal.set_retention_hold("f1", 3);
        let rep = wal.checkpoint_report(3, 2).unwrap();
        assert_eq!(rep.removed, 2);
        assert_eq!(rep.retained_for_followers, 0);
        assert!(wal.remove_retention_hold("f1"));
        assert!(!wal.remove_retention_hold("f1"));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn retention_cap_evicts_most_lagging_follower_with_report() {
        let d = tmp_dir("retaincap");
        let s = FsStorage::new();
        let cfg = WalConfig {
            segment_bytes: 1,
            retain_cap_segments: Some(2),
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(s.clone(), &d, "e", 1, cfg).unwrap();
        for i in 1..=6u64 {
            wal.append(i, 1).unwrap();
        }
        wal.set_retention_hold("slow", 0);
        wal.set_retention_hold("near", 4);
        // Snapshot covers 1..=6 (five sealed segments plus the active
        // one). "slow" would hold back all five sealed covered segments —
        // over the cap of 2 — so it is evicted, loudly. "near" holds back
        // only the sealed segment with LSN 5, which fits.
        let rep = wal.checkpoint_report(6, 2).unwrap();
        assert_eq!(rep.evicted, vec![("slow".to_string(), 0)]);
        assert_eq!(rep.retained_for_followers, 1);
        assert_eq!(rep.removed, 4);
        assert_eq!(wal.retention_holds(), vec![("near".to_string(), 4)]);
        let scan = scan_column_journal(&s, &d, "e").unwrap();
        assert_eq!(scan.records.first().unwrap().lsn, 5);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn retention_cap_counts_segments_sealed_past_the_snapshot() {
        // Regression: the eviction loop used to count only covered
        // segments (`last_lsn <= snapshot_lsn`), so a slow follower under
        // sustained ingest kept its hold while segments sealed *past* the
        // snapshot pushed the total retained backlog far over the cap.
        let d = tmp_dir("retaincap_past");
        let s = FsStorage::new();
        let cfg = WalConfig {
            segment_bytes: 1,
            retain_cap_segments: Some(3),
            ..WalConfig::default()
        };
        let wal = ColumnWal::open(s.clone(), &d, "p", 1, cfg).unwrap();
        for i in 1..=8u64 {
            wal.append(i, 1).unwrap();
        }
        // Sealed segments hold LSNs 1..=7; the active one holds 8. The
        // snapshot covers only 1..=2 — five sealed segments sit past it.
        wal.set_retention_hold("slow", 1);
        let rep = wal.checkpoint_report(2, 2).unwrap();
        // Only one *covered* segment (LSN 2) is pinned by the hold — under
        // the old count that was far below the cap and "slow" survived with
        // six segments of total backlog. The bounded count sees 6 > 3 and
        // evicts.
        assert_eq!(rep.evicted, vec![("slow".to_string(), 1)]);
        assert!(wal.retention_holds().is_empty());
        assert_eq!(rep.removed, 2); // LSNs 1 and 2, freed by the eviction
        assert_eq!(rep.retained_for_followers, 0);
        let scan = scan_column_journal(&s, &d, "p").unwrap();
        assert_eq!(scan.records.first().unwrap().lsn, 3);

        // A follower already at the snapshot pins nothing: even over cap,
        // it is never evicted (dropping it would free no segment).
        wal.set_retention_hold("current", 2);
        let rep = wal.checkpoint_report(2, 2).unwrap();
        assert!(rep.evicted.is_empty());
        assert_eq!(wal.retention_holds(), vec![("current".to_string(), 2)]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn sanitized_name_collision_is_detected() {
        let d = tmp_dir("collide");
        let s = FsStorage::new();
        let wal = ColumnWal::open(s.clone(), &d, "a.b", 1, WalConfig::default()).unwrap();
        wal.append(0, 1).unwrap();
        // "a_b" sanitizes to the same file prefix but is a different column.
        let err = scan_column_journal(&s, &d, "a_b").unwrap_err();
        assert!(
            matches!(err, SynopticError::CorruptJournal { ref detail, .. } if detail.contains("collision")),
            "{err:?}"
        );
        assert!(scan_column_journal(&s, &d, "a.b").is_ok());
        let _ = std::fs::remove_dir_all(&d);
    }
}
