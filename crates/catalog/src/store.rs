//! The durable catalog store: generational manifests, atomic commits,
//! quarantine of corrupt files, and graceful-degradation answering.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   CURRENT            framed pointer to the committed generation number
//!   MANIFEST-<gen>     one column table per generation
//!   <column>-<gen>.syn one synopsis file per column per generation
//!   quarantine/        corrupt files moved aside (never deleted)
//! ```
//!
//! ## Commit protocol
//!
//! [`DurableCatalog::save`] writes all synopsis files for generation `g+1`,
//! then `MANIFEST-(g+1)`, and only then atomically swaps `CURRENT`. A crash
//! at any point before the swap leaves generation `g` fully intact and
//! authoritative; partially-written `g+1` files are invisible garbage that
//! `repair` sweeps into quarantine.
//!
//! ## Degraded-mode answering
//!
//! Every read validates the frame checksum *and* the synopsis semantics
//! before serving. When validation fails the store never guesses from the
//! corrupt bytes; it walks a fallback chain and reports which link answered
//! via [`AnswerSource`]:
//!
//! 1. the column's synopsis in the current generation (`Primary`);
//! 2. the newest older generation whose copy validates
//!    (`FallbackGeneration`);
//! 3. a NAIVE estimator rebuilt from manifest metadata alone
//!    (`FallbackNaive`, answering `len(q) · total_rows / n`).
//!
//! Corrupt files encountered along the way are renamed into `quarantine/`
//! so the evidence survives for forensics and the next read does not trip
//! over them again.

use std::path::{Path, PathBuf};

use synoptic_core::{
    AnswerSource, RangeEstimator, RangeQuery, Result, SourcedEstimate, SynopticError,
};

use crate::catalog::{Catalog, ColumnEntry};
use crate::format::{
    current_from_bytes, current_to_bytes, manifest_from_bytes, manifest_to_bytes,
    synopsis_from_bytes, synopsis_to_bytes, Manifest, ManifestColumn,
};
use crate::persist::{LoadedSynopsis, NaiveEstimatorShim};
use crate::storage::Storage;

/// Name of the committed-generation pointer file.
pub const CURRENT_FILE: &str = "CURRENT";
/// Prefix of per-generation manifest files.
pub const MANIFEST_PREFIX: &str = "MANIFEST-";
/// Name of the quarantine subdirectory.
pub const QUARANTINE_DIR: &str = "quarantine";
/// Extension of synopsis files.
pub const SYNOPSIS_EXT: &str = "syn";

/// A catalog persisted under one root directory via a [`Storage`] backend.
pub struct DurableCatalog<S: Storage> {
    root: PathBuf,
    storage: S,
}

/// Compile-time proof that the durable persist path can cross a thread
/// boundary: the maintained-pool worker owns the persist hook, so the
/// store (with either the production or the fault-injecting backend) must
/// be `Send + Sync`. Checked by every `cargo build`, including the release
/// gate in `ci.sh`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DurableCatalog<crate::FsStorage>>();
    assert_send_sync::<DurableCatalog<crate::FaultyStorage<crate::FsStorage>>>();
};

/// One problem found by [`DurableCatalog::fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckIssue {
    /// File the issue concerns, relative to the store root.
    pub file: String,
    /// What is wrong with it.
    pub detail: String,
}

/// The result of a read-only consistency check.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Generation `CURRENT` points at, if it is readable and valid.
    pub current_generation: Option<u64>,
    /// Generations whose manifest validates, newest first.
    pub valid_generations: Vec<u64>,
    /// Generations whose manifest validates but whose number exceeds the
    /// committed `CURRENT` pointer, ascending: leftovers of saves that
    /// crashed between the manifest write and the pointer swap. They are
    /// dead weight, not corruption, so they do not make the store
    /// unhealthy; [`DurableCatalog::prune_abandoned`] reclaims them.
    pub abandoned_generations: Vec<u64>,
    /// Columns in the effective manifest whose synopsis validates.
    pub columns_ok: usize,
    /// Columns in the effective manifest (total).
    pub columns_total: usize,
    /// Everything wrong, one entry per file.
    pub issues: Vec<FsckIssue>,
}

impl FsckReport {
    /// `true` when the store is fully consistent.
    pub fn healthy(&self) -> bool {
        self.issues.is_empty()
    }

    /// A human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self.current_generation {
            Some(g) => {
                let _ = writeln!(out, "CURRENT -> generation {g}");
            }
            None => {
                let _ = writeln!(out, "CURRENT missing or invalid");
            }
        }
        let _ = writeln!(out, "valid generations: {:?}", self.valid_generations);
        if !self.abandoned_generations.is_empty() {
            let _ = writeln!(
                out,
                "abandoned generations (written but never committed): {:?}",
                self.abandoned_generations
            );
        }
        let _ = writeln!(
            out,
            "columns: {}/{} synopses valid",
            self.columns_ok, self.columns_total
        );
        if self.issues.is_empty() {
            let _ = writeln!(out, "fsck: clean");
        } else {
            for i in &self.issues {
                let _ = writeln!(out, "issue: {}: {}", i.file, i.detail);
            }
            let _ = writeln!(out, "fsck: {} issue(s)", self.issues.len());
        }
        out
    }
}

/// What [`DurableCatalog::repair`] did.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Files moved into `quarantine/`, relative to the store root.
    pub quarantined: Vec<String>,
    /// Whether `CURRENT` was rewritten to point at a valid generation.
    pub current_rewritten: bool,
    /// The generation `CURRENT` points at after repair, if any.
    pub current_generation: Option<u64>,
}

impl RepairReport {
    /// A human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for q in &self.quarantined {
            let _ = writeln!(out, "quarantined: {q}");
        }
        if self.current_rewritten {
            let _ = writeln!(
                out,
                "CURRENT rewritten -> generation {:?}",
                self.current_generation
            );
        }
        if self.quarantined.is_empty() && !self.current_rewritten {
            let _ = writeln!(out, "repair: nothing to do");
        }
        out
    }
}

/// What [`DurableCatalog::prune_abandoned`] found and — unless it ran as a
/// dry run — deleted.
#[derive(Debug, Clone, Default)]
pub struct PruneReport {
    /// Abandoned (valid but never committed) generations, ascending.
    pub abandoned_generations: Vec<u64>,
    /// Files belonging to those generations, relative to the store root.
    pub files: Vec<String>,
    /// `true` when the files were actually deleted; `false` for a dry run.
    pub deleted: bool,
}

impl PruneReport {
    /// A human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.abandoned_generations.is_empty() {
            let _ = writeln!(out, "prune: no abandoned generations");
            return out;
        }
        let verb = if self.deleted {
            "pruned"
        } else {
            "would prune (dry run)"
        };
        let _ = writeln!(
            out,
            "{verb} abandoned generation(s) {:?}:",
            self.abandoned_generations
        );
        for f in &self.files {
            let _ = writeln!(out, "  {f}");
        }
        out
    }
}

fn manifest_file(generation: u64) -> String {
    format!("{MANIFEST_PREFIX}{generation}")
}

/// Maps a column name onto a safe flat-file component. Shared by synopsis
/// files and WAL segment files so one column's artifacts sort together.
pub(crate) fn sanitize_column(column: &str) -> String {
    column
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn synopsis_file(column: &str, generation: u64) -> String {
    format!("{}-{generation}.{SYNOPSIS_EXT}", sanitize_column(column))
}

fn parse_manifest_generation(name: &str) -> Option<u64> {
    name.strip_prefix(MANIFEST_PREFIX)?.parse::<u64>().ok()
}

impl<S: Storage> DurableCatalog<S> {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>, storage: S) -> Result<Self> {
        let root = root.into();
        storage.create_dir_all(&root)?;
        storage.create_dir_all(&root.join(QUARANTINE_DIR))?;
        Ok(Self { root, storage })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Borrow of the storage backend (tests inspect fault counters).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    // -- generation discovery ------------------------------------------------

    /// The generation `CURRENT` points at, if the pointer file is valid.
    fn current_pointer(&self) -> Option<u64> {
        let bytes = self.storage.read(&self.path(CURRENT_FILE)).ok()?;
        current_from_bytes(&bytes, CURRENT_FILE).ok()
    }

    /// All generations with a manifest file on disk (valid or not), ascending.
    fn manifest_generations_on_disk(&self) -> Result<Vec<u64>> {
        let mut gens: Vec<u64> = self
            .storage
            .list(&self.root)?
            .iter()
            .filter_map(|n| parse_manifest_generation(n))
            .collect();
        gens.sort_unstable();
        Ok(gens)
    }

    /// Reads and validates one generation's manifest.
    fn read_manifest(&self, generation: u64) -> Result<Manifest> {
        let name = manifest_file(generation);
        let bytes = self.storage.read(&self.path(&name))?;
        let m = manifest_from_bytes(&bytes, &name)?;
        if m.generation != generation {
            return Err(SynopticError::CorruptSynopsis {
                context: name,
                detail: format!(
                    "manifest claims generation {} but file name says {generation}",
                    m.generation
                ),
            });
        }
        Ok(m)
    }

    /// The newest valid manifest, resolving `CURRENT` first and falling back
    /// to a scan of `MANIFEST-*` files (newest first) when the pointer or
    /// its target is damaged.
    pub fn effective_manifest(&self) -> Result<Manifest> {
        if let Some(g) = self.current_pointer() {
            if let Ok(m) = self.read_manifest(g) {
                return Ok(m);
            }
        }
        let mut gens = self.manifest_generations_on_disk()?;
        gens.reverse();
        for g in gens {
            if let Ok(m) = self.read_manifest(g) {
                return Ok(m);
            }
        }
        Err(SynopticError::CorruptSynopsis {
            context: self.root.display().to_string(),
            detail: "no valid manifest found in store".into(),
        })
    }

    // -- save / load ---------------------------------------------------------

    /// Commits `catalog` as a new generation. Returns the generation number.
    ///
    /// Ordering is the crash-safety argument: synopsis files first, then the
    /// manifest, then the atomic `CURRENT` swap. An error (or crash) at any
    /// step leaves the previously committed generation untouched.
    pub fn save(&self, catalog: &Catalog) -> Result<u64> {
        // The next generation must exceed both the committed pointer and any
        // uncommitted manifest a crashed save left behind, so no file is
        // ever silently overwritten.
        let on_disk = self
            .manifest_generations_on_disk()
            .unwrap_or_default()
            .last()
            .copied();
        let prev = self.current_pointer().into_iter().chain(on_disk).max();
        let generation = prev.map_or(1, |g| g + 1);

        let mut columns = Vec::with_capacity(catalog.len());
        for (name, entry) in catalog.iter() {
            let file = synopsis_file(name, generation);
            let bytes = synopsis_to_bytes(&entry.synopsis);
            self.storage.write_atomic(&self.path(&file), &bytes)?;
            let method = entry
                .synopsis
                .load()
                .map(|l| l.method_name().to_string())
                .unwrap_or_else(|_| "?".to_string());
            columns.push(ManifestColumn {
                name: name.to_string(),
                n: entry.n,
                total_rows: entry.total_rows,
                file,
                method,
            });
        }
        let manifest = Manifest {
            generation,
            columns,
            wal_marks: catalog
                .wal_marks()
                .map(|(name, lsn)| (name.to_string(), lsn))
                .collect(),
        };
        self.storage.write_atomic(
            &self.path(&manifest_file(generation)),
            &manifest_to_bytes(&manifest),
        )?;
        // Read-back verification: before advancing CURRENT, every byte that
        // the new generation will serve from must re-read and re-validate
        // (checksums included). A torn or corrupted write surfaces *here* —
        // while the previous generation is still the committed one — so the
        // pointer never advances to a generation that cannot be loaded.
        self.verify_generation(generation)?;
        // The commit point.
        self.storage
            .write_atomic(&self.path(CURRENT_FILE), &current_to_bytes(generation))?;
        Ok(generation)
    }

    /// Re-reads and validates generation `generation` from storage: the
    /// manifest must parse and carry the expected generation number, and
    /// every synopsis file it references must pass its checksum and decode.
    fn verify_generation(&self, generation: u64) -> Result<()> {
        let mf = manifest_file(generation);
        let bytes = self.storage.read(&self.path(&mf))?;
        let manifest = manifest_from_bytes(&bytes, &mf)?;
        if manifest.generation != generation {
            return Err(SynopticError::CorruptSynopsis {
                context: mf,
                detail: format!(
                    "manifest read-back carries generation {} (expected {generation})",
                    manifest.generation
                ),
            });
        }
        for c in &manifest.columns {
            let bytes = self.storage.read(&self.path(&c.file))?;
            synopsis_from_bytes(&bytes, &c.file)?;
        }
        Ok(())
    }

    /// Strictly loads the committed generation: every synopsis must
    /// validate. Use [`Self::estimate`] for the fault-tolerant path.
    pub fn load(&self) -> Result<Catalog> {
        let m = self.effective_manifest()?;
        let mut cat = Catalog::new();
        for c in &m.columns {
            let bytes = self.storage.read(&self.path(&c.file))?;
            let synopsis = synopsis_from_bytes(&bytes, &c.file)?;
            cat.insert(
                c.name.clone(),
                ColumnEntry {
                    n: c.n,
                    total_rows: c.total_rows,
                    synopsis,
                },
            );
        }
        for (name, lsn) in &m.wal_marks {
            cat.set_wal_mark(name.clone(), *lsn);
        }
        Ok(cat)
    }

    // -- quarantine ----------------------------------------------------------

    /// Moves a damaged file into `quarantine/`, never deleting it. Collisions
    /// get a numeric suffix. Best-effort: failure to quarantine must not
    /// block the fallback chain.
    fn quarantine(&self, file: &str, quarantined: &mut Vec<String>) {
        let src = self.path(file);
        if !self.storage.exists(&src) {
            return;
        }
        let qdir = self.root.join(QUARANTINE_DIR);
        let mut dst = qdir.join(file);
        let mut k = 1;
        while self.storage.exists(&dst) {
            dst = qdir.join(format!("{file}.{k}"));
            k += 1;
        }
        if self.storage.rename(&src, &dst).is_ok() {
            quarantined.push(file.to_string());
        }
    }

    // -- degraded-mode answering ---------------------------------------------

    /// Loads an answering estimator for `column`, walking the fallback chain
    /// and reporting which link answered. Corrupt files encountered are
    /// quarantined as a side effect.
    pub fn estimator(&self, column: &str) -> Result<(LoadedSynopsis, AnswerSource)> {
        let m = self.effective_manifest()?;
        let c =
            m.columns.iter().find(|c| c.name == column).ok_or_else(|| {
                SynopticError::InvalidParameter(format!("unknown column '{column}'"))
            })?;

        let mut scrap = Vec::new();

        // Link 1: the current generation's synopsis.
        match self.try_load_synopsis(c) {
            Ok(l) => return Ok((l, AnswerSource::Primary)),
            Err(_) => self.quarantine(&c.file, &mut scrap),
        }

        // Link 2: older generations, newest first.
        let mut gens = self.manifest_generations_on_disk()?;
        gens.retain(|&g| g < m.generation);
        gens.reverse();
        for g in gens {
            let Ok(old) = self.read_manifest(g) else {
                continue;
            };
            let Some(oc) = old.columns.iter().find(|oc| oc.name == column) else {
                continue;
            };
            match self.try_load_synopsis(oc) {
                Ok(l) => return Ok((l, AnswerSource::FallbackGeneration { generation: g })),
                Err(_) => self.quarantine(&oc.file, &mut scrap),
            }
        }

        // Link 3: metadata-only NAIVE estimator. `n` was validated by the
        // manifest decoder (non-zero), so the division is safe.
        let avg = c.total_rows as f64 / c.n as f64;
        Ok((
            LoadedSynopsis::Naive(NaiveEstimatorShim::new(c.n, avg)),
            AnswerSource::FallbackNaive,
        ))
    }

    fn try_load_synopsis(&self, c: &ManifestColumn) -> Result<LoadedSynopsis> {
        let bytes = self.storage.read(&self.path(&c.file))?;
        let s = synopsis_from_bytes(&bytes, &c.file)?;
        let l = s.load()?;
        if l.n() != c.n {
            return Err(SynopticError::CorruptSynopsis {
                context: c.file.clone(),
                detail: format!(
                    "synopsis domain size {} disagrees with manifest n = {}",
                    l.n(),
                    c.n
                ),
            });
        }
        Ok(l)
    }

    /// Estimates `column BETWEEN q.lo AND q.hi` through the fallback chain.
    /// The returned [`SourcedEstimate`] carries the provenance, so degraded
    /// answers are never silent.
    pub fn estimate(&self, column: &str, q: RangeQuery) -> Result<SourcedEstimate> {
        let (est, source) = self.estimator(column)?;
        q.check_bounds(est.n())?;
        Ok(SourcedEstimate {
            value: est.estimate(q),
            source,
        })
    }

    // -- fsck / repair -------------------------------------------------------

    /// Read-only consistency check of every file in the store.
    pub fn fsck(&self) -> Result<FsckReport> {
        let mut report = FsckReport::default();
        let names = self.storage.list(&self.root)?;

        // CURRENT pointer.
        let pointer = if self.storage.exists(&self.path(CURRENT_FILE)) {
            match self
                .storage
                .read(&self.path(CURRENT_FILE))
                .and_then(|b| current_from_bytes(&b, CURRENT_FILE))
            {
                Ok(g) => Some(g),
                Err(e) => {
                    report.issues.push(FsckIssue {
                        file: CURRENT_FILE.into(),
                        detail: e.to_string(),
                    });
                    None
                }
            }
        } else {
            if names.iter().any(|n| n.starts_with(MANIFEST_PREFIX)) {
                report.issues.push(FsckIssue {
                    file: CURRENT_FILE.into(),
                    detail: "missing while manifests exist".into(),
                });
            }
            None
        };

        // Manifests.
        let mut valid = Vec::new();
        for name in &names {
            let Some(g) = parse_manifest_generation(name) else {
                continue;
            };
            match self.read_manifest(g) {
                Ok(_) => valid.push(g),
                Err(e) => report.issues.push(FsckIssue {
                    file: name.clone(),
                    detail: e.to_string(),
                }),
            }
        }
        valid.sort_unstable();
        valid.reverse();
        if let Some(g) = pointer {
            if valid.contains(&g) {
                report.current_generation = Some(g);
            } else {
                report.issues.push(FsckIssue {
                    file: CURRENT_FILE.into(),
                    detail: format!("points at generation {g} with no valid manifest"),
                });
            }
        }
        report.valid_generations = valid;
        if let Some(cur) = report.current_generation {
            report.abandoned_generations = report
                .valid_generations
                .iter()
                .copied()
                .filter(|&g| g > cur)
                .collect();
            report.abandoned_generations.sort_unstable();
        }

        // Stray temp files from interrupted writes.
        for name in &names {
            if name.ends_with(".tmp") {
                report.issues.push(FsckIssue {
                    file: name.clone(),
                    detail: "stray temp file from an interrupted write".into(),
                });
            }
        }

        // Every synopsis file on disk must validate.
        for name in &names {
            if !name.ends_with(&format!(".{SYNOPSIS_EXT}")) {
                continue;
            }
            if let Err(e) = self
                .storage
                .read(&self.path(name))
                .and_then(|b| synopsis_from_bytes(&b, name).map(|_| ()))
            {
                report.issues.push(FsckIssue {
                    file: name.clone(),
                    detail: e.to_string(),
                });
            }
        }

        // Columns of the effective manifest.
        if let Ok(m) = self.effective_manifest() {
            report.columns_total = m.columns.len();
            for c in &m.columns {
                match self.try_load_synopsis(c) {
                    Ok(_) => report.columns_ok += 1,
                    Err(e) => report.issues.push(FsckIssue {
                        file: c.file.clone(),
                        detail: format!("column '{}': {e}", c.name),
                    }),
                }
            }
        }

        // Dedup (a corrupt synopsis may be reported by both sweeps).
        report.issues.sort_by(|a, b| {
            (a.file.as_str(), a.detail.as_str()).cmp(&(b.file.as_str(), b.detail.as_str()))
        });
        report.issues.dedup();
        Ok(report)
    }

    /// Repairs the store: quarantines corrupt or stray files and re-points
    /// `CURRENT` at the newest valid generation. Never deletes anything.
    pub fn repair(&self) -> Result<RepairReport> {
        let mut report = RepairReport::default();
        let names = self.storage.list(&self.root)?;

        // Quarantine stray temp files.
        for name in &names {
            if name.ends_with(".tmp") {
                self.quarantine(name, &mut report.quarantined);
            }
        }

        // Quarantine corrupt manifests; collect valid generations.
        let mut valid = Vec::new();
        for name in &names {
            let Some(g) = parse_manifest_generation(name) else {
                continue;
            };
            match self.read_manifest(g) {
                Ok(_) => valid.push(g),
                Err(_) => self.quarantine(name, &mut report.quarantined),
            }
        }
        valid.sort_unstable();

        // Quarantine corrupt synopsis files.
        for name in &names {
            if !name.ends_with(&format!(".{SYNOPSIS_EXT}")) {
                continue;
            }
            let bad = self
                .storage
                .read(&self.path(name))
                .and_then(|b| synopsis_from_bytes(&b, name).map(|_| ()))
                .is_err();
            if bad {
                self.quarantine(name, &mut report.quarantined);
            }
        }

        // Decide where CURRENT should point. Never roll *forward* past a
        // valid pointer — that would commit a transaction that never
        // committed. Roll *back* only when the pointed generation can no
        // longer serve every column from validated synopses.
        let serviceable = |g: u64| -> bool {
            self.read_manifest(g)
                .map(|m| m.columns.iter().all(|c| self.try_load_synopsis(c).is_ok()))
                .unwrap_or(false)
        };
        let pointer = self.current_pointer().filter(|g| valid.contains(g));
        let target = match pointer {
            Some(g) if serviceable(g) => Some(g),
            Some(g) => valid
                .iter()
                .rev()
                .copied()
                .find(|&v| v <= g && serviceable(v))
                // No serviceable generation at all: keep the pointer and let
                // reads degrade to metadata-only answers.
                .or(Some(g)),
            None => valid
                .iter()
                .rev()
                .copied()
                .find(|&v| serviceable(v))
                .or_else(|| valid.last().copied()),
        };
        report.current_generation = target;
        match target {
            Some(t) if pointer != Some(t) => {
                self.storage
                    .write_atomic(&self.path(CURRENT_FILE), &current_to_bytes(t))?;
                report.current_rewritten = true;
            }
            Some(_) => {}
            None => {
                // Nothing valid to point at; move any stale pointer aside.
                if self.storage.exists(&self.path(CURRENT_FILE)) {
                    self.quarantine(CURRENT_FILE, &mut report.quarantined);
                }
            }
        }
        Ok(report)
    }

    /// Deletes (or, with `dry_run`, merely reports) abandoned generations:
    /// manifests that validate but whose generation number exceeds the
    /// committed `CURRENT` pointer, plus the synopsis files they reference.
    /// These are leftovers of saves that crashed after writing their files
    /// but before the pointer swap — fully readable, never authoritative.
    ///
    /// Only *valid* uncommitted generations are touched; corrupt files stay
    /// on the quarantine path ([`Self::repair`]), which never deletes.
    /// Without a valid committed pointer nothing is provably abandoned and
    /// nothing is removed. Synopsis files go first and the manifest last,
    /// so an interrupted prune resumes cleanly on the next call.
    /// Idempotent: a second call finds nothing.
    pub fn prune_abandoned(&self, dry_run: bool) -> Result<PruneReport> {
        let mut report = PruneReport {
            deleted: !dry_run,
            ..Default::default()
        };
        let Some(current) = self.current_pointer() else {
            return Ok(report);
        };
        let mut gens: Vec<u64> = Vec::new();
        for name in self.storage.list(&self.root)? {
            let Some(g) = parse_manifest_generation(&name) else {
                continue;
            };
            if g > current && self.read_manifest(g).is_ok() {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        for &g in &gens {
            let m = self.read_manifest(g)?;
            for c in &m.columns {
                if self.storage.exists(&self.path(&c.file)) {
                    if !dry_run {
                        self.storage.remove(&self.path(&c.file))?;
                    }
                    report.files.push(c.file.clone());
                }
            }
            let mf = manifest_file(g);
            if !dry_run {
                self.storage.remove(&self.path(&mf))?;
            }
            report.files.push(mf);
        }
        report.abandoned_generations = gens;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::PersistentSynopsis;
    use crate::storage::{Fault, FaultyStorage, FsStorage};
    use synoptic_core::PrefixSums;
    use synoptic_hist::sap0::build_sap0;

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("synoptic_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1];
        let ps = PrefixSums::from_values(&vals);
        let h = build_sap0(&ps, 3).unwrap();
        cat.insert(
            "price",
            ColumnEntry {
                n: vals.len(),
                total_rows: ps.total() as i64,
                synopsis: PersistentSynopsis::from_sap0(&h),
            },
        );
        cat
    }

    #[test]
    fn save_load_round_trip_and_generations() {
        let root = tmp_root("roundtrip");
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        let cat = sample_catalog();
        assert_eq!(store.save(&cat).unwrap(), 1);
        assert_eq!(store.save(&cat).unwrap(), 2);
        let back = store.load().unwrap();
        assert_eq!(back.names(), cat.names());
        for q in RangeQuery::all(12) {
            let e = store.estimate("price", q).unwrap();
            assert_eq!(e.source, AnswerSource::Primary);
            let expect = cat.estimate("price", q).unwrap();
            assert!(
                (e.value - expect).abs() < 1e-9,
                "{q:?}: {} vs {expect}",
                e.value
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_before_current_swap_preserves_previous_generation() {
        let root = tmp_root("crash");
        {
            let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
            store.save(&sample_catalog()).unwrap();
        }
        // Gen 2 commit crashes at the CURRENT swap (write #3 of the save).
        let faulty = FaultyStorage::new(
            FsStorage::new(),
            vec![
                Fault::CleanWrite,
                Fault::CleanWrite,
                Fault::CrashBeforeRename,
            ],
        );
        let store = DurableCatalog::open(&root, faulty).unwrap();
        assert!(store.save(&sample_catalog()).is_err());
        assert_eq!(store.storage().faults_fired(), 1);
        // The store still serves generation 1 as primary.
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        let m = store.effective_manifest().unwrap();
        assert_eq!(m.generation, 1);
        let e = store
            .estimate("price", RangeQuery { lo: 2, hi: 5 })
            .unwrap();
        assert_eq!(e.source, AnswerSource::Primary);
        // Repair sweeps the stray CURRENT.tmp left by the crash.
        let r = store.repair().unwrap();
        assert!(r.quarantined.iter().any(|f| f.ends_with(".tmp")), "{r:?}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_primary_falls_back_to_older_generation_and_quarantines() {
        let root = tmp_root("fallbackgen");
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        store.save(&sample_catalog()).unwrap();
        store.save(&sample_catalog()).unwrap();
        // Flip one payload byte of the generation-2 synopsis on disk.
        let victim = root.join("price-2.syn");
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&victim, bytes).unwrap();

        let q = RangeQuery { lo: 0, hi: 11 };
        let e = store.estimate("price", q).unwrap();
        assert_eq!(e.source, AnswerSource::FallbackGeneration { generation: 1 });
        let expect = sample_catalog().estimate("price", q).unwrap();
        assert!((e.value - expect).abs() < 1e-9);
        // The corrupt file was moved aside, not deleted.
        assert!(!victim.exists());
        assert!(root.join(QUARANTINE_DIR).join("price-2.syn").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn all_copies_corrupt_falls_back_to_naive_metadata() {
        let root = tmp_root("fallbacknaive");
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        let cat = sample_catalog();
        store.save(&cat).unwrap();
        store.save(&cat).unwrap();
        for g in [1u64, 2] {
            let p = root.join(format!("price-{g}.syn"));
            let mut b = std::fs::read(&p).unwrap();
            let last = b.len() - 1;
            b[last] ^= 0x01;
            std::fs::write(&p, b).unwrap();
        }
        let q = RangeQuery { lo: 0, hi: 11 };
        let e = store.estimate("price", q).unwrap();
        assert_eq!(e.source, AnswerSource::FallbackNaive);
        assert!(e.source.is_degraded());
        // total_rows = 65 over n = 12; whole-domain estimate is exact.
        assert!((e.value - 65.0).abs() < 1e-9, "{}", e.value);
        // Strict load refuses outright rather than serving garbage.
        assert!(store.load().is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_current_pointer_recovers_by_scanning_manifests() {
        let root = tmp_root("badcurrent");
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        store.save(&sample_catalog()).unwrap();
        store.save(&sample_catalog()).unwrap();
        let cur = root.join(CURRENT_FILE);
        let mut b = std::fs::read(&cur).unwrap();
        b[5] ^= 0xFF;
        std::fs::write(&cur, b).unwrap();
        // Scanning finds generation 2 without the pointer.
        assert_eq!(store.effective_manifest().unwrap().generation, 2);
        // Repair rewrites CURRENT.
        let r = store.repair().unwrap();
        assert!(r.current_rewritten);
        assert_eq!(r.current_generation, Some(2));
        assert!(store.fsck().unwrap().healthy());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_reports_and_repair_clears_every_issue() {
        let root = tmp_root("fsck");
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        store.save(&sample_catalog()).unwrap();
        store.save(&sample_catalog()).unwrap();
        // Clean store: healthy.
        assert!(store.fsck().unwrap().healthy());
        // Damage: truncate the gen-2 synopsis, corrupt the gen-1 manifest,
        // drop a stray temp file.
        let syn = root.join("price-2.syn");
        let b = std::fs::read(&syn).unwrap();
        std::fs::write(&syn, &b[..b.len() / 2]).unwrap();
        let man = root.join(manifest_file(1));
        let mut mb = std::fs::read(&man).unwrap();
        mb[30] ^= 0x08;
        std::fs::write(&man, mb).unwrap();
        std::fs::write(root.join("junk.tmp"), b"partial").unwrap();

        let rep = store.fsck().unwrap();
        assert!(!rep.healthy());
        assert_eq!(rep.columns_total, 1);
        assert_eq!(rep.columns_ok, 0);
        let files: Vec<&str> = rep.issues.iter().map(|i| i.file.as_str()).collect();
        assert!(files.contains(&"price-2.syn"), "{files:?}");
        assert!(files.contains(&"MANIFEST-1"), "{files:?}");
        assert!(files.contains(&"junk.tmp"), "{files:?}");
        let rendered = rep.render();
        assert!(rendered.contains("issue:"), "{rendered}");

        let r = store.repair().unwrap();
        assert!(r.quarantined.len() >= 3, "{r:?}");
        // After repair the only valid generation is 2, whose synopsis was
        // quarantined — CURRENT still points at it (manifest is valid), and
        // estimates degrade to naive rather than failing.
        let e = store
            .estimate("price", RangeQuery { lo: 0, hi: 11 })
            .unwrap();
        assert_eq!(e.source, AnswerSource::FallbackNaive);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_column_is_a_parameter_error_not_a_fallback() {
        let root = tmp_root("unknown");
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        store.save(&sample_catalog()).unwrap();
        assert!(matches!(
            store.estimate("nope", RangeQuery::point(0)),
            Err(SynopticError::InvalidParameter(_))
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_synopsis_write_fails_save_before_current_advances() {
        // Read-back verification: a torn synopsis write (silent at write
        // time — the bytes land, just short) must be caught by save()'s
        // pre-commit read-back, so CURRENT never points at the bad
        // generation.
        let root = tmp_root("tornsave");
        {
            let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
            store.save(&sample_catalog()).unwrap();
        }
        let faulty = FaultyStorage::new(FsStorage::new(), vec![Fault::TornWrite { keep: 10 }]);
        let store = DurableCatalog::open(&root, faulty).unwrap();
        let err = store.save(&sample_catalog()).unwrap_err();
        assert!(
            matches!(err, SynopticError::CorruptSynopsis { .. }),
            "{err:?}"
        );
        assert_eq!(store.storage().faults_fired(), 1);
        // The committed pointer still names generation 1, which loads fine.
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        assert_eq!(store.effective_manifest().unwrap().generation, 1);
        assert!(store.load().is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wal_marks_survive_save_and_load() {
        let root = tmp_root("walmarks");
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        let mut cat = sample_catalog();
        cat.set_wal_mark("price", 37);
        store.save(&cat).unwrap();
        let back = store.load().unwrap();
        assert_eq!(back.wal_mark("price"), 37);
        assert_eq!(back.wal_mark("other"), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_reports_and_prune_reclaims_abandoned_generation() {
        // Crash a gen-2 save at the CURRENT swap: synopses + manifest for
        // generation 2 are valid on disk but were never committed.
        let root = tmp_root("prune");
        {
            let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
            store.save(&sample_catalog()).unwrap();
        }
        let faulty = FaultyStorage::new(
            FsStorage::new(),
            vec![
                Fault::CleanWrite,
                Fault::CleanWrite,
                Fault::CrashBeforeRename,
            ],
        );
        let store = DurableCatalog::open(&root, faulty).unwrap();
        assert!(store.save(&sample_catalog()).is_err());
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        // Sweep the stray CURRENT.tmp the crash left behind.
        store.repair().unwrap();

        let rep = store.fsck().unwrap();
        assert_eq!(rep.current_generation, Some(1));
        assert_eq!(rep.abandoned_generations, vec![2]);
        // Abandoned is dead weight, not corruption.
        assert!(rep.healthy(), "{:?}", rep.issues);
        assert!(rep.render().contains("abandoned"), "{}", rep.render());

        // A dry run reports the same files but deletes nothing.
        let dry = store.prune_abandoned(true).unwrap();
        assert_eq!(dry.abandoned_generations, vec![2]);
        assert!(!dry.deleted);
        assert!(dry.render().contains("dry run"), "{}", dry.render());
        assert!(root.join("MANIFEST-2").exists());
        assert!(root.join("price-2.syn").exists());

        // A real prune deletes both files of generation 2, is idempotent,
        // and leaves the committed generation serving as primary.
        let p = store.prune_abandoned(false).unwrap();
        assert_eq!(p.abandoned_generations, vec![2]);
        assert!(p.deleted);
        assert!(
            p.files.contains(&"price-2.syn".to_string())
                && p.files.contains(&"MANIFEST-2".to_string()),
            "{:?}",
            p.files
        );
        assert!(!root.join("MANIFEST-2").exists());
        assert!(!root.join("price-2.syn").exists());
        let again = store.prune_abandoned(false).unwrap();
        assert!(again.abandoned_generations.is_empty());
        let e = store
            .estimate("price", RangeQuery { lo: 0, hi: 11 })
            .unwrap();
        assert_eq!(e.source, AnswerSource::Primary);
        assert!(store.fsck().unwrap().healthy());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn prune_without_committed_pointer_removes_nothing() {
        // A store whose only save crashed at the pointer swap has a valid
        // generation-1 manifest and no CURRENT: nothing is provably
        // abandoned, so prune must not destroy the only copy of the data.
        let root = tmp_root("prunenocur");
        let faulty = FaultyStorage::new(
            FsStorage::new(),
            vec![
                Fault::CleanWrite,
                Fault::CleanWrite,
                Fault::CrashBeforeRename,
            ],
        );
        let store = DurableCatalog::open(&root, faulty).unwrap();
        assert!(store.save(&sample_catalog()).is_err());
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        let p = store.prune_abandoned(false).unwrap();
        assert!(p.abandoned_generations.is_empty());
        assert!(p.files.is_empty());
        assert!(root.join("MANIFEST-1").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn enospc_during_save_leaves_store_consistent() {
        let root = tmp_root("enospc");
        {
            let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
            store.save(&sample_catalog()).unwrap();
        }
        let faulty = FaultyStorage::new(FsStorage::new(), vec![Fault::Enospc]);
        let store = DurableCatalog::open(&root, faulty).unwrap();
        assert!(store.save(&sample_catalog()).is_err());
        let store = DurableCatalog::open(&root, FsStorage::new()).unwrap();
        assert_eq!(store.effective_manifest().unwrap().generation, 1);
        assert!(store.fsck().unwrap().healthy());
        let _ = std::fs::remove_dir_all(&root);
    }
}
