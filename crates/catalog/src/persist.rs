//! Serializable synopsis representations.
//!
//! Each variant stores *only* what the paper's storage accounting says the
//! synopsis needs; anything else (bucket averages, exact bucket totals,
//! position maps) is recovered on load. The round-trip tests assert that a
//! persisted-and-reloaded synopsis answers every query identically to the
//! original.
//!
//! The on-disk encoding lives in [`crate::format`] (a checksummed,
//! self-describing binary frame); this module is the in-memory
//! representation plus the semantic validation run at load time.

use synoptic_core::{
    Bucketing, NaiveEstimator, PrefixSums, RangeEstimator, RangeQuery, Result, SynopticError,
    ValueHistogram,
};
use synoptic_wavelet::coeff::SparseCoeffs;
use synoptic_wavelet::range_optimal::CoeffSlot;
use synoptic_wavelet::{PointWaveletSynopsis, RangeOptimalWavelet};

/// A self-contained, serializable synopsis.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistentSynopsis {
    /// One global average (1 word).
    Naive {
        /// Domain size.
        n: usize,
        /// The stored average.
        avg: f64,
    },
    /// A per-bucket-value histogram (2B words): boundaries + values.
    ValueHistogram {
        /// Domain size.
        n: usize,
        /// Bucket start indices.
        starts: Vec<usize>,
        /// Per-bucket values.
        values: Vec<f64>,
        /// Display label.
        name: String,
    },
    /// SAP0 (3B words): boundaries + suffix/prefix summary values; bucket
    /// averages recovered per Theorem 7.
    Sap0 {
        /// Domain size.
        n: usize,
        /// Bucket start indices.
        starts: Vec<usize>,
        /// Suffix summary values.
        suff: Vec<f64>,
        /// Prefix summary values.
        pref: Vec<f64>,
    },
    /// SAP1 (5B words): boundaries + the four fit values per bucket; bucket
    /// averages recovered per Theorem 8.
    Sap1 {
        /// Domain size.
        n: usize,
        /// Bucket start indices.
        starts: Vec<usize>,
        /// Suffix fit slopes.
        suff_slope: Vec<f64>,
        /// Suffix fit intercepts.
        suff_icpt: Vec<f64>,
        /// Prefix fit slopes.
        pref_slope: Vec<f64>,
        /// Prefix fit intercepts.
        pref_icpt: Vec<f64>,
    },
    /// Point-wise top-B wavelet (2 words per coefficient).
    WaveletPoint {
        /// Domain size.
        n: usize,
        /// Padded power-of-two transform length.
        padded: usize,
        /// `(coefficient index, value)` pairs.
        entries: Vec<(u32, f64)>,
    },
    /// Range-optimal virtual-matrix wavelet (2 words per coefficient).
    WaveletRange {
        /// Domain size.
        n: usize,
        /// Padded power-of-two transform length.
        padded: usize,
        /// `(slot, value)` pairs.
        entries: Vec<(CoeffSlot, f64)>,
    },
    /// The exact frequency array itself (`n` words). Not a summary: this is
    /// the snapshot the write-ahead journal replays deltas onto, so
    /// WAL-maintained columns persist it to make recovery exact. Answers
    /// every range sum exactly via prefix sums rebuilt at load.
    Frequencies {
        /// The frequency at every domain position.
        values: Vec<i64>,
    },
}

/// A reloaded synopsis, answering queries exactly as the original did.
///
/// SAP-family synopses are reconstructed into a lightweight answering
/// structure that derives the middle-piece bucket totals from the recovered
/// averages (the paper's recoverability argument), so no exact `i128` sums
/// are needed at load time.
pub enum LoadedSynopsis {
    /// Naive estimator.
    Naive(NaiveEstimatorShim),
    /// Any telescoping per-bucket-value histogram.
    Value(ValueHistogram),
    /// SAP-family histogram with recovered averages.
    Sap(SapAnswering),
    /// Point wavelet.
    WaveletPoint(PointWaveletSynopsis),
    /// Range-optimal wavelet.
    WaveletRange(RangeOptimalWavelet),
    /// Exact frequencies (prefix-sum answering).
    Frequencies(FrequenciesEstimator),
}

/// Exact range-sum answering over a reloaded frequency array.
#[derive(Debug, Clone)]
pub struct FrequenciesEstimator {
    values: Vec<i64>,
    ps: PrefixSums,
}

impl FrequenciesEstimator {
    /// The reloaded frequency array (what WAL replay applies deltas to).
    pub fn values(&self) -> &[i64] {
        &self.values
    }
}

impl RangeEstimator for FrequenciesEstimator {
    fn n(&self) -> usize {
        self.ps.n()
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        self.ps.answer(q) as f64
    }
    fn storage_words(&self) -> usize {
        self.values.len()
    }
    fn method_name(&self) -> &str {
        "FREQ"
    }
}

/// A reconstructed NAIVE estimator (the core type requires prefix sums to
/// build, so persistence carries the average directly).
#[derive(Debug, Clone)]
pub struct NaiveEstimatorShim {
    n: usize,
    avg: f64,
}

impl NaiveEstimatorShim {
    /// A NAIVE answering shim for a domain of size `n` whose stored global
    /// average is `avg`. Used both when reloading a persisted `Naive`
    /// synopsis and as the last link of the degraded-mode fallback chain,
    /// where `avg` is reconstructed from manifest metadata
    /// (`total_rows / n`).
    pub fn new(n: usize, avg: f64) -> Self {
        Self { n, avg }
    }
}

impl RangeEstimator for NaiveEstimatorShim {
    fn n(&self) -> usize {
        self.n
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        q.len() as f64 * self.avg
    }
    fn storage_words(&self) -> usize {
        1
    }
    fn method_name(&self) -> &str {
        "NAIVE"
    }
}

/// SAP0/SAP1 answering from recovered summaries (no exact sums stored).
#[derive(Debug, Clone)]
pub struct SapAnswering {
    bucketing: Bucketing,
    posmap: Vec<u32>,
    /// Recovered per-bucket averages.
    avgs: Vec<f64>,
    /// Cumulative recovered bucket totals (`cum[0] = 0`).
    cum: Vec<f64>,
    /// Suffix piece per bucket as a function of `t = right − a + 1`:
    /// `slope·t + icpt`. SAP0 uses `slope = 0`.
    suff_slope: Vec<f64>,
    suff_icpt: Vec<f64>,
    pref_slope: Vec<f64>,
    pref_icpt: Vec<f64>,
    words_per_bucket: usize,
    name: &'static str,
}

impl SapAnswering {
    fn new(
        bucketing: Bucketing,
        suff_slope: Vec<f64>,
        suff_icpt: Vec<f64>,
        pref_slope: Vec<f64>,
        pref_icpt: Vec<f64>,
        words_per_bucket: usize,
        name: &'static str,
    ) -> Self {
        // Recovered averages: mean suffix + mean prefix = (len+1)·avg, where
        // the fitted means are slope·(len+1)/2 + intercept.
        let nb = bucketing.num_buckets();
        let mut avgs = Vec::with_capacity(nb);
        let mut cum = Vec::with_capacity(nb + 1);
        cum.push(0.0);
        let mut acc = 0.0;
        for b in 0..nb {
            let len = bucketing.len(b) as f64;
            let smean = suff_slope[b] * (len + 1.0) / 2.0 + suff_icpt[b];
            let pmean = pref_slope[b] * (len + 1.0) / 2.0 + pref_icpt[b];
            let avg = (smean + pmean) / (len + 1.0);
            avgs.push(avg);
            acc += avg * len;
            cum.push(acc);
        }
        let posmap = bucketing.position_map();
        Self {
            bucketing,
            posmap,
            avgs,
            cum,
            suff_slope,
            suff_icpt,
            pref_slope,
            pref_icpt,
            words_per_bucket,
            name,
        }
    }
}

impl RangeEstimator for SapAnswering {
    fn n(&self) -> usize {
        self.bucketing.n()
    }

    fn estimate(&self, q: RangeQuery) -> f64 {
        let p = self.posmap[q.lo] as usize;
        let r = self.posmap[q.hi] as usize;
        if p == r {
            q.len() as f64 * self.avgs[p]
        } else {
            let ts = (self.bucketing.right(p) - q.lo + 1) as f64;
            let tp = (q.hi - self.bucketing.left(r) + 1) as f64;
            let middle = self.cum[r] - self.cum[p + 1];
            (self.suff_slope[p] * ts + self.suff_icpt[p])
                + middle
                + (self.pref_slope[r] * tp + self.pref_icpt[r])
        }
    }

    fn storage_words(&self) -> usize {
        self.words_per_bucket * self.bucketing.num_buckets()
    }

    fn method_name(&self) -> &str {
        self.name
    }
}

impl RangeEstimator for LoadedSynopsis {
    fn n(&self) -> usize {
        match self {
            LoadedSynopsis::Naive(e) => e.n(),
            LoadedSynopsis::Value(e) => e.n(),
            LoadedSynopsis::Sap(e) => e.n(),
            LoadedSynopsis::WaveletPoint(e) => e.n(),
            LoadedSynopsis::WaveletRange(e) => e.n(),
            LoadedSynopsis::Frequencies(e) => e.n(),
        }
    }
    fn estimate(&self, q: RangeQuery) -> f64 {
        match self {
            LoadedSynopsis::Naive(e) => e.estimate(q),
            LoadedSynopsis::Value(e) => e.estimate(q),
            LoadedSynopsis::Sap(e) => e.estimate(q),
            LoadedSynopsis::WaveletPoint(e) => e.estimate(q),
            LoadedSynopsis::WaveletRange(e) => e.estimate(q),
            LoadedSynopsis::Frequencies(e) => e.estimate(q),
        }
    }
    fn storage_words(&self) -> usize {
        match self {
            LoadedSynopsis::Naive(e) => e.storage_words(),
            LoadedSynopsis::Value(e) => e.storage_words(),
            LoadedSynopsis::Sap(e) => e.storage_words(),
            LoadedSynopsis::WaveletPoint(e) => e.storage_words(),
            LoadedSynopsis::WaveletRange(e) => e.storage_words(),
            LoadedSynopsis::Frequencies(e) => e.storage_words(),
        }
    }
    fn method_name(&self) -> &str {
        match self {
            LoadedSynopsis::Naive(e) => e.method_name(),
            LoadedSynopsis::Value(e) => e.method_name(),
            LoadedSynopsis::Sap(e) => e.method_name(),
            LoadedSynopsis::WaveletPoint(e) => e.method_name(),
            LoadedSynopsis::WaveletRange(e) => e.method_name(),
            LoadedSynopsis::Frequencies(e) => e.method_name(),
        }
    }
}

impl LoadedSynopsis {
    /// The exact frequency array, when this synopsis is a
    /// [`LoadedSynopsis::Frequencies`] snapshot (`None` for every summary
    /// variant). WAL recovery replays journal deltas onto this.
    pub fn exact_frequencies(&self) -> Option<&[i64]> {
        match self {
            LoadedSynopsis::Frequencies(e) => Some(e.values()),
            _ => None,
        }
    }
}

impl PersistentSynopsis {
    /// Captures a NAIVE estimator.
    pub fn from_naive(ps: &PrefixSums) -> Self {
        let e = NaiveEstimator::new(ps);
        PersistentSynopsis::Naive {
            n: ps.n(),
            avg: e.avg(),
        }
    }

    /// Captures a value histogram.
    pub fn from_value_histogram(h: &ValueHistogram) -> Self {
        PersistentSynopsis::ValueHistogram {
            n: h.n(),
            starts: h.bucketing().starts().to_vec(),
            values: h.values().to_vec(),
            name: h.method_name().to_string(),
        }
    }

    /// Captures a SAP0 histogram (only `suff`/`pref` are stored — Thm 7).
    pub fn from_sap0(h: &synoptic_core::Sap0Histogram) -> Self {
        PersistentSynopsis::Sap0 {
            n: h.n(),
            starts: h.bucketing().starts().to_vec(),
            suff: h.suff().to_vec(),
            pref: h.pref().to_vec(),
        }
    }

    /// Captures a SAP1 histogram (only the four fit values — Thm 8).
    pub fn from_sap1(h: &synoptic_core::Sap1Histogram) -> Self {
        let nb = h.bucketing().num_buckets();
        let mut ss = Vec::with_capacity(nb);
        let mut si = Vec::with_capacity(nb);
        let mut pslope = Vec::with_capacity(nb);
        let mut pi = Vec::with_capacity(nb);
        for b in 0..nb {
            let (a, c) = h.suffix_coeffs(b);
            ss.push(a);
            si.push(c);
            let (a, c) = h.prefix_coeffs(b);
            pslope.push(a);
            pi.push(c);
        }
        PersistentSynopsis::Sap1 {
            n: h.n(),
            starts: h.bucketing().starts().to_vec(),
            suff_slope: ss,
            suff_icpt: si,
            pref_slope: pslope,
            pref_icpt: pi,
        }
    }

    /// Captures a point wavelet synopsis.
    pub fn from_wavelet_point(w: &PointWaveletSynopsis) -> Self {
        PersistentSynopsis::WaveletPoint {
            n: w.n(),
            padded: w.coeffs().n(),
            entries: w.coeffs().entries().to_vec(),
        }
    }

    /// Captures a range-optimal wavelet synopsis.
    pub fn from_wavelet_range(w: &RangeOptimalWavelet) -> Self {
        PersistentSynopsis::WaveletRange {
            n: w.n(),
            padded: w.padded_len(),
            entries: w.coeffs().to_vec(),
        }
    }

    /// Captures the exact frequency array (the WAL recovery snapshot).
    pub fn from_frequencies(values: &[i64]) -> Self {
        PersistentSynopsis::Frequencies {
            values: values.to_vec(),
        }
    }

    /// Storage footprint of the persisted form, in the paper's words.
    pub fn storage_words(&self) -> usize {
        match self {
            PersistentSynopsis::Naive { .. } => 1,
            PersistentSynopsis::ValueHistogram { values, .. } => 2 * values.len(),
            PersistentSynopsis::Sap0 { suff, .. } => 3 * suff.len(),
            PersistentSynopsis::Sap1 { suff_slope, .. } => 5 * suff_slope.len(),
            PersistentSynopsis::WaveletPoint { entries, .. } => 2 * entries.len(),
            PersistentSynopsis::WaveletRange { entries, .. } => 2 * entries.len(),
            PersistentSynopsis::Frequencies { values } => values.len(),
        }
    }

    /// Reconstructs an answering estimator.
    pub fn load(&self) -> Result<LoadedSynopsis> {
        Ok(match self {
            PersistentSynopsis::Naive { n, avg } => {
                LoadedSynopsis::Naive(NaiveEstimatorShim { n: *n, avg: *avg })
            }
            PersistentSynopsis::ValueHistogram {
                n,
                starts,
                values,
                name,
            } => {
                let b = Bucketing::new(*n, starts.clone())?;
                LoadedSynopsis::Value(ValueHistogram::new(b, values.clone(), name.clone())?)
            }
            PersistentSynopsis::Sap0 {
                n,
                starts,
                suff,
                pref,
            } => {
                let b = Bucketing::new(*n, starts.clone())?;
                let nb = b.num_buckets();
                if suff.len() != nb || pref.len() != nb {
                    return Err(SynopticError::CorruptSynopsis {
                        context: "SAP0".into(),
                        detail: format!(
                            "summary-value count mismatch: {} buckets but {} suff / {} pref",
                            nb,
                            suff.len(),
                            pref.len()
                        ),
                    });
                }
                LoadedSynopsis::Sap(SapAnswering::new(
                    b,
                    vec![0.0; nb],
                    suff.clone(),
                    vec![0.0; nb],
                    pref.clone(),
                    3,
                    "SAP0",
                ))
            }
            PersistentSynopsis::Sap1 {
                n,
                starts,
                suff_slope,
                suff_icpt,
                pref_slope,
                pref_icpt,
            } => {
                let b = Bucketing::new(*n, starts.clone())?;
                let nb = b.num_buckets();
                if [suff_slope, suff_icpt, pref_slope, pref_icpt]
                    .iter()
                    .any(|v| v.len() != nb)
                {
                    return Err(SynopticError::CorruptSynopsis {
                        context: "SAP1".into(),
                        detail: format!("fit-value count mismatch: expected {nb} per vector"),
                    });
                }
                LoadedSynopsis::Sap(SapAnswering::new(
                    b,
                    suff_slope.clone(),
                    suff_icpt.clone(),
                    pref_slope.clone(),
                    pref_icpt.clone(),
                    5,
                    "SAP1",
                ))
            }
            PersistentSynopsis::WaveletPoint { n, padded, entries } => {
                if !padded.is_power_of_two() || *padded < *n {
                    return Err(SynopticError::CorruptSynopsis {
                        context: "wavelet-point".into(),
                        detail: format!(
                            "padded transform length {padded} is not a power of two ≥ n = {n}"
                        ),
                    });
                }
                if entries.iter().any(|(i, _)| *i as usize >= *padded) {
                    return Err(SynopticError::CorruptSynopsis {
                        context: "wavelet-point".into(),
                        detail: format!("coefficient index out of range (padded = {padded})"),
                    });
                }
                let coeffs = SparseCoeffs::from_entries(*padded, entries.clone());
                LoadedSynopsis::WaveletPoint(PointWaveletSynopsis::from_coeffs(*n, coeffs))
            }
            PersistentSynopsis::WaveletRange { n, padded, entries } => {
                if !padded.is_power_of_two() || *padded < *n + 1 {
                    return Err(SynopticError::CorruptSynopsis {
                        context: "wavelet-range".into(),
                        detail: format!(
                            "padded transform length {padded} is not a power of two ≥ n + 1 = {}",
                            *n + 1
                        ),
                    });
                }
                LoadedSynopsis::WaveletRange(RangeOptimalWavelet::from_parts(
                    *n,
                    *padded,
                    entries.clone(),
                    0.0,
                ))
            }
            PersistentSynopsis::Frequencies { values } => {
                if values.is_empty() {
                    return Err(SynopticError::CorruptSynopsis {
                        context: "frequencies".into(),
                        detail: "empty frequency array".into(),
                    });
                }
                LoadedSynopsis::Frequencies(FrequenciesEstimator {
                    ps: PrefixSums::from_values(values),
                    values: values.clone(),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::RangeQuery;
    use synoptic_hist::sap0::build_sap0;
    use synoptic_hist::sap1::build_sap1;

    fn data() -> (Vec<i64>, PrefixSums) {
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1, 8, 3];
        let ps = PrefixSums::from_values(&vals);
        (vals, ps)
    }

    fn assert_roundtrip(original: &dyn RangeEstimator, p: &PersistentSynopsis, tol: f64) {
        // Checksummed binary round-trip through the on-disk format.
        let bytes = crate::format::synopsis_to_bytes(p);
        let back = crate::format::synopsis_from_bytes(&bytes, "test").unwrap();
        assert_eq!(&back, p);
        let loaded = back.load().unwrap();
        assert_eq!(loaded.n(), original.n());
        assert_eq!(loaded.method_name(), original.method_name());
        for q in RangeQuery::all(original.n()) {
            let (a, b) = (original.estimate(q), loaded.estimate(q));
            assert!(
                (a - b).abs() <= tol * (1.0 + a.abs()),
                "{} at {q:?}: {a} vs {b}",
                original.method_name()
            );
        }
    }

    #[test]
    fn naive_roundtrip() {
        let (_, ps) = data();
        let e = NaiveEstimator::new(&ps);
        let p = PersistentSynopsis::from_naive(&ps);
        assert_eq!(p.storage_words(), 1);
        assert_roundtrip(&e, &p, 1e-12);
    }

    #[test]
    fn value_histogram_roundtrip() {
        let (_, ps) = data();
        let b = Bucketing::new(14, vec![0, 4, 9]).unwrap();
        let h = ValueHistogram::with_averages(b, &ps, "OPT-A").unwrap();
        let p = PersistentSynopsis::from_value_histogram(&h);
        assert_eq!(p.storage_words(), 6);
        assert_roundtrip(&h, &p, 1e-12);
    }

    #[test]
    fn sap0_roundtrip_recovers_averages() {
        let (_, ps) = data();
        let h = build_sap0(&ps, 4).unwrap();
        let p = PersistentSynopsis::from_sap0(&h);
        assert_eq!(p.storage_words(), 3 * h.bucketing().num_buckets());
        // The middle piece is rebuilt from recovered averages; tolerance is
        // pure float noise because recovery is algebraically exact (Thm 7).
        assert_roundtrip(&h, &p, 1e-9);
    }

    #[test]
    fn sap1_roundtrip_recovers_averages() {
        let (_, ps) = data();
        let h = build_sap1(&ps, 2).unwrap();
        let p = PersistentSynopsis::from_sap1(&h);
        assert_eq!(p.storage_words(), 5 * h.bucketing().num_buckets());
        assert_roundtrip(&h, &p, 1e-9);
    }

    #[test]
    fn wavelet_point_roundtrip() {
        let (vals, _) = data();
        let w = PointWaveletSynopsis::build(&vals, 5);
        let p = PersistentSynopsis::from_wavelet_point(&w);
        assert_eq!(p.storage_words(), w.storage_words());
        assert_roundtrip(&w, &p, 1e-12);
    }

    #[test]
    fn wavelet_range_roundtrip() {
        let (_, ps) = data();
        let w = RangeOptimalWavelet::build(&ps, 6);
        let p = PersistentSynopsis::from_wavelet_range(&w);
        assert_eq!(p.storage_words(), w.storage_words());
        assert_roundtrip(&w, &p, 1e-12);
    }

    #[test]
    fn frequencies_roundtrip_is_exact() {
        let (vals, ps) = data();
        let p = PersistentSynopsis::from_frequencies(&vals);
        assert_eq!(p.storage_words(), vals.len());
        let bytes = crate::format::synopsis_to_bytes(&p);
        let back = crate::format::synopsis_from_bytes(&bytes, "test").unwrap();
        assert_eq!(back, p);
        let loaded = back.load().unwrap();
        assert_eq!(loaded.method_name(), "FREQ");
        assert_eq!(loaded.exact_frequencies(), Some(&vals[..]));
        for q in RangeQuery::all(vals.len()) {
            assert_eq!(loaded.estimate(q), ps.answer(q) as f64, "{q:?}");
        }
        // Summary variants expose no frequency array.
        let naive = PersistentSynopsis::from_naive(&ps).load().unwrap();
        assert!(naive.exact_frequencies().is_none());
    }

    #[test]
    fn corrupted_payloads_fail_to_load() {
        let bad = PersistentSynopsis::Sap0 {
            n: 5,
            starts: vec![0, 2],
            suff: vec![1.0],
            pref: vec![1.0, 2.0],
        };
        assert!(bad.load().is_err());
        let bad = PersistentSynopsis::WaveletPoint {
            n: 5,
            padded: 3, // not a power of two
            entries: vec![],
        };
        assert!(bad.load().is_err());
        let bad = PersistentSynopsis::ValueHistogram {
            n: 5,
            starts: vec![1, 3], // must start at 0
            values: vec![0.0, 0.0],
            name: "x".into(),
        };
        assert!(bad.load().is_err());
    }
}
