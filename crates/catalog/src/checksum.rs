//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), implemented
//! in-repo so the persistence path has zero external dependencies.
//!
//! This is the same CRC variant used by gzip, PNG and zlib, so any standard
//! tool can independently verify a stored checksum. A 256-entry lookup table
//! is built once at first use; throughput (~1 byte/cycle) is far beyond what
//! synopsis files (a few KiB) require.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    })
}

/// A streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hasher.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ t[idx];
        }
    }

    /// The final checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"synoptic catalog payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = b"0123456789abcdef".to_vec();
        let base = crc32(&data);
        for cut in 0..data.len() {
            assert_ne!(crc32(&data[..cut]), base, "truncation at {cut} undetected");
        }
    }
}
