//! The in-memory named-column statistics catalog.
//!
//! `Catalog` is the registry a query planner consults; durable persistence
//! (checksummed files, atomic generations, quarantine, degraded-mode
//! answering) lives in [`crate::store::DurableCatalog`], which saves and
//! reloads this type through the binary format in [`crate::format`].

use std::collections::BTreeMap;

use synoptic_core::{RangeEstimator, RangeQuery, Result, SynopticError};

use crate::persist::{LoadedSynopsis, PersistentSynopsis};

/// Reserved WAL-marks key holding the node's current election term.
/// `'#'` cannot start a real column's journal name, so reserved keys and
/// column marks share the section without collision.
pub const ELECTION_TERM_KEY: &str = "#election/term";

/// Reserved WAL-marks key holding the node granted the current term.
pub const ELECTION_VOTE_KEY: &str = "#election/vote";

/// Metadata + synopsis for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnEntry {
    /// Domain size of the column's value distribution.
    pub n: usize,
    /// Total row count at build time.
    pub total_rows: i64,
    /// The persisted synopsis.
    pub synopsis: PersistentSynopsis,
}

/// A catalog of per-column synopses, as a database engine would keep in its
/// system tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    columns: BTreeMap<String, ColumnEntry>,
    /// Per-column WAL checkpoint marks: the last journal LSN whose effect is
    /// captured by the synopses in this catalog. Kept beside (not inside)
    /// [`ColumnEntry`] because most columns never journal. Persisted in the
    /// manifest's trailing WAL-marks section.
    wal_marks: BTreeMap<String, u64>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a column's synopsis.
    pub fn insert(&mut self, name: impl Into<String>, entry: ColumnEntry) {
        self.columns.insert(name.into(), entry);
    }

    /// Removes a column; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.columns.remove(name).is_some()
    }

    /// Looks up a column.
    pub fn get(&self, name: &str) -> Option<&ColumnEntry> {
        self.columns.get(name)
    }

    /// Column names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.columns.keys().map(String::as_str).collect()
    }

    /// Iterates `(name, entry)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ColumnEntry)> {
        self.columns.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Records the WAL checkpoint mark for a column: every journal record
    /// with LSN ≤ `lsn` is captured by this catalog's synopsis for `name`.
    pub fn set_wal_mark(&mut self, name: impl Into<String>, lsn: u64) {
        self.wal_marks.insert(name.into(), lsn);
    }

    /// The WAL checkpoint mark for a column (`0` when the column has never
    /// journaled — replay everything).
    pub fn wal_mark(&self, name: &str) -> u64 {
        self.wal_marks.get(name).copied().unwrap_or(0)
    }

    /// All WAL checkpoint marks, sorted by column name.
    pub fn wal_marks(&self) -> impl Iterator<Item = (&str, u64)> {
        self.wal_marks.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The current election term this node has granted or claimed (`0` =
    /// never participated in an election). Persisted as a reserved key in
    /// the manifest's WAL-marks section — the section is feed-forward
    /// compatible, so builds predating elections carry it untouched, and
    /// mark lookups only ever consult keys for columns the catalog
    /// actually holds, so `'#'`-prefixed reserved keys never collide.
    pub fn election_term(&self) -> u64 {
        self.wal_marks.get(ELECTION_TERM_KEY).copied().unwrap_or(0)
    }

    /// Records the current election term. Terms are monotonic; callers
    /// must never move one backwards (persisting a lower term would let
    /// two leaders hold the same term after a crash).
    pub fn set_election_term(&mut self, term: u64) {
        self.wal_marks.insert(ELECTION_TERM_KEY.to_string(), term);
    }

    /// The node this catalog's owner recognizes as the leader of
    /// [`Catalog::election_term`], if any vote was granted.
    pub fn election_vote(&self) -> Option<u64> {
        self.wal_marks.get(ELECTION_VOTE_KEY).copied()
    }

    /// Records the node granted leadership of the current term.
    pub fn set_election_vote(&mut self, node: u64) {
        self.wal_marks.insert(ELECTION_VOTE_KEY.to_string(), node);
    }

    /// Total storage footprint across all columns (paper words).
    pub fn total_words(&self) -> usize {
        self.columns
            .values()
            .map(|e| e.synopsis.storage_words())
            .sum()
    }

    /// Loads a column's estimator.
    pub fn estimator(&self, name: &str) -> Result<LoadedSynopsis> {
        self.columns
            .get(name)
            .ok_or_else(|| SynopticError::InvalidParameter(format!("unknown column '{name}'")))?
            .synopsis
            .load()
    }

    /// One-shot estimate for `column BETWEEN q.lo AND q.hi`.
    pub fn estimate(&self, name: &str, q: RangeQuery) -> Result<f64> {
        let est = self.estimator(name)?;
        q.check_bounds(est.n())?;
        Ok(est.estimate(q))
    }

    /// A human-readable summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12} {:>8}",
            "column", "n", "rows", "words"
        );
        for (name, e) in &self.columns {
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>12} {:>8}",
                name,
                e.n,
                e.total_rows,
                e.synopsis.storage_words()
            );
        }
        let _ = writeln!(out, "total words: {}", self.total_words());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::{PrefixSums, ValueHistogram};
    use synoptic_hist::sap0::build_sap0;

    fn entry(vals: &[i64]) -> ColumnEntry {
        let ps = PrefixSums::from_values(vals);
        let h = build_sap0(&ps, 3).unwrap();
        ColumnEntry {
            n: vals.len(),
            total_rows: ps.total() as i64,
            synopsis: PersistentSynopsis::from_sap0(&h),
        }
    }

    #[test]
    fn insert_query_remove() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.insert("price", entry(&[5, 1, 8, 8, 2, 9, 0, 3, 7, 7]));
        cat.insert("age", entry(&[2, 4, 9, 9, 4, 2]));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.names(), vec!["age", "price"]);
        let e = cat.estimate("price", RangeQuery { lo: 0, hi: 9 }).unwrap();
        assert!((e - 50.0).abs() < 1e-6, "whole-domain estimate {e}");
        assert!(cat.estimate("nope", RangeQuery::point(0)).is_err());
        assert!(cat.estimate("age", RangeQuery { lo: 0, hi: 99 }).is_err());
        assert!(cat.remove("age"));
        assert!(!cat.remove("age"));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn binary_roundtrip_preserves_answers() {
        let mut cat = Catalog::new();
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        cat.insert("qty", entry(&vals));
        let ps = PrefixSums::from_values(&vals);
        let b = synoptic_core::Bucketing::new(10, vec![0, 5]).unwrap();
        let h = ValueHistogram::with_averages(b, &ps, "OPT-A").unwrap();
        cat.insert(
            "amount",
            ColumnEntry {
                n: 10,
                total_rows: ps.total() as i64,
                synopsis: PersistentSynopsis::from_value_histogram(&h),
            },
        );
        // Every entry round-trips through the checksummed binary format.
        for (_, e) in cat.iter() {
            let bytes = crate::format::synopsis_to_bytes(&e.synopsis);
            let back = crate::format::synopsis_from_bytes(&bytes, "t").unwrap();
            assert_eq!(back, e.synopsis);
        }
        for q in RangeQuery::all(10) {
            let a = cat.estimate("qty", q).unwrap();
            assert!(a.is_finite());
        }
    }

    #[test]
    fn iter_walks_in_name_order() {
        let mut cat = Catalog::new();
        cat.insert("zeta", entry(&[1, 2, 3, 4, 5, 6]));
        cat.insert("alpha", entry(&[6, 5, 4, 3, 2, 1]));
        let names: Vec<&str> = cat.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn summary_and_accounting() {
        let mut cat = Catalog::new();
        cat.insert("a", entry(&[1, 2, 3, 4, 5, 6, 7, 8]));
        let words = cat.total_words();
        assert!(words > 0);
        let s = cat.summary();
        assert!(s.contains('a') && s.contains(&words.to_string()), "{s}");
    }
}
