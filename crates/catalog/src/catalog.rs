//! The named-column statistics catalog with JSON persistence.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use synoptic_core::{RangeEstimator, RangeQuery, Result, SynopticError};

use crate::persist::{LoadedSynopsis, PersistentSynopsis};

/// Metadata + synopsis for one column.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ColumnEntry {
    /// Domain size of the column's value distribution.
    pub n: usize,
    /// Total row count at build time.
    pub total_rows: i64,
    /// The persisted synopsis.
    pub synopsis: PersistentSynopsis,
}

/// A catalog of per-column synopses, as a database engine would keep in its
/// system tables.
#[derive(Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct Catalog {
    columns: BTreeMap<String, ColumnEntry>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a column's synopsis.
    pub fn insert(&mut self, name: impl Into<String>, entry: ColumnEntry) {
        self.columns.insert(name.into(), entry);
    }

    /// Removes a column; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.columns.remove(name).is_some()
    }

    /// Looks up a column.
    pub fn get(&self, name: &str) -> Option<&ColumnEntry> {
        self.columns.get(name)
    }

    /// Column names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.columns.keys().map(String::as_str).collect()
    }

    /// Number of registered columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Total storage footprint across all columns (paper words).
    pub fn total_words(&self) -> usize {
        self.columns
            .values()
            .map(|e| e.synopsis.storage_words())
            .sum()
    }

    /// Loads a column's estimator.
    pub fn estimator(&self, name: &str) -> Result<LoadedSynopsis> {
        self.columns
            .get(name)
            .ok_or_else(|| SynopticError::InvalidParameter(format!("unknown column '{name}'")))?
            .synopsis
            .load()
    }

    /// One-shot estimate for `column BETWEEN q.lo AND q.hi`.
    pub fn estimate(&self, name: &str, q: RangeQuery) -> Result<f64> {
        let est = self.estimator(name)?;
        q.check_bounds(est.n())?;
        Ok(est.estimate(q))
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| SynopticError::InvalidParameter(format!("serialize: {e}")))
    }

    /// Deserializes from a JSON string.
    pub fn from_json(js: &str) -> Result<Self> {
        serde_json::from_str(js)
            .map_err(|e| SynopticError::InvalidParameter(format!("deserialize: {e}")))
    }

    /// Saves to a file.
    pub fn save(&self, path: &str) -> Result<()> {
        std::fs::write(path, self.to_json()?)
            .map_err(|e| SynopticError::InvalidParameter(format!("write {path}: {e}")))
    }

    /// Loads from a file.
    pub fn load(path: &str) -> Result<Self> {
        let js = std::fs::read_to_string(path)
            .map_err(|e| SynopticError::InvalidParameter(format!("read {path}: {e}")))?;
        Self::from_json(&js)
    }

    /// A human-readable summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12} {:>8}",
            "column", "n", "rows", "words"
        );
        for (name, e) in &self.columns {
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>12} {:>8}",
                name,
                e.n,
                e.total_rows,
                e.synopsis.storage_words()
            );
        }
        let _ = writeln!(out, "total words: {}", self.total_words());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synoptic_core::{PrefixSums, ValueHistogram};
    use synoptic_hist::sap0::build_sap0;

    fn entry(vals: &[i64]) -> ColumnEntry {
        let ps = PrefixSums::from_values(vals);
        let h = build_sap0(&ps, 3).unwrap();
        ColumnEntry {
            n: vals.len(),
            total_rows: ps.total() as i64,
            synopsis: PersistentSynopsis::from_sap0(&h),
        }
    }

    #[test]
    fn insert_query_remove() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.insert("price", entry(&[5, 1, 8, 8, 2, 9, 0, 3, 7, 7]));
        cat.insert("age", entry(&[2, 4, 9, 9, 4, 2]));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.names(), vec!["age", "price"]);
        let e = cat.estimate("price", RangeQuery { lo: 0, hi: 9 }).unwrap();
        assert!((e - 50.0).abs() < 1e-6, "whole-domain estimate {e}");
        assert!(cat.estimate("nope", RangeQuery::point(0)).is_err());
        assert!(cat
            .estimate("age", RangeQuery { lo: 0, hi: 99 })
            .is_err());
        assert!(cat.remove("age"));
        assert!(!cat.remove("age"));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn json_roundtrip_preserves_answers() {
        let mut cat = Catalog::new();
        let vals = vec![12i64, 9, 4, 1, 1, 0, 2, 14, 13, 6];
        cat.insert("qty", entry(&vals));
        let ps = PrefixSums::from_values(&vals);
        let b = synoptic_core::Bucketing::new(10, vec![0, 5]).unwrap();
        let h = ValueHistogram::with_averages(b, &ps, "OPT-A").unwrap();
        cat.insert(
            "amount",
            ColumnEntry {
                n: 10,
                total_rows: ps.total() as i64,
                synopsis: PersistentSynopsis::from_value_histogram(&h),
            },
        );
        let js = cat.to_json().unwrap();
        let back = Catalog::from_json(&js).unwrap();
        assert_eq!(back, cat);
        for q in RangeQuery::all(10) {
            let a = cat.estimate("qty", q).unwrap();
            let b2 = back.estimate("qty", q).unwrap();
            assert!((a - b2).abs() < 1e-12);
        }
    }

    #[test]
    fn file_roundtrip() {
        let mut cat = Catalog::new();
        cat.insert("x", entry(&[1, 2, 3, 4, 5, 6]));
        let path = std::env::temp_dir().join("synoptic_catalog_test.json");
        let path = path.to_str().unwrap();
        cat.save(path).unwrap();
        let back = Catalog::load(path).unwrap();
        assert_eq!(back, cat);
        let _ = std::fs::remove_file(path);
        assert!(Catalog::load("/nonexistent/really/not.json").is_err());
    }

    #[test]
    fn summary_and_accounting() {
        let mut cat = Catalog::new();
        cat.insert("a", entry(&[1, 2, 3, 4, 5, 6, 7, 8]));
        let words = cat.total_words();
        assert!(words > 0);
        let s = cat.summary();
        assert!(s.contains('a') && s.contains(&words.to_string()), "{s}");
    }
}
