//! The self-describing binary on-disk format for persisted synopses.
//!
//! Every file the catalog writes — synopsis files, manifests, and the
//! `CURRENT` generation pointer — shares one frame (see docs/PERSISTENCE.md
//! for the normative specification):
//!
//! ```text
//! offset size  field
//! 0      8     magic  b"SYNOPTC1"
//! 8      2     format version (u16 LE), currently 1
//! 10     2     file kind (u16 LE): 1 synopsis, 2 manifest, 3 current-pointer
//! 12     8     payload length in bytes (u64 LE)
//! 20     4     CRC-32 of the payload (u32 LE)
//! 24     4     CRC-32 of the header bytes [0, 24) (u32 LE)
//! 28     …     payload
//! ```
//!
//! The header checksum catches corruption of the framing itself (including a
//! forged payload length); the payload checksum catches torn writes,
//! truncation and bit flips in the body. Inside a payload, every variable-
//! length section carries its own `u64` length prefix, so a reader can never
//! over-run — any inconsistency surfaces as
//! [`SynopticError::CorruptSynopsis`] with the byte offset at which decoding
//! failed. No value read from disk is trusted before validation: vector
//! lengths are bounded, floats must be finite, and bucket boundaries must be
//! strictly increasing from 0.

use synoptic_core::{Result, SynopticError};
use synoptic_wavelet::range_optimal::CoeffSlot;

use crate::checksum::crc32;
use crate::persist::PersistentSynopsis;

/// Magic bytes opening every file.
pub const MAGIC: [u8; 8] = *b"SYNOPTC1";
/// Current (and only) format version.
pub const FORMAT_VERSION: u16 = 1;
/// Total header size in bytes.
pub const HEADER_LEN: usize = 28;
/// Hard cap on any section's element count — rejects absurd length prefixes
/// before they can drive an allocation (64 Mi elements ≫ any real synopsis).
pub const MAX_SECTION_LEN: u64 = 1 << 26;

/// What a frame contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A single [`PersistentSynopsis`].
    Synopsis,
    /// A catalog manifest (one generation's column table).
    Manifest,
    /// The `CURRENT` generation pointer.
    Current,
}

impl FileKind {
    fn code(self) -> u16 {
        match self {
            FileKind::Synopsis => 1,
            FileKind::Manifest => 2,
            FileKind::Current => 3,
        }
    }

    fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(FileKind::Synopsis),
            2 => Some(FileKind::Manifest),
            3 => Some(FileKind::Current),
            _ => None,
        }
    }
}

fn corrupt(context: &str, detail: impl Into<String>) -> SynopticError {
    SynopticError::CorruptSynopsis {
        context: context.to_string(),
        detail: detail.into(),
    }
}

/// Wraps a payload in the checksummed frame.
pub fn frame(kind: FileKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.code().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(payload);
    out
}

/// Validates the frame and returns the payload slice.
///
/// Every failure mode is a distinct, diagnosable error: wrong magic, header
/// CRC mismatch, unsupported version, wrong kind, truncated payload, payload
/// CRC mismatch, trailing garbage.
pub fn unframe<'a>(bytes: &'a [u8], kind: FileKind, context: &str) -> Result<&'a [u8]> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(
            context,
            format!(
                "file too short for header: {} < {HEADER_LEN} bytes",
                bytes.len()
            ),
        ));
    }
    let (header, rest) = bytes.split_at(HEADER_LEN);
    let stored_header_crc = u32::from_le_bytes(header[24..28].try_into().unwrap());
    if crc32(&header[..24]) != stored_header_crc {
        return Err(corrupt(context, "header CRC mismatch"));
    }
    // Header integrity established; its fields can now be interpreted.
    if header[..8] != MAGIC {
        return Err(corrupt(context, format!("bad magic {:02x?}", &header[..8])));
    }
    let version = u16::from_le_bytes(header[8..10].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(SynopticError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let code = u16::from_le_bytes(header[10..12].try_into().unwrap());
    match FileKind::from_code(code) {
        Some(k) if k == kind => {}
        Some(k) => {
            return Err(corrupt(
                context,
                format!("wrong file kind: expected {kind:?}, found {k:?}"),
            ))
        }
        None => return Err(corrupt(context, format!("unknown file kind code {code}"))),
    }
    let payload_len = u64::from_le_bytes(header[12..20].try_into().unwrap());
    if payload_len != rest.len() as u64 {
        return Err(corrupt(
            context,
            format!(
                "payload length mismatch: header says {payload_len}, file has {}",
                rest.len()
            ),
        ));
    }
    let stored_payload_crc = u32::from_le_bytes(header[20..24].try_into().unwrap());
    if crc32(rest) != stored_payload_crc {
        return Err(corrupt(context, "payload CRC mismatch"));
    }
    Ok(rest)
}

// ---------------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------------

/// Little-endian payload builder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed `usize` vector (as `u64`s).
    pub fn usize_vec(&mut self, xs: &[usize]) {
        self.u64(xs.len() as u64);
        for &x in xs {
            self.u64(x as u64);
        }
    }

    /// Writes a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self, xs: &[f64]) {
        self.u64(xs.len() as u64);
        for &x in xs {
            self.f64(x);
        }
    }
}

/// Bounds-checked little-endian payload reader. Every failure carries the
/// byte offset at which it occurred.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'a str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, labelling errors with `context`.
    pub fn new(buf: &'a [u8], context: &'a str) -> Self {
        Self {
            buf,
            pos: 0,
            context,
        }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn fail(&self, detail: impl Into<String>) -> SynopticError {
        SynopticError::CorruptSynopsis {
            context: self.context.to_string(),
            detail: format!("{} (at byte offset {})", detail.into(), self.pos),
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < len {
            return Err(self.fail(format!(
                "unexpected end of payload: need {len} bytes, have {}",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a *finite* `f64`; NaN/∞ are rejected (they would silently
    /// poison every downstream estimate).
    pub fn f64(&mut self) -> Result<f64> {
        let v = f64::from_bits(u64::from_le_bytes(self.take(8)?.try_into().unwrap()));
        if !v.is_finite() {
            return Err(self.fail(format!("non-finite float {v}")));
        }
        Ok(v)
    }

    fn len_prefix(&mut self) -> Result<usize> {
        let len = self.u64()?;
        if len > MAX_SECTION_LEN {
            return Err(self.fail(format!(
                "section length {len} exceeds cap {MAX_SECTION_LEN}"
            )));
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.len_prefix()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.fail("invalid UTF-8 in string"))
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usize_vec(&mut self) -> Result<Vec<usize>> {
        let len = self.len_prefix()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let v = self.u64()?;
            if v > MAX_SECTION_LEN {
                return Err(self.fail(format!("index {v} out of any plausible range")));
            }
            out.push(v as usize);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `f64` vector (finite values only).
    pub fn f64_vec(&mut self) -> Result<Vec<f64>> {
        let len = self.len_prefix()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Whether unread bytes remain — used for optional trailing sections
    /// (a reader that sees `false` treats the section as absent, which is
    /// how newer writers stay readable without a version bump).
    pub fn has_remaining(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Asserts the payload is fully consumed (no trailing garbage).
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            let trailing = self.buf.len() - self.pos;
            return Err(self.fail(format!("{trailing} trailing bytes after payload")));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Synopsis payload encoding
// ---------------------------------------------------------------------------

const TAG_NAIVE: u8 = 1;
const TAG_VALUE: u8 = 2;
const TAG_SAP0: u8 = 3;
const TAG_SAP1: u8 = 4;
const TAG_WPOINT: u8 = 5;
const TAG_WRANGE: u8 = 6;
const TAG_FREQ: u8 = 7;

const SLOT_CORNER: u8 = 0;
const SLOT_ROW: u8 = 1;
const SLOT_COL: u8 = 2;

/// Encodes a synopsis into its payload bytes (framing is separate so the
/// corruption tests can target payload vs header independently).
pub fn encode_synopsis(s: &PersistentSynopsis) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match s {
        PersistentSynopsis::Naive { n, avg } => {
            w.u8(TAG_NAIVE);
            w.u64(*n as u64);
            w.f64(*avg);
        }
        PersistentSynopsis::ValueHistogram {
            n,
            starts,
            values,
            name,
        } => {
            w.u8(TAG_VALUE);
            w.u64(*n as u64);
            w.str(name);
            w.usize_vec(starts);
            w.f64_vec(values);
        }
        PersistentSynopsis::Sap0 {
            n,
            starts,
            suff,
            pref,
        } => {
            w.u8(TAG_SAP0);
            w.u64(*n as u64);
            w.usize_vec(starts);
            w.f64_vec(suff);
            w.f64_vec(pref);
        }
        PersistentSynopsis::Sap1 {
            n,
            starts,
            suff_slope,
            suff_icpt,
            pref_slope,
            pref_icpt,
        } => {
            w.u8(TAG_SAP1);
            w.u64(*n as u64);
            w.usize_vec(starts);
            w.f64_vec(suff_slope);
            w.f64_vec(suff_icpt);
            w.f64_vec(pref_slope);
            w.f64_vec(pref_icpt);
        }
        PersistentSynopsis::WaveletPoint { n, padded, entries } => {
            w.u8(TAG_WPOINT);
            w.u64(*n as u64);
            w.u64(*padded as u64);
            w.u64(entries.len() as u64);
            for &(idx, v) in entries {
                w.u32(idx);
                w.f64(v);
            }
        }
        PersistentSynopsis::Frequencies { values } => {
            w.u8(TAG_FREQ);
            w.u64(values.len() as u64);
            for &v in values {
                w.i64(v);
            }
        }
        PersistentSynopsis::WaveletRange { n, padded, entries } => {
            w.u8(TAG_WRANGE);
            w.u64(*n as u64);
            w.u64(*padded as u64);
            w.u64(entries.len() as u64);
            for &(slot, v) in entries {
                match slot {
                    CoeffSlot::Corner => {
                        w.u8(SLOT_CORNER);
                        w.u32(0);
                    }
                    CoeffSlot::Row(i) => {
                        w.u8(SLOT_ROW);
                        w.u32(i);
                    }
                    CoeffSlot::Col(i) => {
                        w.u8(SLOT_COL);
                        w.u32(i);
                    }
                }
                w.f64(v);
            }
        }
    }
    w.into_bytes()
}

fn read_n(r: &mut ByteReader<'_>) -> Result<usize> {
    let n = r.u64()?;
    if n == 0 || n > MAX_SECTION_LEN {
        return Err(SynopticError::CorruptSynopsis {
            context: "synopsis".into(),
            detail: format!("implausible domain size n = {n}"),
        });
    }
    Ok(n as usize)
}

/// Decodes a synopsis payload. Structural validation only — semantic
/// validation (boundary monotonicity, length consistency, `padded ≥ n`)
/// happens in [`PersistentSynopsis::load`], which every loader must also
/// call before serving answers.
pub fn decode_synopsis(payload: &[u8], context: &str) -> Result<PersistentSynopsis> {
    let mut r = ByteReader::new(payload, context);
    let tag = r.u8()?;
    let s = match tag {
        TAG_NAIVE => {
            let n = read_n(&mut r)?;
            let avg = r.f64()?;
            PersistentSynopsis::Naive { n, avg }
        }
        TAG_VALUE => {
            let n = read_n(&mut r)?;
            let name = r.str()?;
            let starts = r.usize_vec()?;
            let values = r.f64_vec()?;
            PersistentSynopsis::ValueHistogram {
                n,
                starts,
                values,
                name,
            }
        }
        TAG_SAP0 => {
            let n = read_n(&mut r)?;
            let starts = r.usize_vec()?;
            let suff = r.f64_vec()?;
            let pref = r.f64_vec()?;
            PersistentSynopsis::Sap0 {
                n,
                starts,
                suff,
                pref,
            }
        }
        TAG_SAP1 => {
            let n = read_n(&mut r)?;
            let starts = r.usize_vec()?;
            let suff_slope = r.f64_vec()?;
            let suff_icpt = r.f64_vec()?;
            let pref_slope = r.f64_vec()?;
            let pref_icpt = r.f64_vec()?;
            PersistentSynopsis::Sap1 {
                n,
                starts,
                suff_slope,
                suff_icpt,
                pref_slope,
                pref_icpt,
            }
        }
        TAG_WPOINT => {
            let n = read_n(&mut r)?;
            let padded = r.u64()? as usize;
            let count = r.u64()?;
            if count > MAX_SECTION_LEN {
                return Err(SynopticError::CorruptSynopsis {
                    context: context.into(),
                    detail: format!("implausible coefficient count {count}"),
                });
            }
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let idx = r.u32()?;
                let v = r.f64()?;
                entries.push((idx, v));
            }
            PersistentSynopsis::WaveletPoint { n, padded, entries }
        }
        TAG_FREQ => {
            let n = read_n(&mut r)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.i64()?);
            }
            PersistentSynopsis::Frequencies { values }
        }
        TAG_WRANGE => {
            let n = read_n(&mut r)?;
            let padded = r.u64()? as usize;
            let count = r.u64()?;
            if count > MAX_SECTION_LEN {
                return Err(SynopticError::CorruptSynopsis {
                    context: context.into(),
                    detail: format!("implausible coefficient count {count}"),
                });
            }
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let slot = match r.u8()? {
                    SLOT_CORNER => {
                        let _ = r.u32()?;
                        CoeffSlot::Corner
                    }
                    SLOT_ROW => CoeffSlot::Row(r.u32()?),
                    SLOT_COL => CoeffSlot::Col(r.u32()?),
                    other => {
                        return Err(SynopticError::CorruptSynopsis {
                            context: context.into(),
                            detail: format!("unknown coefficient slot tag {other}"),
                        })
                    }
                };
                let v = r.f64()?;
                entries.push((slot, v));
            }
            PersistentSynopsis::WaveletRange { n, padded, entries }
        }
        other => {
            return Err(SynopticError::CorruptSynopsis {
                context: context.into(),
                detail: format!("unknown synopsis tag {other}"),
            })
        }
    };
    r.finish()?;
    Ok(s)
}

/// Convenience: frame + encode in one step.
pub fn synopsis_to_bytes(s: &PersistentSynopsis) -> Vec<u8> {
    frame(FileKind::Synopsis, &encode_synopsis(s))
}

/// Convenience: unframe + decode + semantic validation (`load` succeeds) in
/// one step. This is the only path loaders should use: a successful return
/// guarantees the synopsis answers queries without panicking or lying.
pub fn synopsis_from_bytes(bytes: &[u8], context: &str) -> Result<PersistentSynopsis> {
    let payload = unframe(bytes, FileKind::Synopsis, context)?;
    let s = decode_synopsis(payload, context)?;
    // Semantic validation: must reconstruct into an answering estimator.
    s.load().map_err(|e| match e {
        c @ SynopticError::CorruptSynopsis { .. } => c,
        other => SynopticError::CorruptSynopsis {
            context: context.to_string(),
            detail: other.to_string(),
        },
    })?;
    Ok(s)
}

// ---------------------------------------------------------------------------
// Manifest encoding
// ---------------------------------------------------------------------------

/// One column's record in a manifest: everything needed to find, verify and
/// — if all else fails — *approximate* the column.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestColumn {
    /// Column name.
    pub name: String,
    /// Domain size.
    pub n: usize,
    /// Total row count at build time (the NAIVE fallback is
    /// `total_rows / n` per position).
    pub total_rows: i64,
    /// Synopsis file name, relative to the store root.
    pub file: String,
    /// Method name, for reporting.
    pub method: String,
}

/// One generation's column table.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Generation number (monotonically increasing across saves).
    pub generation: u64,
    /// Column records, sorted by name.
    pub columns: Vec<ManifestColumn>,
    /// WAL checkpoint marks, sorted by column name: the last journal LSN
    /// whose effect is captured by this generation's synopses. Replay after
    /// recovery applies only records *beyond* the committed mark. Encoded as
    /// an optional trailing section so pre-WAL manifests (which simply end
    /// after the columns) decode with no marks — no version bump needed.
    pub wal_marks: Vec<(String, u64)>,
}

/// Encodes a manifest into framed file bytes.
pub fn manifest_to_bytes(m: &Manifest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(m.generation);
    w.u64(m.columns.len() as u64);
    for c in &m.columns {
        w.str(&c.name);
        w.u64(c.n as u64);
        w.i64(c.total_rows);
        w.str(&c.file);
        w.str(&c.method);
    }
    w.u64(m.wal_marks.len() as u64);
    for (name, lsn) in &m.wal_marks {
        w.str(name);
        w.u64(*lsn);
    }
    frame(FileKind::Manifest, &w.into_bytes())
}

/// Decodes framed manifest bytes.
pub fn manifest_from_bytes(bytes: &[u8], context: &str) -> Result<Manifest> {
    let payload = unframe(bytes, FileKind::Manifest, context)?;
    let mut r = ByteReader::new(payload, context);
    let generation = r.u64()?;
    let count = r.u64()?;
    if count > MAX_SECTION_LEN {
        return Err(SynopticError::CorruptSynopsis {
            context: context.into(),
            detail: format!("implausible column count {count}"),
        });
    }
    let mut columns = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = r.str()?;
        let n = read_n(&mut r)?;
        let total_rows = r.i64()?;
        let file = r.str()?;
        let method = r.str()?;
        columns.push(ManifestColumn {
            name,
            n,
            total_rows,
            file,
            method,
        });
    }
    let mut wal_marks = Vec::new();
    if r.has_remaining() {
        let marks = r.u64()?;
        if marks > MAX_SECTION_LEN {
            return Err(SynopticError::CorruptSynopsis {
                context: context.into(),
                detail: format!("implausible WAL-mark count {marks}"),
            });
        }
        for _ in 0..marks {
            let name = r.str()?;
            let lsn = r.u64()?;
            wal_marks.push((name, lsn));
        }
    }
    r.finish()?;
    Ok(Manifest {
        generation,
        columns,
        wal_marks,
    })
}

/// Encodes the `CURRENT` pointer (generation number) into framed bytes.
pub fn current_to_bytes(generation: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(generation);
    frame(FileKind::Current, &w.into_bytes())
}

/// Decodes the `CURRENT` pointer.
pub fn current_from_bytes(bytes: &[u8], context: &str) -> Result<u64> {
    let payload = unframe(bytes, FileKind::Current, context)?;
    let mut r = ByteReader::new(payload, context);
    let generation = r.u64()?;
    r.finish()?;
    Ok(generation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PersistentSynopsis {
        PersistentSynopsis::Sap0 {
            n: 10,
            starts: vec![0, 3, 7],
            suff: vec![1.5, 2.5, 3.5],
            pref: vec![0.5, 1.0, 2.0],
        }
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"hello world".to_vec();
        let bytes = frame(FileKind::Manifest, &payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        assert_eq!(
            unframe(&bytes, FileKind::Manifest, "t").unwrap(),
            &payload[..]
        );
    }

    #[test]
    fn frame_rejects_wrong_kind_and_magic() {
        let bytes = frame(FileKind::Synopsis, b"x");
        assert!(matches!(
            unframe(&bytes, FileKind::Manifest, "t"),
            Err(SynopticError::CorruptSynopsis { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(unframe(&bad, FileKind::Synopsis, "t").is_err());
    }

    #[test]
    fn frame_rejects_future_version() {
        let mut bytes = frame(FileKind::Synopsis, b"x");
        // Bump the version field and re-seal the header CRC so only the
        // version is wrong.
        bytes[8] = 0xEE;
        let crc = crc32(&bytes[..24]).to_le_bytes();
        bytes[24..28].copy_from_slice(&crc);
        match unframe(&bytes, FileKind::Synopsis, "t") {
            Err(SynopticError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 0xEE);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = synopsis_to_bytes(&sample());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                let res = synopsis_from_bytes(&bad, "t");
                assert!(
                    res.is_err(),
                    "bit flip at {byte}:{bit} yielded a successful load"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = synopsis_to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert!(
                synopsis_from_bytes(&bytes[..cut], "t").is_err(),
                "truncation to {cut} bytes yielded a successful load"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = synopsis_to_bytes(&sample());
        bytes.push(0);
        assert!(synopsis_from_bytes(&bytes, "t").is_err());
    }

    #[test]
    fn all_variants_round_trip() {
        let variants = vec![
            PersistentSynopsis::Naive { n: 7, avg: 3.25 },
            PersistentSynopsis::ValueHistogram {
                n: 9,
                starts: vec![0, 4],
                values: vec![1.0, -2.0],
                name: "OPT-A".into(),
            },
            sample(),
            PersistentSynopsis::Sap1 {
                n: 6,
                starts: vec![0, 2],
                suff_slope: vec![0.1, 0.2],
                suff_icpt: vec![1.0, 2.0],
                pref_slope: vec![-0.1, 0.0],
                pref_icpt: vec![0.0, 1.0],
            },
            PersistentSynopsis::WaveletPoint {
                n: 6,
                padded: 8,
                entries: vec![(0, 4.5), (3, -1.25)],
            },
            PersistentSynopsis::Frequencies {
                values: vec![3, 0, -2, 7, 1],
            },
            PersistentSynopsis::WaveletRange {
                n: 7,
                padded: 8,
                entries: vec![
                    (CoeffSlot::Corner, 2.0),
                    (CoeffSlot::Row(1), -0.5),
                    (CoeffSlot::Col(3), 0.75),
                ],
            },
        ];
        for v in variants {
            let bytes = synopsis_to_bytes(&v);
            let back = synopsis_from_bytes(&bytes, "t").unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        // Hand-craft a Naive payload with a NaN average.
        let mut w = ByteWriter::new();
        w.u8(1); // TAG_NAIVE
        w.u64(5);
        w.buf.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let bytes = frame(FileKind::Synopsis, &w.into_bytes());
        let err = synopsis_from_bytes(&bytes, "t").unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.u8(2); // TAG_VALUE
        w.u64(5);
        w.str("x");
        w.u64(u64::MAX); // starts length prefix
        let bytes = frame(FileKind::Synopsis, &w.into_bytes());
        assert!(synopsis_from_bytes(&bytes, "t").is_err());
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            generation: 42,
            columns: vec![
                ManifestColumn {
                    name: "age".into(),
                    n: 100,
                    total_rows: 1_000_000,
                    file: "age-42.syn".into(),
                    method: "SAP1".into(),
                },
                ManifestColumn {
                    name: "price".into(),
                    n: 64,
                    total_rows: 5_000,
                    file: "price-42.syn".into(),
                    method: "OPT-A".into(),
                },
            ],
            wal_marks: vec![("age".into(), 17), ("price".into(), 0)],
        };
        let bytes = manifest_to_bytes(&m);
        assert_eq!(manifest_from_bytes(&bytes, "t").unwrap(), m);
    }

    #[test]
    fn pre_wal_manifest_without_marks_section_still_decodes() {
        // A manifest written before the WAL-marks section existed: the
        // payload simply ends after the column records.
        let mut w = ByteWriter::new();
        w.u64(3); // generation
        w.u64(1); // one column
        w.str("age");
        w.u64(100);
        w.i64(42);
        w.str("age-3.syn");
        w.str("SAP0");
        let bytes = frame(FileKind::Manifest, &w.into_bytes());
        let m = manifest_from_bytes(&bytes, "t").unwrap();
        assert_eq!(m.generation, 3);
        assert_eq!(m.columns.len(), 1);
        assert!(m.wal_marks.is_empty());
    }

    #[test]
    fn current_pointer_round_trips_and_rejects_flips() {
        let bytes = current_to_bytes(7);
        assert_eq!(current_from_bytes(&bytes, "t").unwrap(), 7);
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            assert!(current_from_bytes(&bad, "t").is_err(), "flip at {byte}");
        }
    }

    #[test]
    fn byte_reader_reports_offsets() {
        let mut w = ByteWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "t");
        r.u64().unwrap();
        let err = r.u32().unwrap_err();
        assert!(err.to_string().contains("offset 8"), "{err}");
    }
}
