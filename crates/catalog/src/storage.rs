//! Storage abstraction for the durable catalog: a real filesystem backend
//! with atomic writes, and a deterministic fault-injecting backend for
//! crash/corruption testing.
//!
//! All catalog I/O goes through the [`Storage`] trait, so the recovery
//! logic in [`crate::store`] can be exercised against scripted torn writes,
//! truncations, bit flips, partial reads and `ENOSPC` without touching a
//! real failing disk.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use synoptic_core::{Result, SynopticError};

fn io_err(path: &Path, e: impl std::fmt::Display) -> SynopticError {
    SynopticError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// The catalog's view of a filesystem.
///
/// Contract: `write_atomic` must be all-or-nothing at the destination path —
/// after a crash at any point, a reader sees either the complete old content
/// or the complete new content, never a prefix. (The fault-injection backend
/// deliberately violates pieces of this contract to prove the *reader* still
/// never serves corrupt data.)
pub trait Storage {
    /// Reads an entire file.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;

    /// Atomically replaces `path` with `bytes` (write temp → fsync → rename).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()>;

    /// Appends `bytes` to `path`, creating the file when absent. When `sync`
    /// is set the data is fsynced before returning — the write-ahead journal
    /// uses this for its durability cadence. Appends are *not* atomic: a
    /// crash may leave a torn tail, which journal readers must tolerate.
    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> Result<()>;

    /// Removes a file (used by checkpoint truncation and pruning, which
    /// delete only data already captured by a committed generation).
    fn remove(&self, path: &Path) -> Result<()>;

    /// Renames a file (used for quarantine; must not delete on failure).
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;

    /// Lists the file names (not paths) in a directory, sorted.
    fn list(&self, dir: &Path) -> Result<Vec<String>>;

    /// Creates a directory and parents.
    fn create_dir_all(&self, dir: &Path) -> Result<()>;

    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
}

/// Shared-ownership backends forward to their inner storage, so one
/// instance — and one fault schedule — can serve both a
/// [`crate::store::DurableCatalog`] and a [`crate::wal::ColumnWal`].
impl<S: Storage + ?Sized> Storage for std::sync::Arc<S> {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        (**self).read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        (**self).write_atomic(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> Result<()> {
        (**self).append(path, bytes, sync)
    }

    fn remove(&self, path: &Path) -> Result<()> {
        (**self).remove(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        (**self).rename(from, to)
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>> {
        (**self).list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        (**self).create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        (**self).exists(path)
    }
}

/// The production backend: write-temp → fsync → atomic-rename, plus a
/// best-effort fsync of the parent directory so the rename itself is
/// durable.
#[derive(Debug, Default, Clone)]
pub struct FsStorage;

impl FsStorage {
    /// A new filesystem backend.
    pub fn new() -> Self {
        Self
    }
}

/// Fsyncs the directory containing `path` so a just-created or just-renamed
/// entry survives a crash (best-effort — not all platforms allow opening
/// directories).
fn fsync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

impl Storage for FsStorage {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        std::fs::read(path).map_err(|e| io_err(path, e))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        use std::io::Write as _;
        let tmp = tmp_path(path);
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        // Durability of the rename.
        fsync_parent_dir(path);
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> Result<()> {
        use std::io::Write as _;
        let created = !path.exists();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        f.write_all(bytes).map_err(|e| io_err(path, e))?;
        if sync {
            f.sync_all().map_err(|e| io_err(path, e))?;
        }
        // A new file's directory entry must be durable too, or a crash
        // loses the whole file even after its data was fsynced — for a WAL
        // segment that silently shortens an otherwise well-formed chain.
        // Syncing the entry once at creation covers later appends as well:
        // they change the inode, not the entry.
        if created {
            fsync_parent_dir(path);
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path).map_err(|e| io_err(path, e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to).map_err(|e| io_err(from, e))
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>> {
        let mut names = Vec::new();
        let rd = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
        for entry in rd {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            if entry.path().is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The temp-file sibling used by atomic writes.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    name.push_str(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One scripted fault. Faults are consumed from a queue: each write
/// operation pops the next [`write fault`](Fault::is_write_fault), each read
/// the next read fault, making schedules deterministic and replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Write: only the first `keep` bytes reach the destination (a torn
    /// write on a filesystem without atomic-rename guarantees).
    TornWrite {
        /// Bytes that survive.
        keep: usize,
    },
    /// Write: the device is full; the destination is left untouched.
    Enospc,
    /// Write: the process "crashes" after writing the temp file but before
    /// the rename — the destination keeps its previous content.
    CrashBeforeRename,
    /// Read: the file appears truncated to `len` bytes.
    Truncate {
        /// Bytes visible to the reader.
        len: usize,
    },
    /// Read: one bit is flipped at `offset` (mod file length).
    BitFlip {
        /// Byte offset of the flip.
        offset: usize,
        /// Bit mask XOR-ed into the byte.
        mask: u8,
    },
    /// Read: only a prefix of the file is returned, as if a partial read
    /// were mistakenly treated as complete.
    PartialRead {
        /// Fraction numerator: `len = file_len * num / 100`.
        percent: usize,
    },
    /// Write: explicit no-op, used to position later write faults at a
    /// precise operation index in a schedule.
    CleanWrite,
    /// Read: explicit no-op, used to position later read faults at a
    /// precise operation index in a schedule.
    CleanRead,
}

impl Fault {
    fn is_write_fault(&self) -> bool {
        matches!(
            self,
            Fault::TornWrite { .. } | Fault::Enospc | Fault::CrashBeforeRename | Fault::CleanWrite
        )
    }
}

/// A [`Storage`] wrapper that injects scripted faults into an inner backend.
///
/// Deterministic by construction: the schedule is a queue, and each
/// read/write pops at most one matching fault. Operations beyond the
/// schedule pass through untouched.
///
/// Thread-safe: the fault queues are behind mutexes so the harness can be
/// driven from a test thread while a background persist worker writes
/// through it (the maintained-pool fault tests do exactly this). A poisoned
/// queue mutex is recovered, not propagated — fault scheduling state stays
/// usable even if an injected fault panicked a writer.
pub struct FaultyStorage<S: Storage> {
    inner: S,
    write_faults: Mutex<VecDeque<Fault>>,
    read_faults: Mutex<VecDeque<Fault>>,
    /// Count of faults actually fired (for test assertions).
    fired: AtomicUsize,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wraps `inner` with a fault schedule. Order within each class (read /
    /// write) is preserved; classes are independent queues.
    pub fn new(inner: S, schedule: Vec<Fault>) -> Self {
        let (writes, reads): (Vec<_>, Vec<_>) =
            schedule.into_iter().partition(Fault::is_write_fault);
        Self {
            inner,
            write_faults: Mutex::new(writes.into()),
            read_faults: Mutex::new(reads.into()),
            fired: AtomicUsize::new(0),
        }
    }

    /// How many scripted faults have fired so far.
    pub fn faults_fired(&self) -> usize {
        self.fired.load(Ordering::SeqCst)
    }

    /// Appends more faults to the schedule.
    pub fn push_fault(&self, fault: Fault) {
        if fault.is_write_fault() {
            self.write_faults
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(fault);
        } else {
            self.read_faults
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(fault);
        }
    }

    fn fire(&self) {
        self.fired.fetch_add(1, Ordering::SeqCst);
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let fault = self
            .read_faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        let mut bytes = self.inner.read(path)?;
        match fault {
            None => Ok(bytes),
            Some(Fault::Truncate { len }) => {
                self.fire();
                bytes.truncate(len);
                Ok(bytes)
            }
            Some(Fault::BitFlip { offset, mask }) => {
                self.fire();
                if !bytes.is_empty() {
                    let i = offset % bytes.len();
                    bytes[i] ^= if mask == 0 { 1 } else { mask };
                }
                Ok(bytes)
            }
            Some(Fault::PartialRead { percent }) => {
                self.fire();
                let keep = bytes.len() * percent.min(100) / 100;
                bytes.truncate(keep);
                Ok(bytes)
            }
            Some(Fault::CleanRead) => Ok(bytes),
            Some(w) => unreachable!("write fault {w:?} in read queue"),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let fault = self
            .write_faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        match fault {
            None => self.inner.write_atomic(path, bytes),
            Some(Fault::TornWrite { keep }) => {
                self.fire();
                let keep = keep.min(bytes.len());
                // The torn prefix lands at the destination — this models a
                // filesystem whose rename is not atomic, the worst case the
                // reader must survive.
                self.inner.write_atomic(path, &bytes[..keep])
            }
            Some(Fault::Enospc) => {
                self.fire();
                Err(SynopticError::Io {
                    path: path.display().to_string(),
                    detail: "no space left on device (injected)".into(),
                })
            }
            Some(Fault::CrashBeforeRename) => {
                self.fire();
                // Write the temp file like a real crash would leave it, but
                // never rename: destination keeps its old content.
                let tmp = tmp_path(path);
                self.inner.write_atomic(&tmp, bytes)?;
                Err(SynopticError::Io {
                    path: path.display().to_string(),
                    detail: "simulated crash between temp write and rename".into(),
                })
            }
            Some(Fault::CleanWrite) => self.inner.write_atomic(path, bytes),
            Some(r) => unreachable!("read fault {r:?} in write queue"),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> Result<()> {
        let fault = self
            .write_faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        match fault {
            None | Some(Fault::CleanWrite) => self.inner.append(path, bytes, sync),
            Some(Fault::TornWrite { keep }) => {
                self.fire();
                // A torn tail that the caller never learns about: the bytes
                // were accepted into the page cache but only a prefix hit the
                // platter before power was lost. Journal recovery must
                // truncate-and-continue past exactly this.
                self.inner
                    .append(path, &bytes[..keep.min(bytes.len())], sync)
            }
            Some(Fault::Enospc) => {
                self.fire();
                Err(SynopticError::Io {
                    path: path.display().to_string(),
                    detail: "no space left on device (injected)".into(),
                })
            }
            Some(Fault::CrashBeforeRename) => {
                self.fire();
                // For appends this models a crash before any byte reached the
                // file: the caller sees an error, the journal tail is clean.
                Err(SynopticError::Io {
                    path: path.display().to_string(),
                    detail: "simulated crash before append".into(),
                })
            }
            Some(r) => unreachable!("read fault {r:?} in write queue"),
        }
    }

    fn remove(&self, path: &Path) -> Result<()> {
        let fault = self
            .write_faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        match fault {
            None | Some(Fault::CleanWrite) | Some(Fault::TornWrite { .. }) => {
                self.inner.remove(path)
            }
            Some(Fault::Enospc) | Some(Fault::CrashBeforeRename) => {
                self.fire();
                // Crash before the unlink: the file survives. Recovery must
                // treat a stale-but-valid journal segment as skippable.
                Err(SynopticError::Io {
                    path: path.display().to_string(),
                    detail: "simulated crash before remove".into(),
                })
            }
            Some(r) => unreachable!("read fault {r:?} in write queue"),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        self.inner.rename(from, to)
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("synoptic_storage_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fs_storage_round_trips_and_lists() {
        let d = tmp_dir("fs");
        let s = FsStorage::new();
        let p = d.join("a.bin");
        s.write_atomic(&p, b"hello").unwrap();
        assert_eq!(s.read(&p).unwrap(), b"hello");
        s.write_atomic(&p, b"rewritten").unwrap();
        assert_eq!(s.read(&p).unwrap(), b"rewritten");
        s.write_atomic(&d.join("b.bin"), b"x").unwrap();
        assert_eq!(s.list(&d).unwrap(), vec!["a.bin", "b.bin"]);
        assert!(s.exists(&p));
        assert!(!s.exists(&d.join("nope")));
        // No stray temp files after successful writes.
        assert!(!s.exists(&tmp_path(&p)));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fs_storage_read_errors_carry_the_path() {
        let err = FsStorage::new()
            .read(Path::new("/nonexistent/x.bin"))
            .unwrap_err();
        assert!(err.to_string().contains("/nonexistent/x.bin"), "{err}");
    }

    #[test]
    fn torn_write_leaves_a_prefix() {
        let d = tmp_dir("torn");
        let s = FaultyStorage::new(FsStorage::new(), vec![Fault::TornWrite { keep: 3 }]);
        let p = d.join("t.bin");
        s.write_atomic(&p, b"0123456789").unwrap();
        assert_eq!(s.read(&p).unwrap(), b"012");
        assert_eq!(s.faults_fired(), 1);
        // Next write is clean.
        s.write_atomic(&p, b"0123456789").unwrap();
        assert_eq!(s.read(&p).unwrap(), b"0123456789");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn enospc_preserves_previous_content() {
        let d = tmp_dir("enospc");
        let s = FaultyStorage::new(FsStorage::new(), vec![Fault::Enospc]);
        let p = d.join("e.bin");
        // First, a clean write with no fault in queue... the queue pops in
        // order, so seed the old content through the inner backend.
        FsStorage::new().write_atomic(&p, b"old").unwrap();
        let err = s.write_atomic(&p, b"new").unwrap_err();
        assert!(err.to_string().contains("no space"), "{err}");
        assert_eq!(s.read(&p).unwrap(), b"old");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_before_rename_keeps_old_generation() {
        let d = tmp_dir("crash");
        let s = FaultyStorage::new(FsStorage::new(), vec![Fault::CrashBeforeRename]);
        let p = d.join("c.bin");
        FsStorage::new().write_atomic(&p, b"gen1").unwrap();
        assert!(s.write_atomic(&p, b"gen2").is_err());
        // Old content intact; temp file left behind like a real crash.
        assert_eq!(s.read(&p).unwrap(), b"gen1");
        assert!(s.exists(&tmp_path(&p)));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn append_accumulates_and_remove_unlinks() {
        let d = tmp_dir("append");
        let s = FsStorage::new();
        let p = d.join("j.wal");
        s.append(&p, b"abc", false).unwrap();
        s.append(&p, b"def", true).unwrap();
        assert_eq!(s.read(&p).unwrap(), b"abcdef");
        s.remove(&p).unwrap();
        assert!(!s.exists(&p));
        assert!(s.remove(&p).is_err(), "removing a missing file errors");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn append_faults_tear_fail_or_crash() {
        let d = tmp_dir("appendf");
        let s = FaultyStorage::new(
            FsStorage::new(),
            vec![
                Fault::TornWrite { keep: 2 },
                Fault::Enospc,
                Fault::CrashBeforeRename,
            ],
        );
        let p = d.join("j.wal");
        // Torn: silent success, only a prefix lands.
        s.append(&p, b"0123", false).unwrap();
        assert_eq!(s.read(&p).unwrap(), b"01");
        // ENOSPC: loud failure, nothing lands.
        assert!(s.append(&p, b"4567", false).is_err());
        assert_eq!(s.read(&p).unwrap(), b"01");
        // Crash-before-append: loud failure, nothing lands.
        assert!(s.append(&p, b"89", false).is_err());
        assert_eq!(s.read(&p).unwrap(), b"01");
        assert_eq!(s.faults_fired(), 3);
        // Schedule exhausted: appends are clean again.
        s.append(&p, b"ab", true).unwrap();
        assert_eq!(s.read(&p).unwrap(), b"01ab");
        // A scripted crash-before-remove keeps the file.
        s.push_fault(Fault::CrashBeforeRename);
        assert!(s.remove(&p).is_err());
        assert!(s.exists(&p));
        s.remove(&p).unwrap();
        assert!(!s.exists(&p));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn read_faults_mutate_only_the_view() {
        let d = tmp_dir("readf");
        let p = d.join("r.bin");
        FsStorage::new().write_atomic(&p, b"abcdefgh").unwrap();
        let s = FaultyStorage::new(
            FsStorage::new(),
            vec![
                Fault::Truncate { len: 2 },
                Fault::BitFlip {
                    offset: 1,
                    mask: 0x01,
                },
                Fault::PartialRead { percent: 50 },
            ],
        );
        assert_eq!(s.read(&p).unwrap(), b"ab");
        assert_eq!(s.read(&p).unwrap(), b"accdefgh");
        assert_eq!(s.read(&p).unwrap(), b"abcd");
        // Faults exhausted: reads are clean again and the file on disk was
        // never altered.
        assert_eq!(s.read(&p).unwrap(), b"abcdefgh");
        assert_eq!(s.faults_fired(), 3);
        let _ = std::fs::remove_dir_all(&d);
    }
}
