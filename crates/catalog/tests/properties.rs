//! Randomized tests for the catalog subsystem: allocation optimality on
//! random curves, binary persistence round-trips on every synopsis variant,
//! and a corruption corpus asserting that damaged bytes are never loaded
//! silently. Driven by the in-repo seeded [`Rng`] so they run fully offline.

use synoptic_catalog::allocation::allocate_budget_greedy;
use synoptic_catalog::{
    allocate_budget, synopsis_from_bytes, synopsis_to_bytes, ColumnCurve, PersistentSynopsis,
};
use synoptic_core::rng::Rng;
use synoptic_core::{
    Bucketing, PrefixSums, RangeEstimator, RangeQuery, SynopticError, ValueHistogram,
};
use synoptic_hist::sap0::build_sap0;
use synoptic_hist::sap1::build_sap1;
use synoptic_wavelet::{PointWaveletSynopsis, RangeOptimalWavelet};

const CASES: u64 = 64;

/// Random (words, sse) curves: increasing words, decreasing-ish SSE.
fn rand_curve(rng: &mut Rng, name: &str) -> ColumnCurve {
    let steps = rng.usize_in(1, 5);
    let weight = rng.f64_in(0.1, 4.0);
    let mut points = Vec::new();
    let mut words = 0usize;
    let mut sse = 1000.0f64;
    for _ in 0..steps {
        words += rng.usize_in(1, 5);
        sse = (sse - rng.f64_in(0.0, 100.0)).max(0.0);
        points.push((words, sse));
    }
    ColumnCurve {
        name: name.to_string(),
        weight,
        points,
    }
}

fn rand_values(rng: &mut Rng) -> Vec<i64> {
    let n = rng.usize_in(4, 20);
    (0..n).map(|_| rng.i64_in(0, 119)).collect()
}

/// Every persistable variant built from the same random column.
fn all_variants(rng: &mut Rng, vals: &[i64], ps: &PrefixSums) -> Vec<PersistentSynopsis> {
    let n = vals.len();
    let b = rng.usize_in(1, 5).min(n);
    let mut starts = vec![0usize];
    for i in 1..n {
        if rng.bool() {
            starts.push(i);
        }
    }
    let bk = Bucketing::new(n, starts).unwrap();
    let vh = ValueHistogram::with_averages(bk, ps, "c").unwrap();
    vec![
        PersistentSynopsis::from_naive(ps),
        PersistentSynopsis::from_value_histogram(&vh),
        PersistentSynopsis::from_sap0(&build_sap0(ps, b).unwrap()),
        PersistentSynopsis::from_sap1(&build_sap1(ps, b).unwrap()),
        PersistentSynopsis::from_wavelet_point(&PointWaveletSynopsis::build(vals, b)),
        PersistentSynopsis::from_wavelet_range(&RangeOptimalWavelet::build(ps, b)),
    ]
}

#[test]
fn dp_allocation_is_optimal_over_the_grid() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x51_000 + case);
        let a = rand_curve(&mut rng, "a");
        let b = rand_curve(&mut rng, "b");
        let budget = rng.usize_in(2, 24);
        let curves = [a.clone(), b.clone()];
        let Ok(dp) = allocate_budget(&curves, budget) else {
            // Budget below the minimum grid points — acceptable.
            continue;
        };
        assert!(dp.total_words <= budget, "case {case}");
        // Brute force over all grid pairs.
        let mut best = f64::INFINITY;
        for &(wa, sa) in &a.points {
            for &(wb, sb) in &b.points {
                if wa + wb <= budget {
                    best = best.min(a.weight * sa + b.weight * sb);
                }
            }
        }
        assert!(
            (dp.total_weighted_sse - best).abs() <= 1e-9 * (1.0 + best),
            "case {case}: dp {} vs brute {best}",
            dp.total_weighted_sse
        );
        // Reconstruction consistency: choices re-sum to the reported value.
        let resum: f64 = dp
            .choices
            .iter()
            .zip(&curves)
            .map(|(&(_, _, s), c)| c.weight * s)
            .sum();
        assert!(
            (resum - dp.total_weighted_sse).abs() <= 1e-9 * (1.0 + resum),
            "case {case}"
        );
    }
}

#[test]
fn greedy_never_beats_dp() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x52_000 + case);
        let a = rand_curve(&mut rng, "a");
        let b = rand_curve(&mut rng, "b");
        let budget = rng.usize_in(2, 24);
        let curves = [a, b];
        let (Ok(dp), Ok(gr)) = (
            allocate_budget(&curves, budget),
            allocate_budget_greedy(&curves, budget),
        ) else {
            continue;
        };
        assert!(
            dp.total_weighted_sse <= gr.total_weighted_sse + 1e-9,
            "case {case}"
        );
        assert!(gr.total_words <= budget, "case {case}");
    }
}

#[test]
fn every_variant_answers_identically_after_binary_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x53_000 + case);
        let vals = rand_values(&mut rng);
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        for (vi, p) in all_variants(&mut rng, &vals, &ps).iter().enumerate() {
            let orig = p.load().unwrap();
            let bytes = synopsis_to_bytes(p);
            let back = synopsis_from_bytes(&bytes, "prop").unwrap();
            let loaded = back.load().unwrap();
            assert_eq!(
                p.storage_words(),
                back.storage_words(),
                "case {case} variant {vi}"
            );
            for q in RangeQuery::all(n) {
                let (x, y) = (orig.estimate(q), loaded.estimate(q));
                assert!(
                    (x - y).abs() <= 1e-9 * (1.0 + x.abs()),
                    "case {case} variant {vi}: {q:?}: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn sap_storage_accounting_matches_the_theorems() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x54_000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        let b = rng.usize_in(1, 6).min(vals.len());
        let h0 = build_sap0(&ps, b).unwrap();
        let p0 = PersistentSynopsis::from_sap0(&h0);
        assert_eq!(
            p0.storage_words(),
            3 * h0.bucketing().num_buckets(),
            "case {case}"
        );
        let h1 = build_sap1(&ps, b).unwrap();
        let p1 = PersistentSynopsis::from_sap1(&h1);
        assert_eq!(
            p1.storage_words(),
            5 * h1.bucketing().num_buckets(),
            "case {case}"
        );
    }
}

/// Corruption is never silent: every truncation and every single-bit flip of
/// a serialized synopsis must fail to load with a corruption (or version)
/// error — never a wrong answer, never a panic.
#[test]
fn corruption_corpus_never_loads_silently() {
    for case in 0..CASES / 4 {
        let mut rng = Rng::new(0x55_000 + case);
        let vals = rand_values(&mut rng);
        let ps = PrefixSums::from_values(&vals);
        for p in all_variants(&mut rng, &vals, &ps) {
            let bytes = synopsis_to_bytes(&p);
            // Every truncation, including the empty file.
            for len in 0..bytes.len() {
                let e = synopsis_from_bytes(&bytes[..len], "trunc").unwrap_err();
                assert!(
                    matches!(
                        e,
                        SynopticError::CorruptSynopsis { .. }
                            | SynopticError::UnsupportedVersion { .. }
                    ),
                    "case {case}: truncation to {len} gave {e:?}"
                );
            }
            // One random bit flip per byte position.
            for i in 0..bytes.len() {
                let mut dam = bytes.clone();
                dam[i] ^= 1 << rng.usize_in(0, 8);
                let e = synopsis_from_bytes(&dam, "flip").unwrap_err();
                assert!(
                    matches!(
                        e,
                        SynopticError::CorruptSynopsis { .. }
                            | SynopticError::UnsupportedVersion { .. }
                    ),
                    "case {case}: bit flip at byte {i} gave {e:?}"
                );
            }
        }
    }
}
