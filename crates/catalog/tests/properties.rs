//! Property-based tests for the catalog subsystem: allocation optimality on
//! random curves and persistence round-trips on random synopses.

use proptest::prelude::*;
use synoptic_catalog::allocation::allocate_budget_greedy;
use synoptic_catalog::{allocate_budget, ColumnCurve, PersistentSynopsis};
use synoptic_core::{Bucketing, PrefixSums, RangeEstimator, RangeQuery};
use synoptic_hist::sap0::build_sap0;
use synoptic_hist::sap1::build_sap1;

/// Random strictly-increasing (words, sse) curves with decreasing-ish SSE.
fn arb_curve(name: &'static str) -> impl Strategy<Value = ColumnCurve> {
    (
        prop::collection::vec((1usize..5, 0.0f64..100.0), 1..5),
        0.1f64..4.0,
    )
        .prop_map(move |(steps, weight)| {
            let mut points = Vec::new();
            let mut words = 0usize;
            let mut sse = 1000.0f64;
            for (dw, drop) in steps {
                words += dw;
                sse = (sse - drop).max(0.0);
                points.push((words, sse));
            }
            ColumnCurve {
                name: name.to_string(),
                weight,
                points,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_allocation_is_optimal_over_the_grid(
        (a, b, budget) in (arb_curve("a"), arb_curve("b"), 2usize..24)
    ) {
        let curves = [a.clone(), b.clone()];
        let Ok(dp) = allocate_budget(&curves, budget) else {
            // Budget below the minimum grid points — acceptable.
            return Ok(());
        };
        prop_assert!(dp.total_words <= budget);
        // Brute force over all grid pairs.
        let mut best = f64::INFINITY;
        for &(wa, sa) in &a.points {
            for &(wb, sb) in &b.points {
                if wa + wb <= budget {
                    best = best.min(a.weight * sa + b.weight * sb);
                }
            }
        }
        prop_assert!(
            (dp.total_weighted_sse - best).abs() <= 1e-9 * (1.0 + best),
            "dp {} vs brute {}", dp.total_weighted_sse, best
        );
        // Reconstruction consistency: choices re-sum to the reported value.
        let resum: f64 = dp
            .choices
            .iter()
            .zip(&curves)
            .map(|(&(_, _, s), c)| c.weight * s)
            .sum();
        prop_assert!((resum - dp.total_weighted_sse).abs() <= 1e-9 * (1.0 + resum));
    }

    #[test]
    fn greedy_never_beats_dp((a, b, budget) in (arb_curve("a"), arb_curve("b"), 2usize..24)) {
        let curves = [a, b];
        let (Ok(dp), Ok(gr)) = (
            allocate_budget(&curves, budget),
            allocate_budget_greedy(&curves, budget),
        ) else {
            return Ok(());
        };
        prop_assert!(dp.total_weighted_sse <= gr.total_weighted_sse + 1e-9);
        prop_assert!(gr.total_words <= budget);
    }

    #[test]
    fn sap_persistence_round_trips_on_random_data(
        (vals, cuts) in (
            prop::collection::vec(0i64..120, 4..20),
            prop::collection::vec(any::<bool>(), 19),
        )
    ) {
        let n = vals.len();
        let ps = PrefixSums::from_values(&vals);
        let mut starts = vec![0usize];
        for (i, &c) in cuts.iter().take(n - 1).enumerate() {
            if c {
                starts.push(i + 1);
            }
        }
        let b = starts.len().min(n);
        let _ = Bucketing::new(n, starts).unwrap();
        // SAP0 round-trip.
        let h0 = build_sap0(&ps, b).unwrap();
        let p0 = PersistentSynopsis::from_sap0(&h0);
        let js = serde_json::to_string(&p0).unwrap();
        let loaded = serde_json::from_str::<PersistentSynopsis>(&js)
            .unwrap()
            .load()
            .unwrap();
        for q in RangeQuery::all(n) {
            let (x, y) = (h0.estimate(q), loaded.estimate(q));
            prop_assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()), "{:?}: {} vs {}", q, x, y);
        }
        // SAP1 round-trip.
        let h1 = build_sap1(&ps, b).unwrap();
        let p1 = PersistentSynopsis::from_sap1(&h1);
        let loaded = p1.load().unwrap();
        for q in RangeQuery::all(n) {
            let (x, y) = (h1.estimate(q), loaded.estimate(q));
            prop_assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()), "{:?}", q);
        }
        // Storage accounting matches the theorems.
        prop_assert_eq!(p0.storage_words(), 3 * h0.bucketing().num_buckets());
        prop_assert_eq!(p1.storage_words(), 5 * h1.bucketing().num_buckets());
    }
}
