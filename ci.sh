#!/usr/bin/env sh
# Repo gate: formatting, lints, and the tier-1 verify — all fully offline.
# Run from the repo root. Fails fast on the first broken step.
set -eu

# Hard wall-clock cap for each test invocation (seconds). A hung test —
# e.g. a rebuild loop that stops observing its cancellation token — must
# fail CI, not wedge it. `timeout` is in coreutils; degrade gracefully to
# an uncapped run where it is unavailable.
TEST_CAP="${CI_TEST_CAP_SECS:-900}"
if command -v timeout >/dev/null 2>&1; then
    CAP="timeout ${TEST_CAP}"
else
    echo "warning: coreutils 'timeout' not found; running tests uncapped" >&2
    CAP=""
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> tier-1: cargo build --release (offline)"
# This build doubles as the compile-time thread-safety gate: const-context
# `assert_send_sync` proofs in crates/core/src/budget.rs (Budget,
# CancelToken), crates/core/src/swap.rs (HotSwap/HotSwapReader),
# crates/stream/src/pool.rs (ColumnHandle, MaintainedPool, and the Send
# bound on PersistFn — the persist hook crosses a thread boundary), and
# crates/catalog/src/store.rs (DurableCatalog behind the persist hook)
# fail the build if any of them regresses to !Send or !Sync.
cargo build --release --offline

echo "==> tier-1: cargo test -q (offline, capped at ${TEST_CAP}s)"
${CAP} cargo test -q --offline

echo "==> threaded stress suite: pool under fault injection (capped at ${TEST_CAP}s)"
${CAP} cargo test -q -p synoptic-stream --test pool_stress --offline

echo "==> crash-recovery suite: kill-and-recover sweep + journal faults (capped at ${TEST_CAP}s)"
${CAP} cargo test -q -p synoptic-stream --test recovery_sweep --offline
${CAP} cargo test -q -p synoptic-stream --test maintained_faults --offline
${CAP} cargo test -q -p synoptic-cli --test store_cli --offline

echo "==> replication suite: wire + transports, faulty-link convergence, promotion sweep, TCP e2e (capped at ${TEST_CAP}s)"
${CAP} cargo test -q -p synoptic-repl --offline
${CAP} cargo test -q -p synoptic-stream --test replication --offline
${CAP} cargo test -q -p synoptic-stream --test promotion_sweep --offline
${CAP} cargo test -q -p synoptic-cli --test replication_cli --offline

echo "==> failover suite: kill-the-leader sweep, CLI election e2e (capped at ${TEST_CAP}s)"
${CAP} cargo test -q -p synoptic-stream --test failover_sweep --offline
${CAP} cargo test -q -p synoptic-cli --test failover_cli --offline

echo "==> serving suite: wire codec + exit-code table, batch pinning, cache invalidation, admission control, CLI e2e (capped at ${TEST_CAP}s)"
${CAP} cargo test -q -p synoptic-api --offline
${CAP} cargo test -q -p synoptic-serve --offline
${CAP} cargo test -q -p synoptic-cli --test serve_cli --offline

echo "==> overload suite: deadline sheds, tenant admission, degradation ladder, storm proof, retry/breaker sweep (capped at ${TEST_CAP}s)"
${CAP} cargo test -q -p synoptic-serve --test overload --offline
${CAP} cargo test -q -p synoptic-serve --test resilience --offline

echo "==> segment suite: dirty-segment rebuilds + merge equivalence (capped at ${TEST_CAP}s)"
${CAP} cargo test -q -p synoptic-stream --test segments --offline
${CAP} cargo test -q -p synoptic-hist --test merge_equivalence --offline
${CAP} cargo test -q -p synoptic-wavelet --test merge_bound --offline

echo "==> replication bench: ship+replay throughput and follower lag (capped at ${TEST_CAP}s)"
${CAP} cargo run -q --release --offline --example replication_bench

echo "==> failover bench: detection -> promotion -> first-served-read latency (capped at ${TEST_CAP}s)"
${CAP} cargo run -q --release --offline --example failover_bench

echo "==> segments bench: dirty-segment vs full rebuild at 1/4/16/64 segments (capped at ${TEST_CAP}s)"
${CAP} cargo run -q --release --offline --example segments_bench

echo "==> serve bench: mixed update+query throughput and wire latency over live TCP (capped at ${TEST_CAP}s)"
${CAP} cargo run -q --release --offline --example serve_bench

echo "==> overload bench: goodput, shed rate, degraded fraction, p50/p99 at 1x/2x/4x offered load (capped at ${TEST_CAP}s)"
${CAP} cargo run -q --release --offline --example overload_bench

echo "==> full workspace tests (offline, capped at ${TEST_CAP}s)"
${CAP} cargo test -q --workspace --offline

echo "==> doc tests (offline, capped at ${TEST_CAP}s)"
${CAP} cargo test -q --workspace --doc --offline

# Surface the bench artifacts at the repo root on every run, so a CI
# archiver that only collects top-level files still gets them. The
# canonical copies stay in results/.
echo "==> collecting BENCH artifacts at the repo root"
for artifact in results/BENCH_*.json; do
    if [ -f "${artifact}" ]; then
        cp -f "${artifact}" .
    fi
done

echo "==> ci.sh: all checks passed"
