#!/usr/bin/env sh
# Repo gate: formatting, lints, and the tier-1 verify — all fully offline.
# Run from the repo root. Fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> tier-1: cargo build --release (offline)"
cargo build --release --offline

echo "==> tier-1: cargo test -q (offline)"
cargo test -q --offline

echo "==> full workspace tests (offline)"
cargo test -q --workspace --offline

echo "==> ci.sh: all checks passed"
