//! Automated-failover latency benchmark — the offline emitter behind
//! `results/BENCH_failover.json`.
//!
//! Measures the three phases of an unplanned failover, wall clock, over
//! an in-memory transport (so the numbers are the election + recovery
//! machinery, not a network stack):
//!
//! * **detection** — from the moment the leader goes silent (link open,
//!   no frames) to the follower's lease expiring under
//!   `serve_with_lease` with a small real TTL;
//! * **promotion** — `promote`: crash recovery over the follower's own
//!   catalog + journal plus the durable claim of the next election term;
//! * **first served read** — reopening the promoted replica and serving
//!   a full-range estimate off the recovered state.
//!
//! Run with: `cargo run --release --example failover_bench`
//! Writes `results/BENCH_failover.json` (override dir with
//! `BENCH_OUT_DIR`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use synoptic::catalog::wal::{ColumnWal, FsyncCadence, WalConfig};
use synoptic::catalog::{Catalog, ColumnEntry, DurableCatalog, FsStorage, PersistentSynopsis};
use synoptic::core::RangeQuery;
use synoptic::eval::json::JsonValue;
use synoptic::repl::{MemTransport, Shipper, WallClock};
use synoptic::stream::{promote, FollowConfig, Follower, ServeOutcome, SharedStorage};

const COLUMN: &str = "c";
const N: usize = 1024;
const RECORDS: usize = 2_000;
const SEGMENT_BYTES: usize = 4096;
const TTL_MS: u64 = 50;
const TRIALS: usize = 5;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "synoptic-bench-failover-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn initial_values() -> Vec<i64> {
    (0..N as i64).map(|i| 100 + (i * 13) % 57).collect()
}

fn commit_initial(cat_dir: &std::path::Path) -> u64 {
    let values = initial_values();
    let store = DurableCatalog::open(cat_dir, FsStorage::new()).unwrap();
    let mut cat = Catalog::new();
    cat.insert(
        COLUMN,
        ColumnEntry {
            n: values.len(),
            total_rows: values.iter().sum(),
            synopsis: PersistentSynopsis::from_frequencies(&values),
        },
    );
    store.save(&cat).unwrap()
}

/// Deterministic update stream.
fn updates(len: usize) -> impl Iterator<Item = (u64, i64)> {
    let mut s = 0xFA11_u64;
    (0..len).map(move |_| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ((s % N as u64), ((s >> 32) % 17) as i64 - 8)
    })
}

struct Trial {
    detection_ms: f64,
    promotion_ms: f64,
    first_read_ms: f64,
}

/// One full failover: replicate, fall silent, detect, promote, serve.
fn run_trial(trial: usize) -> Trial {
    let root = tempdir(&format!("t{trial}"));
    let generation = commit_initial(&root.join("leader-cat"));
    commit_initial(&root.join("follower-cat"));
    let wal = ColumnWal::open(
        FsStorage::new(),
        root.join("leader-wal"),
        COLUMN,
        generation,
        WalConfig {
            segment_bytes: SEGMENT_BYTES,
            fsync: FsyncCadence::OnRotate,
            ..WalConfig::default()
        },
    )
    .unwrap();
    for (i, d) in updates(RECORDS) {
        wal.append(i, d).unwrap();
    }
    wal.seal().unwrap();
    let mark = wal.pending_mark();

    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (mut follower, _) = Follower::open(
        Arc::clone(&storage),
        root.join("follower-cat"),
        root.join("follower-wal"),
        FollowConfig::default(),
    )
    .unwrap();
    let (mut leader_end, mut follower_end) = MemTransport::pair();
    let serve = std::thread::spawn(move || {
        let clock = WallClock::new();
        let outcome = follower
            .serve_with_lease(&mut follower_end, &clock, TTL_MS, Duration::from_millis(1))
            .unwrap();
        (outcome, Instant::now())
    });

    // Replicate everything with term-1 frames, then fall silent: the link
    // stays open, no heartbeat ever arrives again.
    let shipper = Shipper::new(FsStorage::new(), root.join("leader-wal"), COLUMN).with_term(1);
    let report = shipper.ship(&mut leader_end, mark).unwrap();
    assert_eq!(
        report.acked_lsn, mark,
        "trial must converge before the kill"
    );
    let silence = Instant::now();

    let (outcome, detected_at) = serve.join().unwrap();
    assert_eq!(outcome, ServeOutcome::LeaseExpired);
    let detection_ms = detected_at.duration_since(silence).as_secs_f64() * 1e3;

    let promote_start = Instant::now();
    let (term, _report) = promote(
        Arc::clone(&storage),
        root.join("follower-cat"),
        root.join("follower-wal"),
        7,
    )
    .unwrap();
    assert_eq!(term, 2);
    let promotion_ms = promote_start.elapsed().as_secs_f64() * 1e3;

    let read_start = Instant::now();
    let (promoted, _) = Follower::open(
        storage,
        root.join("follower-cat"),
        root.join("follower-wal"),
        FollowConfig::default(),
    )
    .unwrap();
    let q = RangeQuery::new(0, N - 1).unwrap();
    let est = promoted.estimate(COLUMN, q).unwrap();
    assert!(est.is_finite());
    let first_read_ms = read_start.elapsed().as_secs_f64() * 1e3;

    let _ = std::fs::remove_dir_all(&root);
    Trial {
        detection_ms,
        promotion_ms,
        first_read_ms,
    }
}

fn stats(values: impl Iterator<Item = f64>) -> JsonValue {
    let v: Vec<f64> = values.collect();
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    let max = v.iter().cloned().fold(0.0_f64, f64::max);
    JsonValue::obj([("mean", JsonValue::Num(mean)), ("max", JsonValue::Num(max))])
}

fn main() {
    let trials: Vec<Trial> = (0..TRIALS).map(run_trial).collect();
    for (i, t) in trials.iter().enumerate() {
        println!(
            "trial {i}: detection {:.1} ms (ttl {TTL_MS}), promotion {:.1} ms, \
             first read {:.1} ms",
            t.detection_ms, t.promotion_ms, t.first_read_ms
        );
    }
    let total_mean = trials
        .iter()
        .map(|t| t.detection_ms + t.promotion_ms + t.first_read_ms)
        .sum::<f64>()
        / trials.len() as f64;
    println!(
        "failover (mean over {TRIALS} trials, {RECORDS} replicated records): \
         silence -> serving in {total_mean:.1} ms"
    );
    let report = JsonValue::obj([
        ("bench", JsonValue::Str("failover".to_string())),
        ("n", JsonValue::Int(N as i128)),
        ("records", JsonValue::Int(RECORDS as i128)),
        ("lease_ttl_ms", JsonValue::Int(TTL_MS as i128)),
        ("trials", JsonValue::Int(TRIALS as i128)),
        ("detection_ms", stats(trials.iter().map(|t| t.detection_ms))),
        ("promotion_ms", stats(trials.iter().map(|t| t.promotion_ms))),
        (
            "first_read_ms",
            stats(trials.iter().map(|t| t.first_read_ms)),
        ),
        ("total_ms_mean", JsonValue::Num(total_mean)),
    ]);
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&out_dir).unwrap();
    let path = std::path::Path::new(&out_dir).join("BENCH_failover.json");
    std::fs::write(&path, report.to_string_pretty()).unwrap();
    println!("wrote {}", path.display());
}
