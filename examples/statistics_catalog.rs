//! A table's statistics catalog: allocate one global storage budget across
//! columns, persist the chosen synopses, and answer predicates after a
//! reload — the workflow a database engine wraps around the paper's
//! algorithms.
//!
//! Run with: `cargo run --release --example statistics_catalog`

use synoptic::catalog::{
    allocate_budget, Catalog, ColumnCurve, ColumnEntry, DurableCatalog, FsStorage,
    PersistentSynopsis,
};
use synoptic::core::sse::sse_brute;
use synoptic::data::generators::{normal_mixture, steps, uniform};
use synoptic::data::zipf::{paper_dataset, ZipfConfig};
use synoptic::hist::sap0::build_sap0;
use synoptic::prelude::*;

fn main() -> Result<()> {
    // Four columns with very different shapes.
    let columns: Vec<(&str, DataArray, f64)> = vec![
        (
            "price",
            paper_dataset(&ZipfConfig {
                n: 64,
                ..ZipfConfig::default()
            }),
            3.0, // queried often → higher weight
        ),
        ("age", normal_mixture(64, 3, 200.0, 5), 2.0),
        ("discount", steps(64, 4, 120, 9), 1.0),
        ("noise", uniform(64, 0, 50, 11), 0.5),
    ];

    // Per-column error curves for SAP0 on a budget grid.
    let grid = [6usize, 9, 12, 18, 24, 36, 48];
    let mut curves = Vec::new();
    for (name, data, weight) in &columns {
        let ps = data.prefix_sums();
        let points: Vec<(usize, f64)> = grid
            .iter()
            .filter_map(|&w| {
                let b = w / 3;
                if b == 0 {
                    return None;
                }
                let h = build_sap0(&ps, b).ok()?;
                Some((w, sse_brute(&h, &ps)))
            })
            .collect();
        curves.push(ColumnCurve {
            name: name.to_string(),
            weight: *weight,
            points,
        });
    }

    // Split 72 words across the four columns, optimally over the grid.
    let total_budget = 72;
    let alloc = allocate_budget(&curves, total_budget)?;
    println!("global budget: {total_budget} words\n");
    println!("{:<10} {:>7} {:>14}", "column", "words", "sse at choice");
    for (name, words, sse) in &alloc.choices {
        println!("{name:<10} {words:>7} {sse:>14.4e}");
    }
    println!(
        "spent {} words, total weighted SSE {:.4e}\n",
        alloc.total_words, alloc.total_weighted_sse
    );

    // Build the allocated synopses and persist the catalog.
    let mut catalog = Catalog::new();
    for ((name, data, _), (_, words, _)) in columns.iter().zip(&alloc.choices) {
        let ps = data.prefix_sums();
        let h = build_sap0(&ps, (words / 3).max(1))?;
        catalog.insert(
            *name,
            ColumnEntry {
                n: data.n(),
                total_rows: ps.total() as i64,
                synopsis: PersistentSynopsis::from_sap0(&h),
            },
        );
    }
    let dir = std::env::temp_dir().join("synoptic_stats_store");
    let _ = std::fs::remove_dir_all(&dir);
    let store = DurableCatalog::open(&dir, FsStorage::new())?;
    let generation = store.save(&catalog)?;
    println!(
        "persisted catalog ({} words) to {} as generation {generation}",
        catalog.total_words(),
        dir.display()
    );

    // Reload and answer predicates — no base data needed.
    let loaded = store.load()?;
    println!("\nreloaded; sample predicates:");
    for (col, lo, hi) in [("price", 0, 9), ("age", 20, 40), ("discount", 10, 30)] {
        let est = loaded.estimate(col, RangeQuery::new(lo, hi)?)?;
        println!("  {col} BETWEEN {lo} AND {hi}  →  ~{est:.0} rows");
    }
    println!("\n{}", loaded.summary());
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
