//! Synopsis tuning: pick the cheapest summary meeting an accuracy target.
//!
//! DBAs rarely ask "what is the SSE at 32 words?" — they ask "how many words
//! must I spend so a typical BETWEEN estimate is within X rows?". This
//! example sweeps storage budgets for several methods, prints the
//! accuracy/storage frontier, and reports the cheapest configuration meeting
//! the target, exercising the library exactly the way a tuning advisor
//! would.
//!
//! Run with: `cargo run --release --example synopsis_tuning [target_rmse]`

use synoptic::core::sse::mse_from_sse;
use synoptic::data::zipf::{paper_dataset, ZipfConfig};
use synoptic::eval::methods::{exact_sse, MethodSpec};
use synoptic::prelude::*;

fn main() -> Result<()> {
    let target_rmse: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);

    let data = paper_dataset(&ZipfConfig::default());
    let ps = data.prefix_sums();
    println!(
        "column: {} rows over {} values; target: all-ranges RMSE ≤ {target_rmse} rows\n",
        ps.total(),
        data.n()
    );

    let methods = [
        MethodSpec::EquiDepth,
        MethodSpec::PointOpt,
        MethodSpec::Sap0,
        MethodSpec::Sap1,
        MethodSpec::OptA,
        MethodSpec::OptAReopt,
        MethodSpec::WaveletRange,
    ];
    let budgets = [8usize, 12, 16, 20, 24, 32, 40, 48, 64, 80];

    // Frontier table: RMSE per (method × budget).
    print!("{:<14}", "words:");
    for b in budgets {
        print!("{b:>9}");
    }
    println!();
    let mut winner: Option<(String, usize, f64)> = None;
    for m in methods {
        print!("{:<14}", m.name());
        for b in budgets {
            match m.build_at_budget(data.values(), &ps, b) {
                Ok(est) => {
                    let rmse = mse_from_sse(exact_sse(est.as_ref(), &ps), data.n()).sqrt();
                    print!("{rmse:>9.1}");
                    let qualifies = rmse <= target_rmse;
                    let cheaper = winner
                        .as_ref()
                        .map(|&(_, wb, wr)| b < wb || (b == wb && rmse < wr))
                        .unwrap_or(true);
                    if qualifies && cheaper {
                        winner = Some((m.name().to_string(), b, rmse));
                    }
                }
                Err(_) => print!("{:>9}", "-"),
            }
        }
        println!();
    }

    match winner {
        Some((name, words, rmse)) => println!(
            "\nadvisor: use {name} at {words} words (RMSE {rmse:.1} ≤ target {target_rmse})"
        ),
        None => println!(
            "\nadvisor: no configuration up to {} words meets RMSE ≤ {target_rmse}; \
             raise the budget or the tolerance",
            budgets.last().unwrap()
        ),
    }
    Ok(())
}
