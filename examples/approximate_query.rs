//! Approximate query answering (AQP) — the paper's second motivating
//! scenario (§1, the AQUA-style engine).
//!
//! An analyst explores a large fact table through a dashboard that answers
//! `SELECT COUNT(*) WHERE age BETWEEN lo AND hi` from a tiny synopsis
//! instead of scanning the table. This example compares histogram and
//! wavelet synopses on accuracy *per stored word* and prints the kind of
//! confidence readout an AQP engine would surface.
//!
//! Run with: `cargo run --release --example approximate_query`

use synoptic::core::sse::mse_from_sse;
use synoptic::data::generators::normal_mixture;
use synoptic::eval::methods::{exact_sse, MethodSpec};
use synoptic::prelude::*;

fn main() -> Result<()> {
    // An "age" column with three demographic bumps, domain 0..128.
    let data = normal_mixture(128, 3, 400.0, 7);
    let ps = data.prefix_sums();
    println!("fact table: {} rows over ages 0..{}", ps.total(), data.n());

    let budget = 24; // words the dashboard is willing to cache per column
    let methods = [
        MethodSpec::Naive,
        MethodSpec::EquiDepth,
        MethodSpec::Sap1,
        MethodSpec::OptA,
        MethodSpec::OptAReopt,
        MethodSpec::WaveletPoint,
        MethodSpec::WaveletRange,
    ];

    // Dashboard panels: a handful of fixed drill-down ranges.
    let panels = [
        ("minors", RangeQuery::new(0, 17)?),
        ("students", RangeQuery::new(18, 24)?),
        ("core workforce", RangeQuery::new(25, 54)?),
        ("pre-retirement", RangeQuery::new(55, 64)?),
        ("seniors", RangeQuery::new(65, 127)?),
    ];

    for m in methods {
        let est = m.build_at_budget(data.values(), &ps, budget)?;
        let sse = exact_sse(est.as_ref(), &ps);
        let rmse = mse_from_sse(sse, data.n()).sqrt();
        println!(
            "\n== {} ({} words, all-ranges RMSE ≈ {rmse:.1} rows) ==",
            m.name(),
            est.storage_words()
        );
        for (label, q) in panels {
            let truth = ps.answer(q) as f64;
            let guess = est.estimate(q);
            let rel = if truth > 0.0 {
                100.0 * (guess - truth) / truth
            } else {
                0.0
            };
            println!("  {label:<16} truth {truth:>8.0}   estimate {guess:>9.1}   ({rel:+6.1}%)");
        }
    }

    println!(
        "\nThe range-optimized synopses (OPT-A, OPT-A-reopt) give the tightest\n\
         panel estimates for the storage spent — the paper's core message."
    );
    Ok(())
}
