//! Overload-behavior benchmark — the offline emitter behind
//! `results/BENCH_overload.json`.
//!
//! A live [`synoptic::serve::Server`] with per-tenant token-bucket
//! admission is driven at 1x, 2x, and 4x its metered capacity over real
//! TCP. Every request carries the PR-10 header (tenant + `degrade_ok`),
//! and the column's rebuild lag crosses its bound halfway through each
//! level (updates land, rebuilds are Manual), so the run exercises the
//! whole overload surface: fresh answers, the degradation ladder
//! (cache-hit / last-good rungs, each stamped), and token-bucket sheds.
//!
//! Per load level the report carries offered rate, **goodput** (fresh,
//! undegraded answers per second), **shed rate**, **degraded-answer
//! fraction**, and wire p50/p99 over answered requests. The shape to
//! look for: goodput saturates near 1x capacity while sheds absorb the
//! overload — and degraded answers are never silent (asserted).
//!
//! Run with: `cargo run --release --example overload_bench`
//! Writes `results/BENCH_overload.json` (override dir with `BENCH_OUT_DIR`).

use std::net::TcpListener;
use std::time::{Duration, Instant};

use synoptic::api::wire::RequestHeader;
use synoptic::core::{RangeQuery, SynopticError};
use synoptic::eval::json::JsonValue;
use synoptic::hist::HistogramMethod;
use synoptic::serve::{Client, ServeConfig, Server};
use synoptic::stream::{ColumnBuild, MaintainedPool, RebuildConfig, RebuildPolicy};

const COLUMN: &str = "price";
const N: usize = 4096;
const BUDGET_WORDS: usize = 32;
/// Tenant bucket: 50-token burst, one token back every 2ms = 500/s.
const BURST: u64 = 50;
const REFILL_MS: u64 = 2;
const CAPACITY_PER_SEC: u64 = 1_000 / REFILL_MS;
/// Requests offered per level = multiple x capacity x this duration.
const LEVEL_SECS: f64 = 1.5;
/// One update lands every this many estimate requests.
const UPDATE_EVERY: usize = 20;

/// Deterministic xorshift stream for query bounds.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

struct LevelReport {
    multiple: u64,
    offered: u64,
    fresh: u64,
    degraded: u64,
    shed: u64,
    seconds: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Drives one load level against a fresh server (clean buckets, clean
/// meters, generation 0).
fn run_level(multiple: u64) -> LevelReport {
    let values: Vec<i64> = (0..N as i64).map(|i| 100 + (i * 13) % 57).collect();
    let pool = MaintainedPool::new(2);
    let offered = ((CAPACITY_PER_SEC * multiple) as f64 * LEVEL_SECS) as u64;
    let updates_total = offered as usize / UPDATE_EVERY;
    let col = pool
        .add_column(
            COLUMN,
            &values,
            ColumnBuild::Anytime {
                method: HistogramMethod::EquiDepth,
                budget_words: BUDGET_WORDS,
            },
            // Manual: lag only ever grows, crossing the bound mid-level.
            RebuildConfig::new(RebuildPolicy::Manual),
        )
        .unwrap();
    let server = Server::new(ServeConfig {
        tenant_burst: Some(BURST),
        tenant_refill_ms: REFILL_MS,
        // The lag bound is breached once half the level's updates have
        // landed, so the second half exercises the degradation ladder.
        max_rebuild_lag: Some((updates_total / 2).max(1) as u64),
        ..ServeConfig::default()
    });
    server.register(col);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server_thread = {
        let server = server.clone();
        std::thread::spawn(move || server.serve(listener).unwrap())
    };
    let reader = Client::connect(&addr).unwrap();
    let writer = Client::connect(&addr).unwrap();
    reader.ping().unwrap();

    let header = RequestHeader {
        deadline_ms: Some(10_000),
        tenant: Some("bench".to_string()),
        degrade_ok: true,
    };
    let writer_header = RequestHeader {
        deadline_ms: Some(10_000),
        tenant: Some("writer".to_string()),
        degrade_ok: false,
    };
    let interval = Duration::from_secs_f64(1.0 / (CAPACITY_PER_SEC * multiple) as f64);
    let mut rng = Rng(0x0F_F10AD ^ multiple);
    let mut fresh = 0u64;
    let mut degraded = 0u64;
    let mut shed = 0u64;
    let mut lat_us: Vec<f64> = Vec::with_capacity(offered as usize);
    let start = Instant::now();
    for i in 0..offered as usize {
        // Offered-load pacing: request i is due at i * interval.
        let due = interval * i as u32;
        let now = start.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        let lo = (rng.next() % N as u64) as usize;
        let hi = (lo + (rng.next() % 64) as usize).min(N - 1);
        let t = Instant::now();
        match reader.estimate_batch_with(&header, COLUMN, vec![RangeQuery::new(lo, hi).unwrap()]) {
            Ok(answer) => {
                lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                match answer.rung {
                    None => fresh += 1,
                    Some(_) => degraded += 1,
                }
            }
            Err(SynopticError::ServerOverloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected error under overload: {e}"),
        }
        if i % UPDATE_EVERY == UPDATE_EVERY - 1 {
            // The writer's own bucket paces these well under its burst.
            writer
                .update_with(&writer_header, COLUMN, vec![(rng.next() % N as u64, 1)])
                .unwrap();
        }
    }
    let seconds = start.elapsed().as_secs_f64();

    // Degradation is never silent: the server's own meter agrees with
    // what the client counted from the stamped rungs.
    let stats = reader.stats_with(&writer_header, COLUMN).unwrap();
    assert_eq!(
        stats.degraded, degraded,
        "every ladder answer must be stamped and counted"
    );

    server.shutdown();
    server_thread.join().unwrap();
    drop(pool);

    lat_us.sort_by(|a, b| a.total_cmp(b));
    LevelReport {
        multiple,
        offered,
        fresh,
        degraded,
        shed,
        seconds,
        p50_us: percentile(&lat_us, 50.0),
        p99_us: percentile(&lat_us, 99.0),
    }
}

fn main() {
    let mut levels = Vec::new();
    for multiple in [1u64, 2, 4] {
        let r = run_level(multiple);
        println!(
            "{}x offered ({} req in {:.2}s): goodput {:.0}/s, degraded {:.1}%, \
             shed {:.1}%, p50 {:.0}us, p99 {:.0}us",
            r.multiple,
            r.offered,
            r.seconds,
            r.fresh as f64 / r.seconds,
            100.0 * r.degraded as f64 / r.offered as f64,
            100.0 * r.shed as f64 / r.offered as f64,
            r.p50_us,
            r.p99_us,
        );
        levels.push(r);
    }

    // The overload contract, coarsely: everything offered is accounted
    // for, and sustained overload actually sheds instead of queueing.
    for r in &levels {
        assert_eq!(r.fresh + r.degraded + r.shed, r.offered);
    }
    let worst = levels.last().unwrap();
    assert!(
        worst.shed > 0,
        "4x offered load must shed (got {} fresh / {} degraded / 0 shed)",
        worst.fresh,
        worst.degraded
    );
    assert!(
        levels.iter().all(|r| r.degraded > 0),
        "the lag bound is crossed mid-level, the ladder must fire"
    );

    let report = JsonValue::obj([
        ("bench", JsonValue::Str("overload".to_string())),
        ("n", JsonValue::Int(N as i128)),
        ("tenant_burst", JsonValue::Int(BURST as i128)),
        ("tenant_refill_ms", JsonValue::Int(REFILL_MS as i128)),
        ("capacity_per_sec", JsonValue::Int(CAPACITY_PER_SEC as i128)),
        (
            "levels",
            JsonValue::Arr(
                levels
                    .iter()
                    .map(|r| {
                        JsonValue::obj([
                            ("offered_multiple", JsonValue::Int(r.multiple as i128)),
                            ("offered_requests", JsonValue::Int(r.offered as i128)),
                            ("seconds", JsonValue::Num(r.seconds)),
                            (
                                "offered_per_sec",
                                JsonValue::Num(r.offered as f64 / r.seconds),
                            ),
                            (
                                "goodput_per_sec",
                                JsonValue::Num(r.fresh as f64 / r.seconds),
                            ),
                            (
                                "shed_rate",
                                JsonValue::Num(r.shed as f64 / r.offered as f64),
                            ),
                            (
                                "degraded_fraction",
                                JsonValue::Num(r.degraded as f64 / r.offered as f64),
                            ),
                            ("p50_us", JsonValue::Num(r.p50_us)),
                            ("p99_us", JsonValue::Num(r.p99_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&out_dir).unwrap();
    let path = std::path::Path::new(&out_dir).join("BENCH_overload.json");
    std::fs::write(&path, report.to_string_pretty()).unwrap();
    println!("wrote {}", path.display());
}
