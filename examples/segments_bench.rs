//! Dirty-segment rebuild benchmark — the offline emitter behind
//! `results/BENCH_segments.json`.
//!
//! Registers one column as a segmented pool column at 1 / 4 / 16 / 64
//! segments and measures, wall clock:
//!
//! * **full rebuild** — a manual rebuild with every segment clean, which
//!   refreshes all partials (at 1 segment this is exactly the monolithic
//!   rebuild cost);
//! * **dirty rebuild** — one update lands in one segment, then a rebuild:
//!   only the dirty slice re-runs the SAP0 DP, every clean partial is
//!   reused bit-for-bit.
//!
//! The SAP0 DP is `O(n²B)`, so rebuilding one dirty segment of `S` costs
//! about `1/S²` of the monolithic build — the reported
//! `speedup_vs_monolithic` (monolithic full-rebuild time over this
//! config's dirty-rebuild time) should far exceed the 4× the roadmap
//! demands at 16 segments.
//!
//! Run with: `cargo run --release --example segments_bench`
//! Writes `results/BENCH_segments.json` (override dir with
//! `BENCH_OUT_DIR`).

use std::time::Instant;

use synoptic::eval::json::JsonValue;
use synoptic::hist::HistogramMethod;
use synoptic::stream::{MaintainedPool, RebuildConfig, RebuildPolicy};

const N: usize = 1024;
/// 64 SAP0 buckets globally — also the one-bucket-per-segment floor at
/// the largest segment count below.
const BUDGET_WORDS: usize = 64 * 3;
const SEGMENT_COUNTS: [usize; 4] = [1, 4, 16, 64];
const TRIALS: usize = 3;

fn values() -> Vec<i64> {
    (0..N as i64)
        .map(|i| (i * i * 31 + 7 * i) % 997 - 300)
        .collect()
}

/// One timed rebuild (request + quiesce), in fractional milliseconds.
fn timed_rebuild(col: &synoptic::stream::ColumnHandle) -> f64 {
    let started = Instant::now();
    col.request_rebuild().unwrap();
    col.quiesce();
    started.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let vals = values();
    let mut rows = Vec::new();
    let mut monolithic_full = f64::NAN;
    for segments in SEGMENT_COUNTS {
        let pool = MaintainedPool::new(1);
        let col = pool
            .add_column_segmented(
                "bench",
                &vals,
                HistogramMethod::Sap0,
                BUDGET_WORDS,
                segments,
                RebuildConfig::new(RebuildPolicy::Manual),
            )
            .unwrap();
        let mut full = f64::INFINITY;
        let mut dirty = f64::INFINITY;
        for _ in 0..TRIALS {
            // All segments clean → the manual rebuild refreshes everything.
            full = full.min(timed_rebuild(&col));
            // One update dirties exactly one segment.
            col.update(N / 2, 1).unwrap();
            dirty = dirty.min(timed_rebuild(&col));
        }
        let stats = col.stats();
        assert_eq!(
            stats.segments_rebuilt as usize,
            TRIALS * (segments + 1),
            "each trial must rebuild all {segments} segments once and 1 dirty segment once"
        );
        if segments == 1 {
            monolithic_full = full;
        }
        let speedup = monolithic_full / dirty;
        println!(
            "segments {segments:>3}: full {full:>9.3} ms, one-dirty {dirty:>9.3} ms, \
             {speedup:>7.1}x vs monolithic rebuild"
        );
        rows.push(JsonValue::obj([
            ("segments", JsonValue::Int(segments as i128)),
            ("full_rebuild_ms", JsonValue::Num(full)),
            ("dirty_rebuild_ms", JsonValue::Num(dirty)),
            ("speedup_vs_monolithic", JsonValue::Num(speedup)),
        ]));
        pool.shutdown();
    }
    let report = JsonValue::obj([
        ("bench", JsonValue::Str("segments".to_string())),
        ("n", JsonValue::Int(N as i128)),
        ("budget_words", JsonValue::Int(BUDGET_WORDS as i128)),
        ("method", JsonValue::Str("sap0".to_string())),
        ("trials", JsonValue::Int(TRIALS as i128)),
        ("configs", JsonValue::Arr(rows)),
    ]);
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&out_dir).unwrap();
    let path = std::path::Path::new(&out_dir).join("BENCH_segments.json");
    std::fs::write(&path, report.to_string_pretty()).unwrap();
    println!("wrote {}", path.display());
}
