//! Replication throughput and follower-lag benchmark — the offline
//! emitter behind `results/BENCH_replication.json`.
//!
//! Two curves, both over an in-memory transport so the numbers measure
//! the replication machinery (encode → validate → journal → apply →
//! publish), not a network stack:
//!
//! * **ship+replay throughput** — a pre-built journal of sealed segments
//!   is shipped to a fresh follower in one converging ship; the rate is
//!   records through the full pipeline per second.
//! * **lag under sustained ingest** — the leader appends and ships in
//!   rounds while sampling the follower's replication lag after each
//!   round, reporting the worst and mean observed lag and asserting the
//!   stream ends fully converged.
//!
//! Run with: `cargo run --release --example replication_bench`
//! Writes `results/BENCH_replication.json` (override dir with
//! `BENCH_OUT_DIR`).

use std::sync::Arc;
use std::time::Instant;

use synoptic::catalog::wal::{ColumnWal, FsyncCadence, WalConfig};
use synoptic::catalog::{Catalog, ColumnEntry, DurableCatalog, FsStorage, PersistentSynopsis};
use synoptic::eval::json::JsonValue;
use synoptic::repl::{MemTransport, Shipper};
use synoptic::stream::{FollowConfig, Follower, SharedStorage};

const COLUMN: &str = "c";
const N: usize = 1024;
const RECORDS: usize = 20_000;
const SEGMENT_BYTES: usize = 4096; // ~127 records per segment
const ROUNDS: usize = 40;
const BATCH: usize = 250;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("synoptic-bench-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn initial_values() -> Vec<i64> {
    (0..N as i64).map(|i| 100 + (i * 13) % 57).collect()
}

fn commit_initial(cat_dir: &std::path::Path) -> u64 {
    let values = initial_values();
    let store = DurableCatalog::open(cat_dir, FsStorage::new()).unwrap();
    let mut cat = Catalog::new();
    cat.insert(
        COLUMN,
        ColumnEntry {
            n: values.len(),
            total_rows: values.iter().sum(),
            synopsis: PersistentSynopsis::from_frequencies(&values),
        },
    );
    store.save(&cat).unwrap()
}

fn open_leader_wal(root: &std::path::Path, generation: u64) -> ColumnWal<FsStorage> {
    ColumnWal::open(
        FsStorage::new(),
        root.join("leader-wal"),
        COLUMN,
        generation,
        WalConfig {
            segment_bytes: SEGMENT_BYTES,
            fsync: FsyncCadence::OnRotate,
            ..WalConfig::default()
        },
    )
    .unwrap()
}

fn open_follower(root: &std::path::Path) -> Follower {
    commit_initial(&root.join("follower-cat"));
    let storage: SharedStorage = Arc::new(FsStorage::new());
    let (follower, _) = Follower::open(
        storage,
        root.join("follower-cat"),
        root.join("follower-wal"),
        FollowConfig::default(),
    )
    .unwrap();
    follower
}

/// Deterministic update stream.
fn updates(len: usize) -> impl Iterator<Item = (u64, i64)> {
    let mut s = 0xB5EC_u64;
    (0..len).map(move |_| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        ((s % N as u64), ((s >> 32) % 17) as i64 - 8)
    })
}

/// One converging ship of a fully built journal into a fresh follower.
fn bench_ship_replay() -> JsonValue {
    let root = tempdir("throughput");
    let generation = commit_initial(&root.join("leader-cat"));
    let wal = open_leader_wal(&root, generation);
    for (i, d) in updates(RECORDS) {
        wal.append(i, d).unwrap();
    }
    wal.seal().unwrap();
    let mark = wal.pending_mark();

    let mut follower = open_follower(&root);
    let (mut leader_end, mut follower_end) = MemTransport::pair();
    let serve = std::thread::spawn(move || {
        follower.serve(&mut follower_end).unwrap();
        follower
    });
    let shipper = Shipper::new(FsStorage::new(), root.join("leader-wal"), COLUMN);

    let start = Instant::now();
    let report = shipper.ship(&mut leader_end, mark).unwrap();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(report.acked_lsn, mark, "throughput run must converge");

    use synoptic::repl::Transport;
    leader_end.close();
    let follower = serve.join().unwrap();
    assert_eq!(follower.applied_lsn(COLUMN), Some(mark));
    let _ = std::fs::remove_dir_all(&root);

    println!(
        "ship+replay: {RECORDS} records in {} segment(s), {secs:.3}s ({:.0} records/s)",
        report.shipped,
        RECORDS as f64 / secs
    );
    JsonValue::obj([
        ("records", JsonValue::Int(RECORDS as i128)),
        ("segments", JsonValue::Int(report.shipped as i128)),
        ("segment_bytes", JsonValue::Int(SEGMENT_BYTES as i128)),
        ("seconds", JsonValue::Num(secs)),
        ("records_per_sec", JsonValue::Num(RECORDS as f64 / secs)),
    ])
}

/// Leader ingest racing follower replay: lag sampled after every round.
fn bench_sustained_lag() -> JsonValue {
    let root = tempdir("lag");
    let generation = commit_initial(&root.join("leader-cat"));
    let wal = open_leader_wal(&root, generation);
    let mut follower = open_follower(&root);
    let (mut leader_end, mut follower_end) = MemTransport::pair();
    let serve = std::thread::spawn(move || {
        follower.serve(&mut follower_end).unwrap();
        follower
    });
    let shipper = Shipper::new(FsStorage::new(), root.join("leader-wal"), COLUMN);

    let mut feed = updates(ROUNDS * BATCH);
    let mut lags = Vec::with_capacity(ROUNDS);
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for _ in 0..BATCH {
            let (i, d) = feed.next().unwrap();
            wal.append(i, d).unwrap();
        }
        wal.seal().unwrap();
        let mark = wal.pending_mark();
        let report = shipper.ship(&mut leader_end, mark).unwrap();
        // Lag the leader observes at round end: its mark vs the ack.
        lags.push(mark.saturating_sub(report.acked_lsn) as f64);
    }
    let secs = start.elapsed().as_secs_f64();
    let final_mark = wal.pending_mark();

    use synoptic::repl::Transport;
    leader_end.close();
    let follower = serve.join().unwrap();
    assert_eq!(
        follower.applied_lsn(COLUMN),
        Some(final_mark),
        "sustained run must end converged"
    );
    let _ = std::fs::remove_dir_all(&root);

    let max_lag = lags.iter().cloned().fold(0.0_f64, f64::max);
    let mean_lag = lags.iter().sum::<f64>() / lags.len() as f64;
    println!(
        "sustained ingest: {} records over {ROUNDS} rounds in {secs:.3}s, \
         lag max {max_lag:.0} / mean {mean_lag:.1}, final lag {}",
        ROUNDS * BATCH,
        final_mark - follower.applied_lsn(COLUMN).unwrap()
    );
    JsonValue::obj([
        ("rounds", JsonValue::Int(ROUNDS as i128)),
        ("batch", JsonValue::Int(BATCH as i128)),
        ("seconds", JsonValue::Num(secs)),
        ("max_lag", JsonValue::Num(max_lag)),
        ("mean_lag", JsonValue::Num(mean_lag)),
        ("final_lag", JsonValue::Int(0)),
    ])
}

fn main() {
    let report = JsonValue::obj([
        ("bench", JsonValue::Str("replication".to_string())),
        ("n", JsonValue::Int(N as i128)),
        ("ship_replay", bench_ship_replay()),
        ("sustained_ingest", bench_sustained_lag()),
    ]);
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&out_dir).unwrap();
    let path = std::path::Path::new(&out_dir).join("BENCH_replication.json");
    std::fs::write(&path, report.to_string_pretty()).unwrap();
    println!("wrote {}", path.display());
}
