//! Quickstart: build the paper's main synopses over a small attribute-value
//! distribution, answer a few range queries, and compare exact SSE.
//!
//! Run with: `cargo run --release --example quickstart`

use synoptic::core::sse::sse_brute;
use synoptic::hist::opta::{build_opt_a, OptAConfig};
use synoptic::hist::reopt::reoptimize;
use synoptic::hist::sap0::build_sap0;
use synoptic::hist::sap1::build_sap1;
use synoptic::prelude::*;

fn main() -> Result<()> {
    // An attribute-value distribution: A[i] = #records with value i.
    // (Think: order quantities 0..=15 in a sales table.)
    let data = DataArray::new(vec![
        120, 85, 60, 44, 30, 22, 18, 14, 10, 8, 5, 4, 3, 2, 1, 1,
    ])?;
    let ps = data.prefix_sums();
    println!("n = {}, total records = {}", data.n(), ps.total());

    // Build three provably range-optimal histograms with ~8 words of budget.
    let opta = build_opt_a(&ps, &OptAConfig::exact(4, RoundingMode::None))?;
    let sap0 = build_sap0(&ps, 2)?; // 3 words per bucket
    let sap1 = build_sap1(&ps, 1)?; // 5 words per bucket
    let naive = NaiveEstimator::new(&ps);

    // …and the §5 re-optimization of the OPT-A boundaries.
    let reopt = reoptimize(opta.histogram.bucketing(), &ps, "OPT-A")?;

    // Answer a range query with each.
    let q = RangeQuery::new(3, 9)?;
    let truth = ps.answer(q) as f64;
    println!("\nquery: how many records have value in [3, 9]?  truth = {truth}");
    let estimators: Vec<(&str, &dyn RangeEstimator)> = vec![
        ("NAIVE", &naive),
        ("OPT-A", &opta.histogram),
        ("OPT-A-reopt", &reopt.histogram),
        ("SAP0", &sap0),
        ("SAP1", &sap1),
    ];
    for (name, est) in &estimators {
        println!(
            "  {name:<12} estimate = {:8.1}   ({} words)",
            est.estimate(q),
            est.storage_words()
        );
    }

    // The paper's quality metric: SSE over all n(n+1)/2 ranges.
    println!(
        "\nexact SSE over all {} ranges:",
        RangeQuery::count_all(data.n())
    );
    for (name, est) in &estimators {
        println!("  {name:<12} {:12.1}", sse_brute(est, &ps));
    }

    // The optimal DP's objective equals the measured SSE (the implementation
    // re-checks this internally).
    assert!((opta.dp_objective - opta.sse).abs() < 1e-6 * (1.0 + opta.sse));
    println!(
        "\nOPT-A DP objective matches its measured SSE: {:.1}",
        opta.sse
    );
    Ok(())
}
