//! Two-dimensional range aggregates — the higher-dimensional extension the
//! paper flags as future work (§1, footnote 2).
//!
//! A query like `COUNT(*) WHERE age BETWEEN a AND b AND income BETWEEN c
//! AND d` needs the *joint* distribution. This example builds 2-D synopses
//! over a synthetic age×income grid and compares them on the all-rectangles
//! SSE (the 2-D analog of the paper's objective).
//!
//! Run with: `cargo run --release --example joint_distribution`

use synoptic::prelude::Result;
use synoptic::twod::{
    sse2d_brute, GreedyTileHistogram, Grid2D, GridHistogram, RectEstimator, RectQuery, Wavelet2D,
};

/// A correlated age×income grid: income rises with age, with two clusters.
fn make_grid(n: usize) -> Grid2D {
    let mut g = Grid2D::zeros(n, n).expect("n > 0");
    let bump = |x: f64, y: f64, cx: f64, cy: f64, w: f64, peak: f64| -> f64 {
        peak * (-((x - cx).powi(2) + (y - cy).powi(2)) / (2.0 * w * w)).exp()
    };
    for x in 0..n {
        for y in 0..n {
            let (xf, yf) = (x as f64, y as f64);
            let v = bump(
                xf,
                yf,
                n as f64 * 0.3,
                n as f64 * 0.25,
                n as f64 / 8.0,
                90.0,
            ) + bump(xf, yf, n as f64 * 0.7, n as f64 * 0.7, n as f64 / 6.0, 60.0);
            *g.get_mut(x, y) = v.round() as i64;
        }
    }
    g
}

fn main() -> Result<()> {
    let n = 24;
    let g = make_grid(n);
    let ps = g.prefix_sums();
    println!(
        "joint age×income grid: {n}×{n}, {} rows, {} rectangle queries",
        ps.total(),
        RectQuery::count_all(n, n)
    );

    let tiles = 16;
    let grid_h = GridHistogram::build(&ps, 4, 4)?;
    let greedy_h = GreedyTileHistogram::build(&g, &ps, tiles)?;
    let wave = Wavelet2D::build(&g, tiles);

    println!("\n{:<12} {:>7} {:>14}", "method", "words", "all-rect SSE");
    let rows: Vec<(&str, usize, f64)> = vec![
        (
            grid_h.method_name(),
            grid_h.storage_words(),
            sse2d_brute(&grid_h, &ps),
        ),
        (
            greedy_h.method_name(),
            greedy_h.storage_words(),
            sse2d_brute(&greedy_h, &ps),
        ),
        (
            wave.method_name(),
            wave.storage_words(),
            sse2d_brute(&wave, &ps),
        ),
    ];
    for (name, words, sse) in &rows {
        println!("{name:<12} {words:>7} {sse:>14.4e}");
    }

    // A concrete drill-down: prime-age, mid-income block.
    let q = RectQuery::new(n / 4, n / 2, n / 4, n / 2)?;
    let truth = ps.answer(q) as f64;
    println!(
        "\npredicate age∈[{},{}] ∧ income∈[{},{}]: truth {truth:.0}",
        q.x0, q.x1, q.y0, q.y1
    );
    println!("  GRID-2D   → {:.0}", grid_h.estimate(q));
    println!("  MHIST-2D  → {:.0}", greedy_h.estimate(q));
    println!("  WAVELET-2D→ {:.0}", wave.estimate(q));
    println!(
        "\nAs in 1-D, data-adaptive partitioning (MHIST-2D) dominates the fixed\n\
         grid; the optimal-partitioning theory of the paper does not carry to\n\
         2-D (the paper defers it), so greedy splitting stands in."
    );
    Ok(())
}
