//! Serving-tier throughput and wire-latency benchmark — the offline
//! emitter behind `results/BENCH_serve.json`.
//!
//! A live [`synoptic::serve::Server`] binds a real TCP listener and a
//! [`synoptic::serve::Client`] drives a mixed workload over the wire:
//! update requests (batches of point deltas feeding the rebuild policy)
//! interleaved with estimate batches (each answered against a single
//! snapshot pin, half the ranges hot so the generation-keyed answer
//! cache earns its keep). Every request's round-trip is timed, so the
//! report carries true wire latency percentiles — encode → TCP → decode
//! → admission → pin → answer → respond — not just server-side work.
//!
//! The run sustains well over 10⁵ mixed ops/s (an op is one applied
//! delta or one answered range); the bench asserts that floor.
//!
//! Run with: `cargo run --release --example serve_bench`
//! Writes `results/BENCH_serve.json` (override dir with `BENCH_OUT_DIR`).

use std::net::TcpListener;
use std::time::Instant;

use synoptic::core::RangeQuery;
use synoptic::eval::json::JsonValue;
use synoptic::hist::HistogramMethod;
use synoptic::serve::{Client, ServeConfig, Server};
use synoptic::stream::{ColumnBuild, MaintainedPool, RebuildConfig, RebuildPolicy};

const COLUMN: &str = "price";
const N: usize = 4096;
const BUDGET_WORDS: usize = 32;
const ROUNDS: usize = 500;
const UPDATE_BATCH: usize = 64;
const QUERY_BATCH: usize = 256;
const HOT_RANGES: usize = 16;
const REBUILD_EVERY: u64 = 8192;

fn initial_values() -> Vec<i64> {
    (0..N as i64).map(|i| 100 + (i * 13) % 57).collect()
}

/// Deterministic xorshift stream for update positions and query bounds.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

fn main() {
    let values = initial_values();
    let pool = MaintainedPool::new(2);
    let col = pool
        .add_column(
            COLUMN,
            &values,
            ColumnBuild::Anytime {
                method: HistogramMethod::EquiDepth,
                budget_words: BUDGET_WORDS,
            },
            RebuildConfig::new(RebuildPolicy::EveryKUpdates(REBUILD_EVERY)),
        )
        .unwrap();
    let server = Server::new(ServeConfig::default());
    server.register(col);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server_thread = {
        let server = server.clone();
        std::thread::spawn(move || server.serve(listener).unwrap())
    };
    let client = Client::connect(&addr).unwrap();
    client.ping().unwrap();

    // The hot set: a small pool of repeated ranges so the answer cache
    // sees real reuse between hot-swaps.
    let mut rng = Rng(0x5E4E);
    let hot: Vec<RangeQuery> = (0..HOT_RANGES)
        .map(|_| {
            let lo = (rng.next() % (N as u64 / 2)) as usize;
            let hi = lo + (rng.next() % (N as u64 / 2)) as usize;
            RangeQuery::new(lo, hi.min(N - 1)).unwrap()
        })
        .collect();

    let mut update_lat_us: Vec<f64> = Vec::with_capacity(ROUNDS);
    let mut query_lat_us: Vec<f64> = Vec::with_capacity(ROUNDS);
    let mut ops: u64 = 0;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        let deltas: Vec<(u64, i64)> = (0..UPDATE_BATCH)
            .map(|_| (rng.next() % N as u64, (rng.next() % 17) as i64 - 8))
            .collect();
        let t = Instant::now();
        let (applied, _) = client.update(COLUMN, deltas).unwrap();
        update_lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        ops += applied;

        let ranges: Vec<RangeQuery> = (0..QUERY_BATCH)
            .map(|k| {
                if k % 2 == 0 {
                    hot[(rng.next() % HOT_RANGES as u64) as usize]
                } else {
                    let lo = (rng.next() % N as u64) as usize;
                    let hi = lo + (rng.next() % 64) as usize;
                    RangeQuery::new(lo, hi.min(N - 1)).unwrap()
                }
            })
            .collect();
        let t = Instant::now();
        let answer = client.estimate_batch(COLUMN, ranges).unwrap();
        query_lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(answer.values.len(), QUERY_BATCH);
        ops += QUERY_BATCH as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = client.stats(COLUMN).unwrap();

    server.shutdown();
    server_thread.join().unwrap();
    drop(pool);

    let ops_per_sec = ops as f64 / secs;
    assert!(
        ops_per_sec >= 1e5,
        "serving tier must sustain >= 1e5 mixed ops/s, measured {ops_per_sec:.0}"
    );
    update_lat_us.sort_by(|a, b| a.total_cmp(b));
    query_lat_us.sort_by(|a, b| a.total_cmp(b));
    println!(
        "mixed workload: {ops} ops ({ROUNDS} rounds of {UPDATE_BATCH} deltas + \
         {QUERY_BATCH} ranges) in {secs:.3}s ({ops_per_sec:.0} ops/s)"
    );
    println!(
        "wire latency: query p50 {:.0}us p99 {:.0}us, update p50 {:.0}us p99 {:.0}us",
        percentile(&query_lat_us, 50.0),
        percentile(&query_lat_us, 99.0),
        percentile(&update_lat_us, 50.0),
        percentile(&update_lat_us, 99.0),
    );
    println!(
        "server: generation {} after {} rebuild(s), cache {} hit(s) / {} miss(es) / \
         {} invalidation(s)",
        stats.generation,
        stats.rebuilds,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_invalidations
    );

    let report = JsonValue::obj([
        ("bench", JsonValue::Str("serve".to_string())),
        ("n", JsonValue::Int(N as i128)),
        ("rounds", JsonValue::Int(ROUNDS as i128)),
        ("update_batch", JsonValue::Int(UPDATE_BATCH as i128)),
        ("query_batch", JsonValue::Int(QUERY_BATCH as i128)),
        ("ops", JsonValue::Int(ops as i128)),
        ("seconds", JsonValue::Num(secs)),
        ("ops_per_sec", JsonValue::Num(ops_per_sec)),
        (
            "query_p50_us",
            JsonValue::Num(percentile(&query_lat_us, 50.0)),
        ),
        (
            "query_p99_us",
            JsonValue::Num(percentile(&query_lat_us, 99.0)),
        ),
        (
            "update_p50_us",
            JsonValue::Num(percentile(&update_lat_us, 50.0)),
        ),
        (
            "update_p99_us",
            JsonValue::Num(percentile(&update_lat_us, 99.0)),
        ),
        ("generation", JsonValue::Int(stats.generation as i128)),
        ("rebuilds", JsonValue::Int(stats.rebuilds as i128)),
        ("cache_hits", JsonValue::Int(stats.cache_hits as i128)),
        ("cache_misses", JsonValue::Int(stats.cache_misses as i128)),
        (
            "cache_invalidations",
            JsonValue::Int(stats.cache_invalidations as i128),
        ),
    ]);
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&out_dir).unwrap();
    let path = std::path::Path::new(&out_dir).join("BENCH_serve.json");
    std::fs::write(&path, report.to_string_pretty()).unwrap();
    println!("wrote {}", path.display());
}
