//! Online query processing — the paper's third motivating scenario (§1):
//! "fast estimates are provided and they get refined over time at rates
//! controlled by the user".
//!
//! A user asks a heavy aggregate; the engine answers instantly from a
//! bounded synopsis and then streams refinements as it scans the range,
//! each with a *certified* interval that only tightens. This example prints
//! the refinement trace an online UI would render as a shrinking error bar.
//!
//! Run with: `cargo run --release --example online_refinement`

use synoptic::core::BoundedHistogram;
use synoptic::data::zipf::{paper_dataset, ZipfConfig};
use synoptic::hist::opta::{build_opt_a, OptAConfig};
use synoptic::prelude::*;
use synoptic::stream::ProgressiveQuery;

fn main() -> Result<()> {
    let data = paper_dataset(&ZipfConfig::default());
    let ps = data.prefix_sums();

    // A bounded synopsis over range-optimal OPT-A boundaries (12 buckets).
    let base = build_opt_a(&ps, &OptAConfig::exact(12, RoundingMode::None))?;
    let synopsis = BoundedHistogram::build(base.histogram.bucketing().clone(), data.values(), &ps)?;

    let q = RangeQuery::new(5, 95)?;
    let truth = ps.answer(q) as f64;
    println!(
        "SELECT COUNT(*) WHERE key BETWEEN {} AND {}   (truth: {truth:.0} of {} rows)\n",
        q.lo,
        q.hi,
        ps.total()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "scanned", "estimate", "lower", "upper", "±width/2"
    );

    let mut progressive = ProgressiveQuery::new(data.values(), &synopsis, q)?;
    let mut snap = progressive.answer();
    let mut prev_width = f64::INFINITY;
    loop {
        println!(
            "{:>7}% {:>12.1} {:>12.1} {:>12.1} {:>10.1}",
            100 * snap.scanned / q.len(),
            snap.estimate,
            snap.lo,
            snap.hi,
            (snap.hi - snap.lo) / 2.0
        );
        // Certified soundness and monotone tightening, live.
        assert!(snap.lo - 1e-9 <= truth && truth <= snap.hi + 1e-9);
        assert!(snap.hi - snap.lo <= prev_width + 1e-9);
        prev_width = snap.hi - snap.lo;
        if snap.is_final() {
            break;
        }
        snap = progressive.refine(13); // the user's refresh rate
    }
    println!(
        "\nfinal answer is exact: {:.0} (certified at every step)",
        snap.estimate
    );
    Ok(())
}
