//! Selectivity estimation for a cost-based query optimizer — the paper's
//! motivating scenario (§1).
//!
//! A query optimizer must choose between an index scan and a full table scan
//! for predicates like `WHERE price BETWEEN lo AND hi`. It keeps a small
//! histogram of the `price` column's value distribution and estimates the
//! predicate's *selectivity* (fraction of rows matched); if the estimate is
//! below a threshold, it picks the index scan.
//!
//! This example builds OPT-A and POINT-OPT synopses at the same budget and
//! counts how often each leads the optimizer to the right plan — making the
//! paper's point that optimizing the synopsis for *range* queries matters.
//!
//! Run with: `cargo run --release --example selectivity_estimation`

use synoptic::data::workload::random_ranges;
use synoptic::data::zipf::{paper_dataset, ZipfConfig};
use synoptic::hist::builder::{build, HistogramMethod};
use synoptic::prelude::*;

/// The optimizer prefers an index scan when the predicate selects less than
/// this fraction of the table.
const INDEX_SCAN_THRESHOLD: f64 = 0.10;

fn main() -> Result<()> {
    // A "price" column: 127 distinct values, Zipf-distributed frequencies
    // (a few bestsellers, a long tail), ~10k rows.
    let data = paper_dataset(&ZipfConfig::default());
    let ps = data.prefix_sums();
    let total = ps.total() as f64;
    println!(
        "table: {} rows over {} distinct price points",
        ps.total(),
        data.n()
    );

    // The optimizer's statistics budget: 32 words per column.
    let budget = 32;
    let methods = [
        HistogramMethod::EquiDepth,
        HistogramMethod::PointOpt,
        HistogramMethod::OptA,
        HistogramMethod::OptAReopt,
    ];

    // A workload of 2000 BETWEEN predicates.
    let queries = random_ranges(data.n(), 2000, 42);

    println!(
        "\n{:<12} {:>10} {:>12} {:>14}",
        "method", "words", "plan errors", "mean |sel err|"
    );
    for m in methods {
        let est = build(m, data.values(), &ps, budget)?;
        let mut plan_errors = 0usize;
        let mut abs_err_sum = 0.0;
        for &q in &queries {
            let truth = ps.answer(q) as f64 / total;
            let guess = (est.estimate(q) / total).clamp(0.0, 1.0);
            abs_err_sum += (truth - guess).abs();
            let right_plan = truth < INDEX_SCAN_THRESHOLD;
            let chosen_plan = guess < INDEX_SCAN_THRESHOLD;
            if right_plan != chosen_plan {
                plan_errors += 1;
            }
        }
        println!(
            "{:<12} {:>10} {:>12} {:>14.5}",
            m.name(),
            est.storage_words(),
            plan_errors,
            abs_err_sum / queries.len() as f64
        );
    }

    println!(
        "\nLower is better in both columns; the range-optimal histograms keep the\n\
         optimizer on the right plan more often at the same statistics budget."
    );
    Ok(())
}
