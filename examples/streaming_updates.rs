//! Keeping synopses fresh under a live update feed.
//!
//! An ingest pipeline applies point updates (`A[i] += δ`) while the
//! optimizer keeps answering from its synopsis. This example contrasts:
//!
//! * a **stale** histogram (built once, never refreshed),
//! * a **policy-maintained** histogram (rebuilt when drift exceeds 5% of
//!   the table), and
//! * the **streaming wavelet** transforms, whose coefficients are updated
//!   in O(log n) per change so a snapshot is always exactly up to date.
//!
//! Run with: `cargo run --release --example streaming_updates`

use synoptic::core::rng::Rng;
use synoptic::core::sse::sse_brute;
use synoptic::data::zipf::{paper_dataset, ZipfConfig};
use synoptic::prelude::*;
use synoptic::stream::{MaintainedHistogram, RebuildPolicy, StreamingRangeOptimal};

fn main() -> Result<()> {
    let data = paper_dataset(&ZipfConfig {
        n: 64,
        ..ZipfConfig::default()
    });
    let mut live = data.values().to_vec();
    println!("column: n = {}, initial rows = {}", data.n(), data.total());

    // Stale snapshot, built once.
    let stale = synoptic::hist::sap0::build_sap0(&data.prefix_sums(), 8)?;

    // Policy-maintained histogram: rebuild at 5% drift.
    let mut maintained = MaintainedHistogram::new(
        data.values(),
        |_vals: &[i64], ps: &PrefixSums, budget: &synoptic::core::Budget| {
            Ok(
                Box::new(synoptic::hist::sap0::build_sap0_with_budget(ps, 8, budget)?)
                    as Box<dyn RangeEstimator>,
            )
        },
        RebuildPolicy::DriftFraction(0.05),
    )?;

    // Streaming wavelet transforms (always exact coefficients).
    let mut streaming = StreamingRangeOptimal::new(data.values())?;

    // A bursty update feed: inserts concentrated on a hot region.
    let mut rng = Rng::new(99);
    let updates = 3000usize;
    for _ in 0..updates {
        let i = if rng.f64() < 0.7 {
            rng.usize_in(40, 56) // hot region
        } else {
            rng.usize_in(0, 64)
        };
        let delta = rng.i64_in(1, 3);
        live[i] += delta;
        maintained.update(i, delta)?;
        streaming.update(i, delta)?;
    }

    let ps_now = PrefixSums::from_values(&live);
    println!(
        "after {updates} inserts: rows = {}, rebuilds = {}",
        ps_now.total(),
        maintained.stats().rebuilds
    );

    let fresh = synoptic::hist::sap0::build_sap0(&ps_now, 8)?;
    let snap = streaming.snapshot(12);
    println!("\nall-ranges SSE against the *current* data:");
    println!(
        "  {:<26} {:>14.4e}",
        "stale SAP0 (never rebuilt)",
        sse_brute(&stale, &ps_now)
    );
    println!(
        "  {:<26} {:>14.4e}",
        "maintained SAP0 (5% drift)",
        sse_brute(&maintained.estimator(), &ps_now)
    );
    println!(
        "  {:<26} {:>14.4e}",
        "fresh SAP0 (rebuilt now)",
        sse_brute(&fresh, &ps_now)
    );
    println!(
        "  {:<26} {:>14.4e}",
        "streaming wavelet snapshot",
        sse_brute(&snap, &ps_now)
    );

    // The streaming snapshot must coincide with a from-scratch build.
    let scratch = synoptic::wavelet::RangeOptimalWavelet::build(&ps_now, 12);
    let (a, b) = (sse_brute(&snap, &ps_now), sse_brute(&scratch, &ps_now));
    assert!(
        (a - b).abs() <= 1e-9 * (1.0 + b),
        "streaming and from-scratch must agree: {a} vs {b}"
    );
    println!("\nstreaming snapshot ≡ from-scratch rebuild (checked).");
    Ok(())
}
