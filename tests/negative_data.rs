//! The paper assumes non-negative frequencies ("we assume the attribute
//! value is integral … all values of A are non-negative" in its bounds
//! arguments), but every construction here works for arbitrary `i64` data —
//! signed deltas arise naturally in difference/update workloads. These tests
//! pin that the optimality guarantees survive negative values.

use synoptic::core::sse::{sse_brute, sse_value_histogram};
use synoptic::hist::exhaustive::exhaustive_optimal;
use synoptic::hist::opta::{build_opt_a, OptAConfig};
use synoptic::hist::reopt::reoptimize;
use synoptic::hist::sap0::build_sap0_with_sse;
use synoptic::hist::sap1::build_sap1_with_sse;
use synoptic::prelude::*;

fn signed_datasets() -> Vec<Vec<i64>> {
    vec![
        vec![-5, 3, -1, 7, -9, 2, 0, -4],
        vec![-100, -100, -100, 50, 50, 50],
        vec![0, -1, 1, -2, 2, -3, 3, -4, 4],
        vec![-7; 6],
    ]
}

#[test]
fn opt_a_unrounded_remains_globally_optimal_on_signed_data() {
    for vals in signed_datasets() {
        let ps = PrefixSums::from_values(&vals);
        let n = vals.len();
        for b in 1..=3.min(n) {
            let dp = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
            let (_, best) = exhaustive_optimal(n, b, |bk| {
                let h = ValueHistogram::with_averages(bk.clone(), &ps, "c").unwrap();
                sse_value_histogram(h.xprefix(), &ps)
            })
            .unwrap();
            assert!(
                dp.sse <= best + 1e-6 * (1.0 + best),
                "vals={vals:?} b={b}: {} vs {best}",
                dp.sse
            );
            assert!(
                (dp.dp_objective - dp.sse).abs() <= 1e-6 * (1.0 + dp.sse),
                "objective drift on signed data"
            );
        }
    }
}

#[test]
fn opt_a_rounded_mode_handles_signed_data() {
    for vals in signed_datasets() {
        let ps = PrefixSums::from_values(&vals);
        let r = build_opt_a(&ps, &OptAConfig::exact(2, RoundingMode::NearestInt)).unwrap();
        let brute = sse_brute(&r.histogram, &ps);
        assert!(
            (r.sse - brute).abs() <= 1e-6 * (1.0 + brute),
            "vals={vals:?}"
        );
        // Estimates stay integral even for negative sums.
        for q in RangeQuery::all(vals.len()) {
            let e = r.histogram.estimate(q);
            assert_eq!(e, e.round(), "{q:?}");
        }
    }
}

#[test]
fn sap_dps_remain_exact_on_signed_data() {
    for vals in signed_datasets() {
        let ps = PrefixSums::from_values(&vals);
        for b in 1..=3.min(vals.len()) {
            let (h0, obj0) = build_sap0_with_sse(&ps, b).unwrap();
            let brute0 = sse_brute(&h0, &ps);
            assert!(
                (obj0 - brute0).abs() <= 1e-6 * (1.0 + brute0),
                "SAP0 vals={vals:?} b={b}: {obj0} vs {brute0}"
            );
            let (h1, obj1) = build_sap1_with_sse(&ps, b).unwrap();
            let brute1 = sse_brute(&h1, &ps);
            assert!(
                (obj1 - brute1).abs() <= 1e-6 * (1.0 + brute1),
                "SAP1 vals={vals:?} b={b}"
            );
        }
    }
}

#[test]
fn reopt_still_never_hurts_on_signed_data() {
    for vals in signed_datasets() {
        let ps = PrefixSums::from_values(&vals);
        let b = 2.min(vals.len());
        let base = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
        let re = reoptimize(base.histogram.bucketing(), &ps, "O").unwrap();
        assert!(
            re.sse <= base.sse + 1e-6 * (1.0 + base.sse),
            "vals={vals:?}: {} vs {}",
            re.sse,
            base.sse
        );
    }
}

#[test]
fn wavelets_handle_signed_data() {
    use synoptic::wavelet::{PointWaveletSynopsis, RangeOptimalWavelet};
    for vals in signed_datasets() {
        let ps = PrefixSums::from_values(&vals);
        let nn = vals.len().next_power_of_two();
        let w = PointWaveletSynopsis::build(&vals, nn);
        assert!(sse_brute(&w, &ps) < 1e-6, "full point budget exact");
        let nn2 = (vals.len() + 1).next_power_of_two();
        let w = RangeOptimalWavelet::build(&ps, 2 * nn2 - 1);
        assert!(sse_brute(&w, &ps) < 1e-5, "full range budget exact");
    }
}

#[test]
fn streaming_handles_signed_updates_to_negative_territory() {
    use synoptic::stream::StreamingRangeOptimal;
    use synoptic::wavelet::RangeOptimalWavelet;
    let mut vals = vec![5i64, 5, 5, 5, 5, 5, 5, 5];
    let mut sr = StreamingRangeOptimal::new(&vals).unwrap();
    for (i, slot) in vals.iter_mut().enumerate() {
        let d = -((i as i64) + 3); // push several cells negative
        *slot += d;
        sr.update(i, d).unwrap();
    }
    assert!(vals.iter().any(|&v| v < 0));
    let ps = PrefixSums::from_values(&vals);
    let live = sr.snapshot(6);
    let scratch = RangeOptimalWavelet::build(&ps, 6);
    for q in RangeQuery::all(8) {
        assert!(
            (live.estimate(q) - scratch.estimate(q)).abs() < 1e-6,
            "{q:?}"
        );
    }
}
