//! Integration tests that pin the paper's concrete artifacts: the worked
//! example of §2.1.1, the storage theorems, and the headline experimental
//! shapes on the full 127-key dataset.
//!
//! These are the tests a referee would run: they encode what the paper
//! *states*, not what the code happens to do.

use synoptic::core::sse::sse_brute;
use synoptic::data::zipf::{paper_dataset, zipf_frequencies, ZipfConfig};
use synoptic::eval::methods::{exact_sse, MethodSpec};
use synoptic::prelude::*;

/// Paper §2.1.1 worked example: A = (1,3,5,11), two equal buckets with
/// averages 2 and 8 give Λ = 4 and Λ₂ = 10.
#[test]
fn section_2_1_worked_example() {
    let ps = PrefixSums::from_values(&[1, 3, 5, 11]);
    let b = Bucketing::new(4, vec![0, 2]).unwrap();
    let h = OptAHistogram::new(b.clone(), &ps, RoundingMode::NearestInt).unwrap();
    assert_eq!(h.avg(0), 2.0);
    assert_eq!(h.avg(1), 8.0);
    let (mut lambda, mut lambda2) = (0.0f64, 0.0f64);
    for t in 0..4 {
        let r = b.right(b.bucket_of(t));
        let u = ps.range_sum(t, r) as f64 - h.suffix_piece(b.bucket_of(t), t);
        lambda += u;
        lambda2 += u * u;
    }
    assert_eq!(lambda, 4.0, "paper's Λ");
    assert_eq!(lambda2, 10.0, "paper's Λ₂");
}

/// Storage theorems: OPT-A/A0 2B words (Thm 4.2/10), SAP0 3B (Thm 7),
/// SAP1 5B (Thm 8).
#[test]
fn storage_theorems() {
    let d = paper_dataset(&ZipfConfig {
        n: 40,
        ..ZipfConfig::default()
    });
    let ps = d.prefix_sums();
    let b = 4;
    let opta = synoptic::hist::opta::build_opt_a(
        &ps,
        &synoptic::hist::opta::OptAConfig::exact(b, RoundingMode::None),
    )
    .unwrap();
    assert_eq!(opta.histogram.storage_words(), 2 * b);
    let a0 = synoptic::hist::a0::build_a0(&ps, b).unwrap();
    assert_eq!(a0.storage_words(), 2 * a0.bucketing().num_buckets());
    let s0 = synoptic::hist::sap0::build_sap0(&ps, b).unwrap();
    assert_eq!(s0.storage_words(), 3 * s0.bucketing().num_buckets());
    let s1 = synoptic::hist::sap1::build_sap1(&ps, b).unwrap();
    assert_eq!(s1.storage_words(), 5 * s1.bucketing().num_buckets());
}

/// SAP1 storage-vs-quality trade (paper end of §2.2.2): at the *same bucket
/// count* SAP1 is never worse than OPT-A; at the same *storage* OPT-A wins
/// on this dataset ("using more buckets is better than incorporating more
/// complex statistics within each bucket").
#[test]
fn sap1_bucket_vs_storage_tradeoff() {
    let d = paper_dataset(&ZipfConfig {
        n: 64,
        ..ZipfConfig::default()
    });
    let ps = d.prefix_sums();
    let b = 6;
    let opta = synoptic::hist::opta::build_opt_a(
        &ps,
        &synoptic::hist::opta::OptAConfig::exact(b, RoundingMode::None),
    )
    .unwrap();
    let sap1 = synoptic::hist::sap1::build_sap1_with_sse(&ps, b).unwrap();
    // Same bucket count: SAP1 ≥ free parameters ⇒ SSE ≤ OPT-A's.
    assert!(
        sap1.1 <= opta.sse * (1.0 + 1e-9) + 1e-9,
        "SAP1@B={b} ({}) vs OPT-A@B={b} ({})",
        sap1.1,
        opta.sse
    );
    // Same storage (5B words → OPT-A gets 2.5× buckets): OPT-A wins here.
    let opta_words = synoptic::hist::opta::build_opt_a(
        &ps,
        &synoptic::hist::opta::OptAConfig::exact(5 * b / 2, RoundingMode::None),
    )
    .unwrap();
    assert!(
        opta_words.sse <= sap1.1,
        "equal-storage OPT-A ({}) should beat SAP1 ({})",
        opta_words.sse,
        sap1.1
    );
}

/// The four §4 claims on the full paper-scale dataset (shape, not absolute
/// numbers): ratios in the right directions.
#[test]
fn headline_claims_on_paper_dataset() {
    let d = paper_dataset(&ZipfConfig::default());
    let ps = d.prefix_sums();
    assert_eq!(d.n(), 127);
    let budget = 32;
    let sse = |m: MethodSpec| {
        exact_sse(
            m.build_at_budget(d.values(), &ps, budget).unwrap().as_ref(),
            &ps,
        )
    };
    let (naive, point, opta, sap0, sap1, a0) = (
        sse(MethodSpec::Naive),
        sse(MethodSpec::PointOpt),
        sse(MethodSpec::OptA),
        sse(MethodSpec::Sap0),
        sse(MethodSpec::Sap1),
        sse(MethodSpec::A0),
    );
    // T1 direction: POINT-OPT multiple times worse than OPT-A.
    assert!(point / opta >= 2.0, "T1: {point} vs {opta}");
    // T2 direction: OPT-A at least 2× better than SAP1 at equal storage.
    assert!(sap1 / opta >= 2.0, "T2: {sap1} vs {opta}");
    // T3: SAP0 worst of the range-aware histograms.
    assert!(sap0 > opta && sap0 > a0 && sap0 > sap1, "T3");
    // NAIVE is the upper anchor.
    assert!(naive > 10.0 * point, "NAIVE anchors the top of the figure");
    // A0 lands close to OPT-A ("heuristics … perform very well"). How
    // close is sensitive to the dataset's random ±½ rounding realization:
    // across seeds the ratio ranges from ~1.00 to ~1.5, and the canonical
    // seed measures ~1.13, so assert the qualitative claim — A0 within 15%
    // of the optimum and far below the non-range-aware methods (T3 above
    // already pins A0 under SAP0).
    assert!(a0 <= opta * 1.15, "A0 ({a0}) close to OPT-A ({opta})");
}

/// T4 on the paper dataset: reopt gain is substantial (paper: up to 41%).
#[test]
fn reopt_gain_is_substantial_on_paper_dataset() {
    let d = paper_dataset(&ZipfConfig::default());
    let ps = d.prefix_sums();
    let mut best_gain = 0.0f64;
    for b in [4usize, 8, 16, 24] {
        let base = synoptic::hist::opta::build_opt_a(
            &ps,
            &synoptic::hist::opta::OptAConfig::exact(b, RoundingMode::None),
        )
        .unwrap();
        let re = synoptic::hist::reopt::reoptimize(base.histogram.bucketing(), &ps, "O").unwrap();
        best_gain = best_gain.max(1.0 - re.sse / base.sse);
    }
    assert!(
        best_gain > 0.10,
        "expected a double-digit reopt gain somewhere, got {:.1}%",
        best_gain * 100.0
    );
}

/// Dataset recipe checks: 127 keys, Zipf(1.8) shape, rounding moved each
/// frequency by at most 1.
#[test]
fn dataset_recipe_matches_paper() {
    let cfg = ZipfConfig::default();
    let d = paper_dataset(&cfg);
    assert_eq!(d.n(), 127);
    assert!(d.is_non_negative());
    let floats = zipf_frequencies(127, 1.8, cfg.total_mass);
    assert!((floats[0] / floats[1] - 2f64.powf(1.8)).abs() < 1e-9);
    for (f, &v) in floats.iter().zip(d.values()) {
        assert!((v as f64 - f).abs() <= 1.0);
    }
}

/// The wavelet series sits well above the optimized histograms (the paper:
/// "qualitatively worse than histogram-methods"), yet far below NAIVE.
#[test]
fn wavelets_are_qualitatively_worse_than_histograms() {
    let d = paper_dataset(&ZipfConfig::default());
    let ps = d.prefix_sums();
    let budget = 32;
    let sse = |m: MethodSpec| {
        exact_sse(
            m.build_at_budget(d.values(), &ps, budget).unwrap().as_ref(),
            &ps,
        )
    };
    let topbb = sse(MethodSpec::WaveletRange);
    let opta = sse(MethodSpec::OptA);
    let naive = sse(MethodSpec::Naive);
    assert!(topbb > 10.0 * opta, "TOPBB {topbb} vs OPT-A {opta}");
    assert!(topbb < naive, "TOPBB still beats NAIVE");
}

/// Rounded-mode OPT-A on the paper dataset: DP objective equals measured
/// SSE, and the histogram's integral answers are within one unit of the
/// unrounded ones.
#[test]
fn integral_answering_on_paper_dataset() {
    let d = paper_dataset(&ZipfConfig::default());
    let ps = d.prefix_sums();
    let r = synoptic::hist::opta::build_opt_a(
        &ps,
        &synoptic::hist::opta::OptAConfig::exact(8, RoundingMode::NearestInt),
    )
    .unwrap();
    assert!((r.dp_objective - r.sse).abs() <= 1e-6 * (1.0 + r.sse));
    assert!(!r.stats.approximate);
    let brute = sse_brute(&r.histogram, &ps);
    assert!((brute - r.sse).abs() <= 1e-6 * (1.0 + r.sse));
}
