//! Integration tests for the extension subsystems (stream, catalog, twod,
//! workload optimization, sampling) working together with the core paper
//! algorithms.

use synoptic::catalog::{
    allocate_budget, Catalog, ColumnCurve, ColumnEntry, DurableCatalog, PersistentSynopsis,
};
use synoptic::core::sse::{sse_brute, sse_workload};
use synoptic::data::sample::SampleEstimator;
use synoptic::data::workload::{dyadic_ranges, prefix_queries};
use synoptic::data::zipf::{paper_dataset, ZipfConfig};
use synoptic::hist::sap0::build_sap0;
use synoptic::hist::workload_opt::{optimize_for_workload, reoptimize_for_workload};
use synoptic::prelude::*;
use synoptic::stream::{MaintainedHistogram, RebuildPolicy, StreamingRangeOptimal};

fn dataset(n: usize) -> (DataArray, PrefixSums) {
    let d = paper_dataset(&ZipfConfig {
        n,
        ..ZipfConfig::default()
    });
    let ps = d.prefix_sums();
    (d, ps)
}

#[test]
fn updated_column_flows_into_a_persisted_catalog() {
    // Ingest updates via the maintained histogram, then persist the fresh
    // synopsis in a catalog and answer from a reload.
    let (d, _) = dataset(48);
    let mut m = MaintainedHistogram::new(
        d.values(),
        |_v: &[i64], ps: &PrefixSums, budget: &synoptic::core::Budget| {
            Ok(
                Box::new(synoptic::hist::sap0::build_sap0_with_budget(ps, 5, budget)?)
                    as Box<dyn RangeEstimator>,
            )
        },
        RebuildPolicy::EveryKUpdates(10),
    )
    .unwrap();
    for t in 0..40 {
        m.update(t % 48, 3).unwrap();
    }
    assert_eq!(m.stats().rebuilds, 4);

    // Persist the current estimator via SAP0 capture (rebuild to a concrete
    // type for persistence).
    let live: Vec<i64> = (0..48)
        .map(|i| m.exact(RangeQuery::point(i)) as i64)
        .collect();
    let ps_live = PrefixSums::from_values(&live);
    let h = build_sap0(&ps_live, 5).unwrap();
    let mut cat = Catalog::new();
    cat.insert(
        "col",
        ColumnEntry {
            n: 48,
            total_rows: ps_live.total() as i64,
            synopsis: PersistentSynopsis::from_sap0(&h),
        },
    );
    // Persist through the durable binary store and answer from a reload.
    let dir = std::env::temp_dir().join(format!("synoptic_ext_cat_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DurableCatalog::open(&dir, synoptic::catalog::FsStorage::new()).unwrap();
    store.save(&cat).unwrap();
    let back = store.load().unwrap();
    // Round-trip fidelity: the reloaded synopsis answers every query as the
    // original histogram did (SAP0's inter-bucket answers use suffix/prefix
    // *means*, so they are close to—but not exactly—the truth by design).
    for q in RangeQuery::all(48) {
        let est = back.estimate("col", q).unwrap();
        assert!(
            (est - h.estimate(q)).abs() <= 1e-9 * (1.0 + h.estimate(q).abs()),
            "{q:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_snapshot_round_trips_through_persistence() {
    let (d, _) = dataset(32);
    let mut sr = StreamingRangeOptimal::new(d.values()).unwrap();
    for i in 0..32 {
        sr.update(i, (i % 5) as i64).unwrap();
    }
    let snap = sr.snapshot(8);
    let p = PersistentSynopsis::from_wavelet_range(&snap);
    let loaded = p.load().unwrap();
    for q in RangeQuery::all(32) {
        assert!((snap.estimate(q) - loaded.estimate(q)).abs() < 1e-9);
    }
}

#[test]
fn workload_tuning_beats_generic_on_restricted_classes() {
    let (d, ps) = dataset(64);
    let _ = d;
    let b = Bucketing::equi_width(64, 8).unwrap();
    for (label, workload) in [
        ("prefix", prefix_queries(64)),
        ("dyadic", dyadic_ranges(64)),
    ] {
        let tuned = reoptimize_for_workload(&b, &ps, &workload, label).unwrap();
        let generic = synoptic::hist::reopt::reoptimize(&b, &ps, "all").unwrap();
        let t = sse_workload(&tuned, &ps, &workload);
        let g = sse_workload(&generic.histogram, &ps, &workload);
        assert!(t <= g + 1e-6, "{label}: tuned {t} vs generic {g}");
    }
}

#[test]
fn full_workload_pipeline_with_boundary_search() {
    let (_, ps) = dataset(48);
    let workload = dyadic_ranges(48);
    let seed = Bucketing::equi_width(48, 6).unwrap();
    let r = optimize_for_workload(seed, &ps, &workload, 30, "DY").unwrap();
    assert!(r.sse <= r.seed_sse + 1e-6);
    assert!(r.sse.is_finite());
}

#[test]
fn sampling_baseline_loses_to_opt_a_at_equal_words_on_skewed_data() {
    let (d, ps) = dataset(127);
    let words = 32;
    let sample = SampleEstimator::build(&d, &ps, words, 5).unwrap();
    let opta = synoptic::hist::opta::build_opt_a(
        &ps,
        &synoptic::hist::opta::OptAConfig::exact(words / 2, RoundingMode::None),
    )
    .unwrap();
    let s_sse = sse_brute(&sample, &ps);
    let o_sse = opta.sse;
    assert!(
        o_sse < s_sse,
        "OPT-A ({o_sse}) should beat a {words}-row sample ({s_sse}) on Zipf data"
    );
}

#[test]
fn budget_allocation_end_to_end_over_real_curves() {
    // Two columns, real SAP0 curves, exact DP allocation; the allocation
    // must dominate the naive even split at the same total budget.
    let (a, pa) = dataset(48);
    let noise = synoptic::data::generators::uniform(48, 0, 5, 3);
    let pn = noise.prefix_sums();
    let _ = a;
    let grid = [3usize, 6, 9, 12, 18, 24];
    let curve = |name: &str, ps: &PrefixSums, weight: f64| ColumnCurve {
        name: name.into(),
        weight,
        points: grid
            .iter()
            .map(|&w| {
                let h = build_sap0(ps, (w / 3).max(1)).unwrap();
                (w, sse_brute(&h, ps))
            })
            .collect(),
    };
    let curves = vec![curve("zipf", &pa, 1.0), curve("noise", &pn, 1.0)];
    let total = 24;
    let alloc = allocate_budget(&curves, total).unwrap();
    assert!(alloc.total_words <= total);
    // Even split: 12 words each.
    let even: f64 = curves
        .iter()
        .map(|c| {
            c.points
                .iter()
                .filter(|&&(w, _)| w <= total / 2)
                .map(|&(_, s)| s)
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    assert!(
        alloc.total_weighted_sse <= even + 1e-6,
        "DP ({}) must not lose to the even split ({even})",
        alloc.total_weighted_sse
    );
    // The skewed column deserves at least as many words as the noise one.
    let words_of = |name: &str| {
        alloc
            .choices
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, w, _)| w)
            .unwrap()
    };
    assert!(
        words_of("zipf") >= words_of("noise"),
        "allocation: {:?}",
        alloc.choices
    );
}

#[test]
fn two_d_methods_agree_with_one_d_on_a_single_row() {
    // A 1×n grid degenerates to the 1-D problem: the 2-D grid histogram
    // with 1×g tiles must match the 1-D equi-width histogram.
    use synoptic::twod::{Grid2D, GridHistogram, RectEstimator, RectQuery};
    let (d, ps) = dataset(16);
    let g2 = Grid2D::new(1, 16, d.values().to_vec()).unwrap();
    let ps2 = g2.prefix_sums();
    let h2 = GridHistogram::build(&ps2, 1, 4).unwrap();
    let h1 = synoptic::hist::heuristics::build_equi_width(&ps, 4).unwrap();
    for lo in 0..16 {
        for hi in lo..16 {
            let q1 = RangeQuery { lo, hi };
            let q2 = RectQuery::new(0, 0, lo, hi).unwrap();
            assert!(
                (h1.estimate(q1) - h2.estimate(q2)).abs() < 1e-9,
                "({lo},{hi})"
            );
        }
    }
}
