//! Larger-scale stress tests. The expensive ones are `#[ignore]`d so the
//! default suite stays fast; run them with `cargo test --release -- --ignored`.

use synoptic::core::sse::sse_value_histogram;
use synoptic::data::zipf::{paper_dataset, ZipfConfig};
use synoptic::hist::opta::{build_opt_a, OptAConfig};
use synoptic::hist::sap0::build_sap0_with_sse;
use synoptic::prelude::*;

fn big(n: usize) -> (DataArray, PrefixSums) {
    let d = paper_dataset(&ZipfConfig {
        n,
        total_mass: 100_000.0,
        ..ZipfConfig::default()
    });
    let ps = d.prefix_sums();
    (d, ps)
}

/// The default-suite smoke check at a beyond-paper size: exact OPT-A on
/// n = 512, verified self-consistent.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with --release"
)]
fn opt_a_exact_at_n_512() {
    let (_, ps) = big(512);
    let r = build_opt_a(&ps, &OptAConfig::exact(16, RoundingMode::None)).unwrap();
    assert!((r.dp_objective - r.sse).abs() <= 1e-6 * (1.0 + r.sse));
    assert!(!r.stats.approximate);
    // Sanity anchors.
    let vh = ValueHistogram::with_averages(r.histogram.bucketing().clone(), &ps, "x").unwrap();
    assert!((sse_value_histogram(vh.xprefix(), &ps) - r.sse).abs() <= 1e-6 * (1.0 + r.sse));
}

/// SAP0 at n = 2048 (its O(n²B) DP is the practical workhorse).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with --release"
)]
fn sap0_at_n_2048() {
    let (_, ps) = big(2048);
    let (h, obj) = build_sap0_with_sse(&ps, 32).unwrap();
    assert!(obj.is_finite() && obj >= 0.0);
    assert_eq!(h.bucketing().n(), 2048);
    // Decomposed evaluation agrees with the DP objective (the brute force
    // would be 2M queries; the bucket-additive objective *is* the SSE for
    // SAP0 — checked exhaustively at small n elsewhere).
}

/// Exact OPT-A at n = 1024 (≈ 8× the paper's scale) — a couple of minutes
/// budgeted; run explicitly.
#[test]
#[ignore = "multi-minute exact DP; run with -- --ignored"]
fn opt_a_exact_at_n_1024() {
    let (_, ps) = big(1024);
    let r = build_opt_a(&ps, &OptAConfig::exact(32, RoundingMode::None)).unwrap();
    assert!((r.dp_objective - r.sse).abs() <= 1e-6 * (1.0 + r.sse));
    eprintln!(
        "n=1024 B=32: sse={:.4e} states={} max_hull={} time={:.1}s",
        r.sse, r.stats.states_kept, r.stats.max_hull_size, r.stats.seconds
    );
}

/// Streaming maintenance under a long update script at n = 4096.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with --release"
)]
fn streaming_long_run_at_n_4096() {
    use synoptic::stream::StreamingRangeOptimal;
    use synoptic::wavelet::RangeOptimalWavelet;
    let (d, _) = big(4096);
    let mut vals = d.values().to_vec();
    let mut sr = StreamingRangeOptimal::new(&vals).unwrap();
    let mut s = 0xC0FFEEu64;
    for _ in 0..20_000 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let i = (s >> 33) as usize % 4096;
        let delta = ((s >> 17) % 7) as i64 - 3;
        vals[i] += delta;
        sr.update(i, delta).unwrap();
    }
    let ps = PrefixSums::from_values(&vals);
    let live = sr.snapshot(32);
    let scratch = RangeOptimalWavelet::build(&ps, 32);
    // Spot-check agreement on a sample of queries.
    for k in 0..200usize {
        let a = (k * 131) % 4096;
        let b = a + (k * 17) % (4096 - a);
        let q = RangeQuery { lo: a, hi: b };
        let (x, y) = (live.estimate(q), scratch.estimate(q));
        assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{q:?}: {x} vs {y}");
    }
}

/// Wavelet build at n = 65 536: Theorem 9's near-linear claim in practice.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with --release"
)]
fn range_optimal_wavelet_at_n_65536() {
    use std::time::Instant;
    use synoptic::wavelet::RangeOptimalWavelet;
    let (_, ps) = big(65_536);
    let t = Instant::now();
    let w = RangeOptimalWavelet::build(&ps, 64);
    let secs = t.elapsed().as_secs_f64();
    assert!(w.storage_words() <= 128);
    assert!(
        secs < 5.0,
        "near-linear build should be fast even in a shared CI box: {secs}s"
    );
    // Whole-domain estimate lands near the total.
    let q = RangeQuery { lo: 0, hi: 65_535 };
    let truth = ps.answer(q) as f64;
    let rel = (w.estimate(q) - truth).abs() / truth.max(1.0);
    assert!(rel < 0.05, "whole-domain relative error {rel}");
}
