//! End-to-end integration tests spanning every crate: generate a dataset,
//! build every synopsis family, verify the paper's qualitative orderings and
//! the internal consistency of the whole pipeline.

use synoptic::core::sse::{mse_from_sse, sse_brute};
use synoptic::data::zipf::{paper_dataset, ZipfConfig};
use synoptic::eval::methods::{exact_sse, MethodSpec};
use synoptic::prelude::*;

fn dataset(n: usize) -> (DataArray, PrefixSums) {
    let d = paper_dataset(&ZipfConfig {
        n,
        ..ZipfConfig::default()
    });
    let ps = d.prefix_sums();
    (d, ps)
}

#[test]
fn every_method_builds_and_answers_consistently() {
    let (d, ps) = dataset(48);
    for m in MethodSpec::all() {
        let est = m.build_at_budget(d.values(), &ps, 16).unwrap();
        assert_eq!(est.n(), 48, "{}", m.name());
        // Spot-check: every estimate is finite and the all-ranges SSE agrees
        // between two independent evaluator paths for value-histograms.
        let sse = exact_sse(est.as_ref(), &ps);
        assert!(sse.is_finite() && sse >= 0.0, "{}", m.name());
        for q in [
            RangeQuery::point(0),
            RangeQuery::point(47),
            RangeQuery::new(3, 40).unwrap(),
            RangeQuery::new(0, 47).unwrap(),
        ] {
            assert!(est.estimate(q).is_finite(), "{} at {q:?}", m.name());
        }
    }
}

#[test]
fn paper_ordering_holds_on_the_paper_dataset() {
    // The qualitative ordering of Figure 1 at a mid-range budget:
    // NAIVE ≫ wavelet ≫ {SAP0} > POINT-OPT ≥ {A0, OPT-A}, OPT-A minimal
    // among the average-valued histograms.
    let (d, ps) = dataset(127);
    let budget = 32;
    let sse = |m: MethodSpec| -> f64 {
        exact_sse(
            m.build_at_budget(d.values(), &ps, budget).unwrap().as_ref(),
            &ps,
        )
    };
    let naive = sse(MethodSpec::Naive);
    let opta = sse(MethodSpec::OptA);
    let a0 = sse(MethodSpec::A0);
    let point = sse(MethodSpec::PointOpt);
    let sap0 = sse(MethodSpec::Sap0);
    let topbb = sse(MethodSpec::WaveletRange);

    assert!(opta <= a0 * (1.0 + 1e-9) + 1e-9, "OPT-A ≤ A0");
    assert!(opta < point, "OPT-A beats POINT-OPT: {opta} vs {point}");
    assert!(opta < sap0, "OPT-A beats SAP0 per word");
    assert!(point < naive && sap0 < naive, "everything beats NAIVE");
    assert!(topbb < naive, "even wavelets beat NAIVE");
    assert!(opta < topbb, "histograms beat wavelets on this workload");
}

#[test]
fn optimal_methods_are_monotone_in_storage() {
    let (d, ps) = dataset(64);
    for m in [MethodSpec::OptA, MethodSpec::Sap0, MethodSpec::Sap1] {
        let mut prev = f64::INFINITY;
        for budget in [10, 15, 20, 30, 40] {
            let est = m.build_at_budget(d.values(), &ps, budget).unwrap();
            let sse = exact_sse(est.as_ref(), &ps);
            assert!(
                sse <= prev * (1.0 + 1e-9) + 1e-9,
                "{} at {budget}: {sse} > {prev}",
                m.name()
            );
            prev = sse;
        }
    }
}

#[test]
fn reopt_improves_or_matches_every_base_histogram() {
    use synoptic::hist::builder::{build, HistogramMethod};
    use synoptic::hist::reopt::reoptimize;
    let (d, ps) = dataset(64);
    for (base, words) in [
        (HistogramMethod::OptA, 24),
        (HistogramMethod::A0, 24),
        (HistogramMethod::EquiDepth, 24),
        (HistogramMethod::MaxDiff, 24),
    ] {
        let est = build(base, d.values(), &ps, words).unwrap();
        let base_sse = sse_brute(&est, &ps);
        // Re-derive boundaries via the same construction to reoptimize.
        let bk = match base {
            HistogramMethod::OptA => {
                use synoptic::hist::opta::{build_opt_a, OptAConfig};
                build_opt_a(&ps, &OptAConfig::exact(words / 2, RoundingMode::None))
                    .unwrap()
                    .histogram
                    .bucketing()
                    .clone()
            }
            HistogramMethod::A0 => synoptic::hist::a0::build_a0(&ps, words / 2)
                .unwrap()
                .bucketing()
                .clone(),
            HistogramMethod::EquiDepth => {
                synoptic::hist::heuristics::equi_depth_bucketing(&ps, words / 2).unwrap()
            }
            _ => synoptic::hist::heuristics::max_diff_bucketing(d.values(), words / 2).unwrap(),
        };
        let re = reoptimize(&bk, &ps, base.name()).unwrap();
        assert!(
            re.sse <= base_sse * (1.0 + 1e-9) + 1e-6,
            "{}: reopt {} vs base {base_sse}",
            base.name(),
            re.sse
        );
    }
}

#[test]
fn local_search_recovers_near_optimal_boundaries_from_heuristics() {
    use synoptic::core::sse::sse_value_histogram;
    use synoptic::hist::local_search::local_search;
    use synoptic::hist::opta::{build_opt_a, OptAConfig};
    let (_, ps) = dataset(48);
    let b = 6;
    let opt = build_opt_a(&ps, &OptAConfig::exact(b, RoundingMode::None)).unwrap();
    let start = Bucketing::equi_width(48, b).unwrap();
    let cost = |bk: &Bucketing| {
        let h = ValueHistogram::with_averages(bk.clone(), &ps, "c").unwrap();
        sse_value_histogram(h.xprefix(), &ps)
    };
    let start_cost = cost(&start);
    let r = local_search(start, cost, 100).unwrap();
    assert!(r.cost <= start_cost);
    assert!(
        r.cost <= start_cost.max(opt.sse * 3.0),
        "local search ({}) should land within 3× of optimal ({}) from equi-width ({start_cost})",
        r.cost,
        opt.sse
    );
    assert!(r.cost >= opt.sse - 1e-6, "cannot beat the DP optimum");
}

#[test]
fn figure1_and_claims_run_end_to_end_small() {
    use synoptic::eval::claims::run_all_claims;
    use synoptic::eval::figure1::{run_figure1, Fig1Config};
    let cfg = Fig1Config {
        dataset: ZipfConfig {
            n: 40,
            ..ZipfConfig::default()
        },
        budgets: vec![10, 16, 24],
        methods: MethodSpec::paper_figure1(),
    };
    let fig = run_figure1(&cfg).unwrap();
    assert_eq!(fig.rows.len(), 21);
    let report = run_all_claims(&cfg).unwrap();
    assert_eq!(report.claims.len(), 4);
    // T4 (reopt) must hold on any dataset — reopt can never hurt.
    assert!(report.claims[3].holds);
}

#[test]
fn rounding_modes_agree_up_to_one_unit_per_query() {
    use synoptic::hist::opta::{build_opt_a, OptAConfig};
    let (_, ps) = dataset(32);
    let ru = build_opt_a(&ps, &OptAConfig::exact(5, RoundingMode::None)).unwrap();
    let rr = build_opt_a(&ps, &OptAConfig::exact(5, RoundingMode::NearestInt)).unwrap();
    // Different optima are allowed, but both are near-identical in quality.
    let lo = ru.sse.min(rr.sse);
    let hi = ru.sse.max(rr.sse);
    assert!(
        hi <= lo * 1.2 + 100.0,
        "unrounded {} vs rounded {}",
        ru.sse,
        rr.sse
    );
}

#[test]
fn mse_units_are_sane() {
    let (d, ps) = dataset(32);
    let est = MethodSpec::OptA
        .build_at_budget(d.values(), &ps, 16)
        .unwrap();
    let sse = exact_sse(est.as_ref(), &ps);
    let mse = mse_from_sse(sse, 32);
    assert!(mse <= sse);
    assert!((mse * 32.0 * 33.0 / 2.0 - sse).abs() < 1e-6 * (1.0 + sse));
}

#[test]
fn wavelet_and_histogram_storage_accounting_is_comparable() {
    let (d, ps) = dataset(64);
    for m in [
        MethodSpec::OptA,
        MethodSpec::Sap0,
        MethodSpec::Sap1,
        MethodSpec::WaveletPoint,
        MethodSpec::WaveletRange,
    ] {
        for budget in [10, 20, 30] {
            let est = m.build_at_budget(d.values(), &ps, budget).unwrap();
            assert!(
                est.storage_words() <= budget,
                "{} claims {} words for a {budget}-word budget",
                m.name(),
                est.storage_words()
            );
        }
    }
}
