//! # synoptic
//!
//! Optimal and approximate summary statistics for range aggregates — a Rust
//! reproduction of Gilbert, Kotidis, Muthukrishnan, Strauss (PODS 2001).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`core`] — data model, histogram representations, exact SSE evaluators.
//! * [`hist`] — construction algorithms (OPT-A exact DP, SAP0/SAP1, A0,
//!   POINT-OPT, reopt, heuristics).
//! * [`wavelet`] — Haar synopses, including the range-optimal virtual-matrix
//!   construction.
//! * [`data`] — dataset and workload generators (Zipf + random rounding).
//! * [`eval`] — the experiment harness reproducing the paper's figures.
//! * [`stream`] — dynamic maintenance under point updates (extension).
//! * [`catalog`] — multi-column statistics catalog with persistence and
//!   budget allocation (extension).
//! * [`repl`] — WAL segment replication: transports, shipping, and the
//!   wire protocol behind read-only followers (extension).
//! * [`api`] — the unified query surface: `Queryable`, provenance-carrying
//!   `AnswerEnvelope`s, the SQP1 wire codec, and the single exit-code
//!   mapping (extension).
//! * [`serve`] — the batched network serving tier: `synoptic serve`'s
//!   server, the `Client`, and the generation-keyed answer cache
//!   (extension).
//!
//! ## Quickstart
//!
//! ```
//! use synoptic::prelude::*;
//!
//! // A tiny attribute-value distribution.
//! let data = DataArray::new(vec![12, 9, 4, 1, 1, 0, 2, 14, 13, 6, 2, 1]).unwrap();
//! let ps = data.prefix_sums();
//!
//! // Build the provably range-optimal SAP0 histogram with 3 buckets.
//! let hist = synoptic::hist::sap0::build_sap0(&ps, 3).unwrap();
//!
//! // Estimate a range sum and measure the exact all-ranges SSE.
//! let q = RangeQuery::new(2, 7).unwrap();
//! let estimate = hist.estimate(q);
//! let truth = ps.answer(q) as f64;
//! let sse = synoptic::core::sse::sse_brute(&hist, &ps);
//! assert!(estimate >= 0.0 && truth >= 0.0 && sse >= 0.0);
//! ```

pub use synoptic_api as api;
pub use synoptic_catalog as catalog;
pub use synoptic_core as core;
pub use synoptic_data as data;
pub use synoptic_eval as eval;
pub use synoptic_hist as hist;
pub use synoptic_linalg as linalg;
pub use synoptic_repl as repl;
pub use synoptic_serve as serve;
pub use synoptic_stream as stream;
pub use synoptic_twod as twod;
pub use synoptic_wavelet as wavelet;

/// One-stop imports for the common types.
pub mod prelude {
    pub use synoptic_core::{
        BoundedHistogram, Bucketing, DataArray, NaiveEstimator, OptAHistogram, PrefixSums,
        RangeEstimator, RangeQuery, Result, RoundingMode, Sap0Histogram, Sap1Histogram,
        SynopticError, ValueHistogram,
    };
}
